//! Ablation A2 (paper §6): exhaustive context search via link-cut sweeps.
//!
//! ```sh
//! cargo run --release --example what_if_sweep
//! ```
//!
//! "Some network attributes of interest to operators can require reasoning
//! over a range of possible scenarios, such as checking that the network
//! maintains reachability in the face of any single link cut. While our
//! system can check this, it would do so by running emulation for each new
//! context in parallel" — this example does exactly that, and prints the
//! combinatorial wall for larger k.

use mfv_core::{
    link_cut_context_count, link_cut_contexts, scenarios, verify_link_cuts, EmulationBackend,
};

fn main() {
    let snapshot = scenarios::six_node();
    let links = snapshot.link_ids();
    println!("snapshot '{}' has {} links\n", snapshot.name, links.len());

    println!("context-space growth (the §6 concern):");
    for k in 1..=4 {
        println!(
            "  any {k} cut(s): {:>4} emulation contexts",
            link_cut_context_count(links.len(), k)
        );
    }
    println!(
        "  …and a 200-link WAN at k=3: {} contexts\n",
        link_cut_context_count(200, 3)
    );

    println!("running the k=1 sweep (one emulation per context, parallel):");
    let backend = EmulationBackend::default();
    let contexts = link_cut_contexts(&snapshot, 1);
    let t = std::time::Instant::now();
    let verdicts = verify_link_cuts(&snapshot, &backend, contexts, None).expect("sweep runs");
    println!("swept {} contexts in {:?}\n", verdicts.len(), t.elapsed());

    for v in &verdicts {
        let cut = &v.cuts[0];
        if v.survives() {
            println!("  cut {cut}: survives ✓");
        } else {
            println!(
                "  cut {cut}: {} packet classes lose reachability",
                v.lost_reachability
            );
            for f in v
                .findings
                .iter()
                .filter(|f| f.before.is_delivered())
                .take(2)
            {
                println!("      e.g. {f}");
            }
        }
    }

    let survivors = verdicts.iter().filter(|v| v.survives()).count();
    println!(
        "\nverdict: {survivors}/{} single-link cuts are survivable — the Fig. 2 \
         chain topology has no redundancy, so every cut partitions something.",
        verdicts.len()
    );
}
