//! Experiment E4 (paper §5): emulation scalability.
//!
//! ```sh
//! cargo run --release --example scale_sweep
//! ```
//!
//! Sweeps topology sizes on a single simulated e2-standard-32 machine
//! (0.5 vCPU + 1 GiB per router pod, as the paper reports for the cEOS
//! image), printing bring-up time, convergence time, and cluster packing —
//! then demonstrates the capacity wall at ~60 routers on one machine and
//! the 1,000-device / 17-machine cluster bound.

use mfv_core::{scenarios, EmulationBackend};
use mfv_emulator::Cluster;

fn main() {
    println!("=== single e2-standard-32 machine, IS-IS line topologies ===");
    println!("routers  boot(min)  convergence(s)  messages  fib-entries");
    for n in [5, 10, 20, 40, 60] {
        let snapshot = scenarios::isis_line(n);
        let backend = EmulationBackend {
            cluster_machines: 1,
            ..Default::default()
        };
        match backend.run(&snapshot) {
            Ok((emu, meta)) => {
                println!(
                    "{:>7}  {:>9.1}  {:>14.1}  {:>8}  {:>11}",
                    n,
                    meta.boot_time.map(|d| d.as_mins_f64()).unwrap_or(0.0),
                    meta.convergence_time
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0),
                    meta.messages,
                    emu.dataplane().total_entries(),
                );
            }
            Err(e) => println!("{n:>7}  {e}"),
        }
    }

    println!("\n=== capacity: how many 0.5-vCPU/1-GiB router pods fit? ===");
    for machines in [1, 8, 16, 17] {
        let cluster = Cluster::of_size(machines);
        println!(
            "{:>2} machine(s): {:>5} pods (paper: 60-ish on one, 1,000 on 17)",
            machines,
            cluster.capacity_for(500, 1024)
        );
    }

    println!("\n=== over the wall: 70 routers on one machine ===");
    let snapshot = scenarios::isis_line(70);
    let backend = EmulationBackend {
        cluster_machines: 1,
        ..Default::default()
    };
    match backend.run(&snapshot) {
        Ok(_) => println!("unexpectedly scheduled"),
        Err(e) => println!("{e}"),
    }

    println!("\n=== same 70 routers on a 2-machine cluster ===");
    let backend = EmulationBackend {
        cluster_machines: 2,
        ..Default::default()
    };
    match backend.run(&snapshot) {
        Ok((emu, meta)) => {
            println!(
                "boot {:.1} min, converged {} after boot; packing: {:?}",
                meta.boot_time.map(|d| d.as_mins_f64()).unwrap_or(0.0),
                meta.convergence_time.unwrap(),
                emu.cluster_packing(),
            );
        }
        Err(e) => println!("{e}"),
    }
}
