//! Continuous verification demo: converge an ISIS grid, then watch it for a
//! seeded chaos window (link flap, routing kill, machine failure) over a
//! lossy telemetry stream, printing every verdict transition as it lands.
//!
//! Same seed ⇒ byte-identical verdict journal and (with `--obs-exclude-wall`)
//! byte-identical obs dump — `scripts/check.sh` diffs two runs of this
//! binary to hold the continuous-verification determinism contract.
//!
//! Usage:
//!   cargo run --release --example watch_run -- \
//!     [--seed N] [--grid WxH] [--duration-secs N] [--drop-pct N] \
//!     [--journal PATH] [--obs-json PATH] [--obs-exclude-wall]

use std::process::ExitCode;

use mfv_core::{obs, run_watch, scenarios, EmulationBackend, WatchRunConfig};
use mfv_emulator::ChaosPlan;
use mfv_mgmt::StreamFaultModel;
use mfv_types::{SimDuration, SimTime};

struct Args {
    seed: u64,
    grid: (usize, usize),
    duration_secs: u64,
    drop_pct: u8,
    journal: Option<String>,
    obs_json: Option<String>,
    obs_wall: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        grid: (4, 3),
        duration_secs: 60,
        drop_pct: 10,
        journal: None,
        obs_json: None,
        obs_wall: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
            }
            "--grid" => {
                let v = it.next().ok_or("--grid needs WxH")?;
                let (w, h) = v.split_once('x').ok_or_else(|| format!("bad --grid {v}"))?;
                args.grid = (
                    w.parse().map_err(|_| format!("bad --grid {v}"))?,
                    h.parse().map_err(|_| format!("bad --grid {v}"))?,
                );
            }
            "--duration-secs" => {
                let v = it.next().ok_or("--duration-secs needs a value")?;
                args.duration_secs = v.parse().map_err(|_| format!("bad --duration-secs {v}"))?;
            }
            "--drop-pct" => {
                let v = it.next().ok_or("--drop-pct needs a value")?;
                args.drop_pct = v.parse().map_err(|_| format!("bad --drop-pct {v}"))?;
            }
            "--journal" => args.journal = Some(it.next().ok_or("--journal needs a value")?),
            "--obs-json" => args.obs_json = Some(it.next().ok_or("--obs-json needs a value")?),
            "--obs-exclude-wall" => args.obs_wall = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("watch_run: {e}");
            return ExitCode::FAILURE;
        }
    };

    let snapshot = scenarios::isis_grid(args.grid.0, args.grid.1);
    let link = snapshot.topology.links[0].id();
    let victim = snapshot.topology.nodes[snapshot.topology.nodes.len() / 2]
        .name
        .clone();
    let cfg = WatchRunConfig {
        backend: EmulationBackend {
            cluster_machines: 2,
            seed: args.seed,
            ..Default::default()
        },
        watch: mfv_mgmt::WatchConfig {
            seed: args.seed,
            faults: StreamFaultModel {
                drop_pct: args.drop_pct,
                session_loss_pct: 2,
            },
            ..Default::default()
        },
        chaos: ChaosPlan::new()
            .link_flap(link.clone(), SimTime(5_000), SimDuration::from_secs(8))
            .kill_routing(victim.clone(), SimTime(20_000))
            .fail_machine("node-1", SimTime(35_000)),
        tick: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(args.duration_secs),
    };

    println!(
        "watching {}x{} grid for {}s (seed {}, drop {}%): flap {link}, kill {victim}, fail node-1",
        args.grid.0, args.grid.1, args.duration_secs, args.seed, args.drop_pct
    );
    let wall = std::time::Instant::now();
    let mut obs = obs::Obs::new();
    let report = match run_watch(&snapshot, &cfg, &mut obs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("watch_run: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", report.journal_text);
    let (hits, misses) = report.cache_stats;
    println!(
        "window {} → {}: {} verdict updates over {} evaluations, \
         {} gaps, {} session losses, {} resyncs, class cache {hits} hits / {misses} misses",
        report.started_at,
        report.ended_at,
        report.verdict_updates.len(),
        report.evaluations,
        report.stats.gaps,
        report.stats.session_losses,
        report.stats.resyncs,
    );
    println!(
        "final coverage: {}/{} covered; wall {:?}",
        report.final_coverage.fresh.len() + report.final_coverage.stale.len(),
        report.final_coverage.total(),
        wall.elapsed(),
    );

    if let Some(path) = &args.journal {
        if let Err(e) = std::fs::write(path, &report.journal_text) {
            eprintln!("watch_run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote verdict journal to {path}");
    }
    if let Some(path) = &args.obs_json {
        if let Err(e) = std::fs::write(path, obs.to_json(args.obs_wall)) {
            eprintln!("watch_run: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote obs dump to {path}");
    }
    ExitCode::SUCCESS
}
