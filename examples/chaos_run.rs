//! Chaos run: a link-flap schedule on the 30-node replica, plus a degraded
//! extraction sweep.
//!
//! ```sh
//! cargo run --release --example chaos_run
//! ```
//!
//! Three runs over the two-vendor 30-node WAN replica:
//!
//! 1. **Control** — no faults; the convergence watchdog reports `Converged`.
//! 2. **Flap schedule** — one ring link flaps every 20s (8s down) past the
//!    time budget; the watchdog reports `Oscillating` with the churning
//!    prefixes and the detected flap period.
//! 3. **Degraded extraction** — the control run again, but two devices'
//!    management planes are forced to fail past the collector's retry
//!    budget; verification proceeds over the covered nodes and qualifies
//!    its answers.

use mfv_core::{qualified_unreachable_pairs, scenarios, Backend, Coverage, EmulationBackend};
use mfv_emulator::ChaosPlan;
use mfv_types::{LinkId, SimDuration, SimTime};

fn main() {
    let snapshot = scenarios::production_wan(30, 3, true, 1_000);
    println!(
        "topology: {} nodes, {} links (two-vendor)",
        snapshot.topology.nodes.len(),
        snapshot.topology.links.len()
    );

    let mut backend = EmulationBackend::with_seed(3);
    backend.cluster_machines = 2;

    // 1. Control.
    let control = backend.compute(&snapshot).unwrap();
    let boot = control.meta.boot_time.unwrap();
    println!(
        "control:  verdict={}  boot={}  convergence={}  msgs={}",
        control.meta.verdict.as_ref().unwrap(),
        boot,
        control.meta.convergence_time.unwrap(),
        control.meta.messages
    );

    // 2. Flap schedule on the first ring link, starting 60s into steady
    // state and repeating past the (shortened) time budget.
    let l = &snapshot.topology.links[0];
    let link = LinkId::new(
        (l.a_node.clone(), l.a_iface.clone()),
        (l.b_node.clone(), l.b_iface.clone()),
    );
    println!("flapping {link}: down 8s, every 20s, past the budget");
    backend.max_sim_time = SimDuration::from_millis(boot.as_millis() + 400_000);
    backend.chaos = ChaosPlan::new().repeated_link_flap(
        link,
        SimTime(boot.as_millis() + 60_000),
        SimDuration::from_secs(8),
        40,
        SimDuration::from_secs(20),
    );
    let chaotic = backend.compute(&snapshot).unwrap();
    println!(
        "chaos:    verdict={}  msgs={}",
        chaotic.meta.verdict.as_ref().unwrap(),
        chaotic.meta.messages
    );

    // 3. Degraded extraction on the fault-free network.
    backend.chaos = ChaosPlan::default();
    backend.max_sim_time = SimDuration::from_mins(120);
    backend.collector.failures.force_fail.insert("r7".into());
    backend.collector.failures.force_fail.insert("r19".into());
    let degraded = backend.compute(&snapshot).unwrap();
    let coverage = Coverage::from_status(&degraded.meta.extraction_status);
    println!(
        "degraded: coverage={:.1}% of {} nodes",
        degraded.meta.extraction_coverage.unwrap() * 100.0,
        degraded.meta.extraction_status.len(),
    );
    let q = qualified_unreachable_pairs(&degraded.dataplane, &coverage);
    println!(
        "          unreachable pairs over covered nodes: {}",
        q.value.len()
    );
    for caveat in &q.caveats {
        println!("          caveat: {caveat}");
    }
}
