//! Chaos run: a link-flap schedule on the 30-node replica, plus a degraded
//! extraction sweep.
//!
//! ```sh
//! cargo run --release --example chaos_run
//! ```
//!
//! Three runs over the two-vendor 30-node WAN replica:
//!
//! 1. **Control** — no faults; the convergence watchdog reports `Converged`.
//! 2. **Flap schedule** — one ring link flaps every 20s (8s down) past the
//!    time budget; the watchdog reports `Oscillating` with the churning
//!    prefixes and the detected flap period.
//! 3. **Degraded extraction** — the control run again, but two devices'
//!    management planes are forced to fail past the collector's retry
//!    budget; verification proceeds over the covered nodes and qualifies
//!    its answers.
//!
//! Pass `--obs-json PATH` to dump the merged observability snapshot
//! (metrics, phase spans, event journal, wall-time section) of all three
//! runs as JSON; add `--obs-exclude-wall` to drop the wall section so the
//! dump is byte-identical across same-seed runs (the CI obs-smoke check).

use mfv_core::{
    observed_query, qualified_unreachable_pairs, scenarios, Coverage, EmulationBackend,
};
use mfv_emulator::ChaosPlan;
use mfv_obs::Obs;
use mfv_types::{LinkId, SimDuration, SimTime};

fn main() {
    let mut obs_path: Option<String> = None;
    let mut include_wall = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--obs-json" => match args.next() {
                Some(p) => obs_path = Some(p),
                None => {
                    eprintln!("--obs-json requires a path");
                    std::process::exit(2);
                }
            },
            "--obs-exclude-wall" => include_wall = false,
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    let mut obs = Obs::new();

    let snapshot = scenarios::production_wan(30, 3, true, 1_000);
    println!(
        "topology: {} nodes, {} links (two-vendor)",
        snapshot.topology.nodes.len(),
        snapshot.topology.links.len()
    );

    let mut backend = EmulationBackend::with_seed(3);
    backend.cluster_machines = 2;

    // 1. Control.
    let control = backend.compute_observed(&snapshot, &mut obs).unwrap();
    let boot = control.meta.boot_time.unwrap();
    println!(
        "control:  verdict={}  boot={}  convergence={}  msgs={}",
        control.meta.verdict.as_ref().unwrap(),
        boot,
        control.meta.convergence_time.unwrap(),
        control.meta.messages
    );

    // 2. Flap schedule on the first ring link, starting 60s into steady
    // state and repeating past the (shortened) time budget.
    let l = &snapshot.topology.links[0];
    let link = LinkId::new(
        (l.a_node.clone(), l.a_iface.clone()),
        (l.b_node.clone(), l.b_iface.clone()),
    );
    println!("flapping {link}: down 8s, every 20s, past the budget");
    backend.max_sim_time = SimDuration::from_millis(boot.as_millis() + 400_000);
    backend.chaos = ChaosPlan::new().repeated_link_flap(
        link,
        SimTime(boot.as_millis() + 60_000),
        SimDuration::from_secs(8),
        40,
        SimDuration::from_secs(20),
    );
    let chaotic = backend.compute_observed(&snapshot, &mut obs).unwrap();
    println!(
        "chaos:    verdict={}  msgs={}",
        chaotic.meta.verdict.as_ref().unwrap(),
        chaotic.meta.messages
    );

    // 3. Degraded extraction on the fault-free network.
    backend.chaos = ChaosPlan::default();
    backend.max_sim_time = SimDuration::from_mins(120);
    backend.collector.failures.force_fail.insert("r7".into());
    backend.collector.failures.force_fail.insert("r19".into());
    let degraded = backend.compute_observed(&snapshot, &mut obs).unwrap();
    let coverage = Coverage::from_status(&degraded.meta.extraction_status);
    println!(
        "degraded: coverage={:.1}% of {} nodes",
        degraded.meta.extraction_coverage.unwrap() * 100.0,
        degraded.meta.extraction_status.len(),
    );
    let q = observed_query(&mut obs, "verify.query.unreachable_pairs", || {
        qualified_unreachable_pairs(&degraded.dataplane, &coverage)
    });
    println!(
        "          unreachable pairs over covered nodes: {}",
        q.value.len()
    );
    for caveat in &q.caveats {
        println!("          caveat: {caveat}");
    }

    if let Some(path) = obs_path {
        let json = obs.to_json(include_wall);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("obs dump ({} bytes) written to {path}", json.len());
    }
}
