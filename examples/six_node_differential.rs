//! Experiment E1 (paper §5, Fig. 2): differential reachability across a
//! configuration change.
//!
//! ```sh
//! cargo run --example six_node_differential
//! ```
//!
//! Runs the six-node three-AS network twice — once as configured, once with
//! the R2–R3 eBGP session administratively shut — and uses the Differential
//! Reachability query to discover which traffic the change kills. The paper:
//! "The output correctly discovers the loss of connectivity from routers in
//! AS3 to routers in AS2."

use mfv_core::{
    deliverability_changes, differential_reachability, scenarios, Backend, EmulationBackend,
};

fn main() {
    let backend = EmulationBackend::default();

    println!("=== snapshot A: as configured ===");
    let base = backend
        .compute(&scenarios::six_node())
        .expect("baseline converges");
    println!(
        "converged in {} after boot ({} messages)\n",
        base.meta.convergence_time.unwrap(),
        base.meta.messages
    );

    println!("=== snapshot B: eBGP session R2–R3 shut down ===");
    let broken = backend
        .compute(&scenarios::six_node_broken())
        .expect("broken variant converges");
    println!(
        "converged in {} after boot ({} messages)\n",
        broken.meta.convergence_time.unwrap(),
        broken.meta.messages
    );

    println!("=== differential reachability (exhaustive, all packets) ===");
    let findings = differential_reachability(&base.dataplane, &broken.dataplane, None);
    println!("{} fate-changed packet classes total", findings.len());

    let lost = deliverability_changes(&findings);
    println!("{} classes changed deliverability:\n", lost.len());
    for f in &lost {
        println!("  {f}");
    }

    // Summarise per source node, as an operator report would.
    println!("\nimpact summary by ingress router:");
    for (asn, members) in scenarios::six_node_as_members() {
        for node in members {
            let count = lost.iter().filter(|f| f.src == node).count();
            println!("  {node} (AS{asn}): {count} lost classes");
        }
    }
}
