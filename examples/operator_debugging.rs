//! Experiment E6 (paper §5): "Emulation-as-a-Model fits the Network
//! Operator tooling flow".
//!
//! ```sh
//! cargo run --example operator_debugging
//! ```
//!
//! Reproduces the paper's debugging anecdote: an IS-IS stanza written with
//! the *wrong vendor syntax* (IOS-style `ip router isis` instead of the
//! EOS-style `isis enable`) makes verification report missing reachability.
//! The operator then "SSHes" into the emulated routers and inspects IS-IS
//! state with the same show commands production uses, finding the router
//! that never joined the IS-IS topology.

use mfv_core::{scenarios, unreachable_pairs, EmulationBackend, Snapshot};
use mfv_types::NodeId;

fn main() {
    // Start from the healthy Fig. 3 line and break r3's config with the
    // wrong-vendor IS-IS syntax (accepted nowhere on this OS, so the
    // interface never joins IS-IS).
    let healthy = scenarios::three_node_line_fig3();
    let broken_r3 = "\
hostname r3
router isis default
   net 49.0001.1010.1040.1032.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.3/32
   isis enable default
   isis passive-interface default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.3/31
   ip router isis default
!
";
    let snapshot: Snapshot = healthy.with_config(&"r3".into(), broken_r3);

    let backend = EmulationBackend::default();
    let (emu, meta) = backend.run(&snapshot).expect("emulation runs");
    println!(
        "emulation converged: {} (crashes: {})\n",
        meta.converged, meta.crashes
    );

    // 1. Verification flags the problem.
    let dp = emu.dataplane();
    let broken = unreachable_pairs(&dp);
    println!(
        "verification report: {} broken reachability pairs",
        broken.len()
    );
    for r in broken.iter().take(4) {
        println!("  {} cannot fully reach {}", r.src, r.dst_node);
    }

    // 2. The operator logs into the emulated devices with standard tooling.
    for node in ["r2", "r3"] {
        let node = NodeId::from(node);
        println!("\n$ ssh {node}");
        for cmd in ["show isis neighbors", "show isis database", "show ip route"] {
            println!("{node}# {cmd}");
            print!("{}", emu.cli(&node, cmd).unwrap());
        }
    }

    println!(
        "\ndiagnosis: r2 sees only r1 in its IS-IS database; r3's Ethernet1 \
         never joined\nIS-IS because `ip router isis` is not this vendor's \
         syntax. The config parser\nwarned and ignored the line — visible \
         in the missing adjacency above."
    );
}
