//! Quickstart: verify a two-router network, model-free.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds two router configs, wires them into a topology, runs the
//! model-free pipeline (emulate → extract AFTs → verify), and asks a few
//! questions of the converged dataplane.

use std::net::Ipv4Addr;

use mfv_config::{IfaceSpec, RouterSpec};
use mfv_core::{Backend, EmulationBackend, ForwardingAnalysis, Snapshot};
use mfv_emulator::{NodeSpec, Topology};
use mfv_types::AsNum;

fn main() {
    // 1. Describe two routers: an eBGP pair exchanging their loopbacks,
    //    with IS-IS on the link for good measure.
    let r1 = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
        .ebgp("100.64.0.1".parse().unwrap(), AsNum(65002))
        .network("2.2.2.1/32".parse().unwrap());
    let r2 = RouterSpec::new("r2", AsNum(65002), Ipv4Addr::new(2, 2, 2, 2))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap()).with_isis())
        .ebgp("100.64.0.0".parse().unwrap(), AsNum(65001))
        .network("2.2.2.2/32".parse().unwrap());

    // 2. The topology file: nodes (with rendered vendor configs) + a link.
    let mut topo = Topology::new("quickstart");
    topo.add_node(NodeSpec::from_config("r1", &r1.build()));
    topo.add_node(NodeSpec::from_config("r2", &r2.build()));
    topo.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let snapshot = Snapshot::new("quickstart", topo);

    // 3. Model-free verification: emulate the control planes, wait for the
    //    dataplane to go quiet, extract AFTs, build the dataplane model.
    let backend = EmulationBackend::default();
    let result = backend.compute(&snapshot).expect("pipeline runs");
    println!("backend:          {}", backend.name());
    println!("converged:        {}", result.meta.converged);
    println!(
        "boot time:        {}",
        result
            .meta
            .boot_time
            .map(|d| d.to_string())
            .unwrap_or_default()
    );
    println!(
        "convergence time: {}",
        result
            .meta
            .convergence_time
            .map(|d| d.to_string())
            .unwrap_or_default()
    );
    println!("fib entries:      {}", result.dataplane.total_entries());

    // 4. Ask questions.
    let fa = ForwardingAnalysis::new(&result.dataplane);
    let trace = fa.trace(&"r1".into(), Ipv4Addr::new(2, 2, 2, 2));
    println!("\ntraceroute r1 → 2.2.2.2:");
    for hop in &trace.hops {
        match &hop.egress {
            Some(e) => println!("  {} (out {})", hop.node, e),
            None => println!("  {}", hop.node),
        }
    }
    println!("  => {}", trace.disposition);

    let broken = mfv_core::unreachable_pairs(&result.dataplane);
    println!(
        "\nreachability: {}",
        if broken.is_empty() {
            "full mesh ✓"
        } else {
            "BROKEN"
        }
    );
    for report in broken {
        println!("  {} cannot fully reach {}", report.src, report.dst_node);
    }
}
