//! Experiments E2 + E3 (paper §5, Fig. 3): where the model goes wrong.
//!
//! ```sh
//! cargo run --example model_vs_emulation
//! ```
//!
//! Feeds the same configurations to both backends:
//!
//! - E2: counts the config lines the model cannot parse (the paper found
//!   38–42 per config on the Fig. 2 network);
//! - E3: on the Fig. 3 three-node line, shows the model dropping R2 → R1
//!   while the emulated (real) control plane has full reachability, then
//!   surfaces the divergence with one differential query.

use mfv_core::{
    differential_reachability, scenarios, unreachable_pairs, Backend, EmulationBackend,
    ModelBackend,
};
use mfv_model::UnrecognizedKind;

fn main() {
    // ---- E2: feature coverage on the production-complexity six-node ----
    println!("=== E2: model feature coverage (six-node production configs) ===");
    let six = scenarios::six_node();
    let model_six = ModelBackend
        .compute(&six)
        .expect("model ingests ceos configs");
    println!("config      total  recognized  unrecognized  (material / mgmt-only)");
    for report in &model_six.meta.coverage {
        let material = report
            .unrecognized
            .iter()
            .filter(|u| {
                mfv_config::classify_line(&u.text) == mfv_config::FeatureClass::Material
                    || u.kind == UnrecognizedKind::InvalidSyntax
            })
            .count();
        println!(
            "{:<10}  {:>5}  {:>10}  {:>12}  ({} / {})",
            report.hostname,
            report.total_lines,
            report.recognized_lines,
            report.unrecognized_count(),
            material,
            report.unrecognized_count() - material,
        );
    }

    // ---- E3: the Fig. 3 divergence --------------------------------------
    println!("\n=== E3: model vs emulation on the Fig. 3 line topology ===");
    let snapshot = scenarios::three_node_line_fig3();

    let emu = EmulationBackend::default()
        .compute(&snapshot)
        .expect("emulation");
    let emu_broken = unreachable_pairs(&emu.dataplane);
    println!(
        "model-free (emulation): {}",
        if emu_broken.is_empty() {
            "full pairwise reachability ✓".to_string()
        } else {
            format!("{} broken pairs", emu_broken.len())
        }
    );

    let model = ModelBackend.compute(&snapshot).expect("model");
    let model_broken = unreachable_pairs(&model.dataplane);
    println!(
        "model-based (baseline): {} broken pairs",
        model_broken.len()
    );
    for report in &model_broken {
        println!("  {} cannot reach {}", report.src, report.dst_node);
    }

    println!("\ndifferential reachability (model → emulation):");
    let findings = differential_reachability(&model.dataplane, &emu.dataplane, None);
    for f in findings
        .iter()
        .filter(|f| !f.before.is_delivered() && f.after.is_delivered())
    {
        println!("  {f}");
    }
    println!(
        "\nroot cause: the model applies interface statements in order and \
         assumed an\ninterface could not hold an address before `no switchport` \
         — so R1's\n`ip address 100.64.0.1/31` was silently ignored and the \
         R1–R2 L3 edge vanished\nfrom the model. The actual router accepts the \
         configuration (Fig. 3, issues #1/#2)."
    );
}
