//! Collection strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive size bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let SizeRange { lo, hi } = self.size;
        assert!(lo < hi, "empty vec size range");
        let n = lo + rng.below((hi - lo) as u64) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
