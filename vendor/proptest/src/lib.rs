//! Offline stand-in for `proptest`.
//!
//! Same authoring surface (`proptest!`, `prop_assert*`, `any`, ranges,
//! tuples, `collection::vec`, `prop_oneof!`, `Just`, simple regex string
//! strategies) but a much simpler runner: each test executes a fixed number
//! of deterministically seeded cases, failures report the generated inputs
//! via `Debug`, and there is no shrinking. Determinism means a failure
//! reproduces by re-running the same test binary.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// --------------------------------------------------------------------- macros

/// Entry point matching the real crate: an optional
/// `#![proptest_config(...)]` header, then `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = strategies;
                    ($($crate::strategy::Strategy::sample($arg, &mut rng),)+)
                };
                let desc = format!(
                    concat!($(stringify!($arg), " = {:?}\n",)+),
                    $(&$arg,)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}\ninputs:\n{}",
                        stringify!($name), case, config.cases, e, desc
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
