//! Deterministic test runner support: per-test RNG and config.

use std::fmt;

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-case RNG, seeded from the test path and case index so runs are
/// reproducible across invocations and machines.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    pub fn deterministic(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }

    pub fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property: carries the assertion message.
#[derive(Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
