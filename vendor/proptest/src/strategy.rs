//! Strategies: deterministic value generators.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values. Object-safe: combinators carry `Self: Sized`.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

// ----------------------------------------------------------------- primitives

/// Types with a canonical full-range strategy, via [`any`].
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values occasionally, as the real
                // crate's binary search of the range tends to surface them.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64_unit()
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

// --------------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------- combinators

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice across boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// --------------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

// ---------------------------------------------------------------- regex &str

/// Strings sampled from a small regex subset: literal characters, character
/// classes `[a-z0-9-]` (trailing `-` literal), and `{m,n}` repetition of the
/// preceding atom. This covers the workspace's identifier-shaped patterns.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = *lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let idx = rng.below(chars.len() as u64) as usize;
                out.push(chars[idx]);
            }
        }
        out
    }
}

/// Each atom: (candidate chars, min repeats, max repeats).
fn parse_regex(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Vec<char>, usize, usize)> = vec![];
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let mut class = vec![];
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            class.push(c);
                        }
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // ']'
                atoms.push((class, 1, 1));
            }
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                    None => {
                        let n = body.parse().unwrap();
                        (n, n)
                    }
                };
                let last = atoms.last_mut().expect("{} with no preceding atom");
                last.1 = lo;
                last.2 = hi;
                i = close + 1;
            }
            '\\' => {
                atoms.push((vec![chars[i + 1]], 1, 1));
                i += 2;
            }
            c => {
                atoms.push((vec![c], 1, 1));
                i += 1;
            }
        }
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::deterministic("regex", 0);
        let strat = "[a-z][a-z0-9-]{0,14}";
        for _ in 0..200 {
            let s = strat.sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            for c in cs {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-',
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = (8u8..=28).sample(&mut rng);
            assert!((8..=28).contains(&v));
            let w = (2usize..5).sample(&mut rng);
            assert!((2..5).contains(&w));
        }
    }
}
