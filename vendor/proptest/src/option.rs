//! Option strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

/// `None` in roughly a quarter of samples, matching the real crate's default
/// weighting toward `Some`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
