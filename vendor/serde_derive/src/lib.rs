//! `#[derive(Serialize, Deserialize)]` for the in-repo serde stand-in.
//!
//! Implemented without syn/quote: the input token stream is walked by hand
//! and the impl is produced as a source string. Supported shapes cover what
//! this workspace actually derives:
//!
//! - named-field structs, with `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes
//! - tuple structs (1-field behaves like a serde newtype: the inner value;
//!   n-field as an array); `#[serde(transparent)]` is accepted as a no-op
//!   since the newtype behaviour already matches
//! - enums with unit and tuple variants, externally tagged like serde_json
//!   (`"Variant"` for unit, `{"Variant": payload}` otherwise)

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

// ------------------------------------------------------------------ parsing

struct Field {
    name: String,            // field name, or index for tuple fields
    default: Option<String>, // Some("") = Default::default(), Some(path) = path()
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extract the payload of a `#[serde(...)]`-style attribute group if `trees`
/// beginning at `i` form an attribute; returns (payload-if-serde, next index).
fn take_attr(trees: &[TokenTree], i: usize) -> Option<(Option<TokenStream>, usize)> {
    match (&trees[i], trees.get(i + 1)) {
        (TokenTree::Punct(p), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let payload = match (inner.first(), inner.get(1)) {
                (Some(TokenTree::Ident(id)), Some(TokenTree::Group(pg)))
                    if id.to_string() == "serde" =>
                {
                    Some(pg.stream())
                }
                _ => None,
            };
            Some((payload, i + 2))
        }
        _ => None,
    }
}

/// Parse a `default` / `default = "path"` clause out of a serde attribute
/// payload. Other clauses (`transparent`, …) are ignored.
fn parse_default(payload: TokenStream) -> Option<String> {
    let trees: Vec<TokenTree> = payload.into_iter().collect();
    let mut i = 0;
    while i < trees.len() {
        if let TokenTree::Ident(id) = &trees[i] {
            if id.to_string() == "default" {
                if let Some(TokenTree::Punct(p)) = trees.get(i + 1) {
                    if p.as_char() == '=' {
                        if let Some(TokenTree::Literal(lit)) = trees.get(i + 2) {
                            let s = lit.to_string();
                            return Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                return Some(String::new());
            }
        }
        i += 1;
    }
    None
}

fn parse_item(input: TokenStream) -> Item {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip item-level attributes and visibility.
    loop {
        if let Some((_, next)) = take_attr(&trees, i) {
            i = next;
            continue;
        }
        match &trees[i] {
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = trees.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &trees[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected struct/enum, got {t}"),
    };
    i += 1;
    let name = match &trees[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected item name, got {t}"),
    };
    i += 1;

    // Generic parameters are not supported (nothing in-tree derives with them).
    if let Some(TokenTree::Punct(p)) = trees.get(i) {
        if p.as_char() == '<' {
            panic!("derive on generic types is not supported by the offline serde stand-in");
        }
    }

    match kind.as_str() {
        "struct" => {
            let shape = match trees.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match trees.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("expected enum body, got {t:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for {other}"),
    }
}

/// Split a comma-separated token sequence at top level (outside `<...>`).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![];
    let mut cur = vec![];
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = vec![];
    for part in split_commas(body) {
        let mut i = 0;
        let mut default = None;
        while let Some((payload, next)) = take_attr(&part, i) {
            if let Some(p) = payload {
                if let Some(d) = parse_default(p) {
                    default = Some(d);
                }
            }
            i = next;
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(id)) = part.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = part.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue, // trailing comma artefact
        };
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    split_commas(body).len()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = vec![];
    for part in split_commas(body) {
        let mut i = 0;
        while let Some((_, next)) = take_attr(&part, i) {
            i = next;
        }
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => continue,
        };
        i += 1;
        let arity = match part.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                count_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("struct enum variants are not supported by the offline serde stand-in")
            }
            _ => 0,
        };
        variants.push(Variant { name, arity });
    }
    variants
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            shape: Shape::Named(fields),
        } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert({:?}.to_string(), serde::Serialize::to_value(&self.{}));\n",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __m = std::collections::BTreeMap::new();\n\
                         {inserts}\
                         serde::Value::Object(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Struct {
            name,
            shape: Shape::Tuple(1),
        } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Item::Struct {
            name,
            shape: Shape::Tuple(n),
        } => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Struct {
            name,
            shape: Shape::Unit,
        } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match v.arity {
                        0 => format!(
                            "{name}::{vn} => serde::Value::String({vn:?}.to_string()),\n"
                        ),
                        1 => format!(
                            "{name}::{vn}(__f0) => {{\n\
                                 let mut __m = std::collections::BTreeMap::new();\n\
                                 __m.insert({vn:?}.to_string(), serde::Serialize::to_value(__f0));\n\
                                 serde::Value::Object(__m)\n\
                             }}\n"
                        ),
                        n => {
                            let binds: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {{\n\
                                     let mut __m = std::collections::BTreeMap::new();\n\
                                     __m.insert({vn:?}.to_string(), serde::Value::Array(vec![{}]));\n\
                                     serde::Value::Object(__m)\n\
                                 }}\n",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            shape: Shape::Named(fields),
        } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    match &f.default {
                        None => format!(
                            "{fname}: serde::Deserialize::from_value(\
                                 __v.get({fname:?}).unwrap_or(&serde::Value::Null))\
                                 .map_err(|e| serde::Error(format!(\"{name}.{fname}: {{e}}\")))?,\n"
                        ),
                        Some(d) => {
                            let fallback = if d.is_empty() {
                                "Default::default()".to_string()
                            } else {
                                format!("{d}()")
                            };
                            format!(
                                "{fname}: match __v.get({fname:?}) {{\n\
                                     Some(__x) => serde::Deserialize::from_value(__x)\
                                         .map_err(|e| serde::Error(format!(\"{name}.{fname}: {{e}}\")))?,\n\
                                     None => {fallback},\n\
                                 }},\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         if !matches!(__v, serde::Value::Object(_)) {{\n\
                             return Err(serde::Error(format!(\"{name}: expected object, got {{__v:?}}\")));\n\
                         }}\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Struct {
            name,
            shape: Shape::Tuple(1),
        } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::Struct {
            name,
            shape: Shape::Tuple(n),
        } => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::Array(__a) if __a.len() == {n} => \
                                 Ok({name}({})),\n\
                             __other => Err(serde::Error(format!(\
                                 \"{name}: expected {n}-element array, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Item::Struct {
            name,
            shape: Shape::Unit,
        } => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(_: &serde::Value) -> Result<Self, serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| format!("{:?} => return Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let vn = &v.name;
                    match v.arity {
                        1 => format!(
                            "{vn:?} => return Ok({name}::{vn}(\
                                 serde::Deserialize::from_value(__payload)\
                                 .map_err(|e| serde::Error(format!(\"{name}::{vn}: {{e}}\")))?)),\n"
                        ),
                        n => {
                            let elems: Vec<String> = (0..n)
                                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let serde::Value::Array(__a) = __payload else {{\n\
                                         return Err(serde::Error(format!(\
                                             \"{name}::{vn}: expected array payload\")));\n\
                                     }};\n\
                                     if __a.len() != {n} {{\n\
                                         return Err(serde::Error(format!(\
                                             \"{name}::{vn}: expected {n} elements\")));\n\
                                     }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}\n",
                                elems.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::String(__s) => {{\n\
                                 match __s.as_str() {{\n{unit_arms}\
                                     __other => Err(serde::Error(format!(\
                                         \"{name}: unknown variant {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __payload) = __m.iter().next().unwrap();\n\
                                 match __tag.as_str() {{\n{tagged_arms}\
                                     __other => Err(serde::Error(format!(\
                                         \"{name}: unknown variant {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(serde::Error(format!(\
                                 \"{name}: expected variant, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
