//! ChaCha8-based deterministic generator, offline stand-in for `rand_chacha`.
//!
//! Implements the genuine ChaCha block function with 8 rounds; output words
//! are drawn from each 16-word block in order. Only determinism and
//! statistical quality matter to this workspace (seeded emulation runs), not
//! bit-compatibility with the upstream crate.

use rand::{RngCore, SeedableRng};

#[derive(Clone)]
pub struct ChaCha8Rng {
    /// key (8 words) as seeded; constants/counter/nonce are fixed layout.
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word index in `block`; 16 = exhausted.
    word: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONST);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..4 {
            // Two rounds per iteration (column + diagonal) → 8 rounds total.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = s[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }

    pub fn get_seed(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.key.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *w = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(0..3);
            assert!(x < 3);
        }
    }
}
