//! Offline stand-in for `criterion`.
//!
//! Keeps the authoring API (`criterion_group!`, `criterion_main!`,
//! `Criterion`, benchmark groups, `black_box`, `BenchmarkId`) but replaces
//! statistical analysis with a simple calibrated wall-clock loop: each
//! benchmark is warmed up, iteration count is chosen to fill a fixed
//! measurement window, and mean/min per-iteration times are printed.
//! Good enough to compare before/after within one machine, which is all the
//! in-repo experiments need.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

pub struct Bencher {
    /// Measured mean and min per-iteration, filled by `iter`.
    result: Option<(Duration, Duration, u64)>,
}

impl Bencher {
    /// Calibrate then measure `routine`, recording per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: find an iteration count that takes ~100ms.
        let mut n: u64 = 1;
        let calib = loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || n >= 1 << 24 {
                break dt.max(Duration::from_nanos(1)) / n as u32;
            }
            n *= 4;
        };
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / calib.as_nanos().max(1)).clamp(5, 1 << 24) as u64;

        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        let batches = 5u64;
        let per_batch = (iters / batches).max(1);
        for _ in 0..batches {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            let per_iter = dt / per_batch as u32;
            min = min.min(per_iter);
            total += dt;
        }
        let mean = total / (per_batch * batches) as u32;
        self.result = Some((mean, min, per_batch * batches));
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((mean, min, iters)) => {
            println!("{label:<50} mean {mean:>12.2?}   min {min:>12.2?}   ({iters} iters)");
        }
        None => println!("{label:<50} (no measurement)"),
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        run_one(label, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample counts are fixed by the calibrated loop; accepted for
    /// source compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<L: IntoLabel, F: FnOnce(&mut Bencher)>(
        &mut self,
        id: L,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_label()), f);
        self
    }

    pub fn bench_with_input<L: IntoLabel, I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: L,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_label()), |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
