//! Offline stand-in for `serde_json`: renders and parses the shared
//! [`serde::Value`] tree. Covers the workspace surface — `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`, `from_value`, and the
//! [`json!`] literal macro.

use std::collections::BTreeMap;
use std::fmt;

pub use serde::value::{Number, Value};

/// Ordered JSON object map, compatible with `Value::Object`.
pub type Map = BTreeMap<String, Value>;

/// Subset of the real crate's `json!`: object/array literals whose values
/// are `null`, nested literals, or expressions serialisable via
/// [`to_value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array({
            let mut items = Vec::new();
            $crate::json_items!(items: $($tt)+);
            items
        })
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut map = $crate::Map::new();
            $crate::json_fields!(map: $($tt)+);
            map
        })
    };
    ($value:expr) => {
        $crate::to_value(&$value).expect("json! value serialises")
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($map:ident:) => {};
    ($map:ident: $key:tt : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $($crate::json_fields!($map: $($rest)*);)?
    };
    ($map:ident: $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $($crate::json_fields!($map: $($rest)*);)?
    };
    ($map:ident: $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $($crate::json_fields!($map: $($rest)*);)?
    };
    ($map:ident: $key:tt : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $($crate::json_fields!($map: $($rest)*);)?
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident:) => {};
    ($items:ident: null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $($crate::json_items!($items: $($rest)*);)?
    };
    ($items:ident: { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $($crate::json_items!($items: $($rest)*);)?
    };
    ($items:ident: [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $($crate::json_items!($items: $($rest)*);)?
    };
    ($items:ident: $value:expr $(, $($rest:tt)*)?) => {
        $items.push($crate::json!($value));
        $($crate::json_items!($items: $($rest)*);)?
    };
}

#[derive(Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Into::into)
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v).map_err(Into::into)
}

// ----------------------------------------------------------------- printing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ------------------------------------------------------------------ parsing

pub fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected {:?} at byte {}", c as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = vec![];
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| Error("bad escape".into()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error("bad \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error("bad \\u escape".into()))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(Error(format!("bad escape \\{}", esc as char))),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let width = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(start..start + width)
                        .and_then(|ch| std::str::from_utf8(ch).ok())
                        .ok_or_else(|| Error("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                    *pos = start + width;
                }
            }
        }
    }
    Err(Error("unterminated string".into()))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::F(f)))
        .map_err(|_| Error(format!("invalid number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":true,"e":-7}"#;
        let v = parse(src).unwrap();
        let mut out = String::new();
        write_compact(&v, &mut out);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = parse(r#"{"x":{"y":[1,2]},"z":[]}"#).unwrap();
        let pretty = {
            let mut s = String::new();
            write_pretty(&v, 0, &mut s);
            s
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
