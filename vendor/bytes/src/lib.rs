//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable shared view (`Arc<[u8]>` + range) and
//! `BytesMut` a growable buffer; `Buf`/`BufMut` provide the big-endian
//! cursor accessors the wire codecs rely on. Semantics match the real
//! crate for the subset used here, including panics on short reads.

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte source. All multi-byte accessors are big-endian,
/// matching the real crate (network byte order).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write cursor; big-endian like the real crate.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Write `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

/// Immutable, cheaply-cloneable byte view.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Shared sub-view; zero-copy.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    pos: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        let mut v = self.buf;
        if self.pos > 0 {
            v.drain(..self.pos);
        }
        Bytes::from(v)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf[self.pos..].to_vec()
    }

    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.buf[self.pos..self.pos + at].to_vec();
        self.pos += at;
        BytesMut { buf: head, pos: 0 }
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.pos += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let pos = self.pos;
        &mut self.buf[pos..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be() {
        let mut b = BytesMut::new();
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdeadbeef);
        b.put_bytes(0, 3);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 10);
        assert_eq!(frozen.get_u8(), 0xab);
        assert_eq!(frozen.get_u16(), 0x1234);
        assert_eq!(frozen.get_u32(), 0xdeadbeef);
        assert_eq!(frozen.to_vec(), vec![0, 0, 0]);
    }

    #[test]
    fn split_and_slice_share() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
        assert_eq!(b.slice(1..).to_vec(), vec![4, 5]);
    }
}
