//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides `RngCore` / `Rng` / `SeedableRng` and uniform integer range
//! sampling. Deterministic generators live in the `rand_chacha` sibling
//! crate; everything in this workspace seeds explicitly, so no OS entropy
//! source is needed or provided.
//!
//! `SampleRange` is a single blanket impl over `SampleUniform` — mirroring
//! the upstream structure matters for type inference: `gen_range(0..3)`
//! must unify the literal's type with the use site, not fall back to `i32`.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&last[..n]);
        }
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply uniform sampling; bias is negligible at
                // 64-bit width for the small spans used in this workspace.
                let r = rng.next_u64() as u128;
                (lo as i128 + ((r * span) >> 64) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = rng.next_u64() as u128;
                (lo as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_exclusive(rng, lo, hi)
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via SplitMix64, as rand 0.8 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// `rand::prelude` glob used by some call sites.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let a: u64 = r.gen_range(0..3);
            assert!(a < 3);
            let b = r.gen_range(8u8..=28);
            assert!((8..=28).contains(&b));
            let c = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&c));
        }
    }
}
