//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a visitor-based zero-copy framework; this workspace
//! only ever serialises to and from JSON value trees, so the compat surface
//! is a pair of value-tree traits plus a `#[derive(Serialize, Deserialize)]`
//! proc macro (see `serde_derive`). Everything round-trips through
//! [`value::Value`], which `serde_json` re-exports and renders.
//!
//! The crate exists so the workspace builds with no network access; it is
//! not a general-purpose serde replacement.

pub mod value;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::Ipv4Addr;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a message describing the mismatch.
#[derive(Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Familiar alias namespace (`serde::de::Error::custom`).
pub mod de {
    pub use crate::Error;
}

/// Serialize into the JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {got:?}")))
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) < 0 {
                    Value::Number(Number::I(*self as i64))
                } else {
                    Value::Number(Number::U(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i128()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error(format!("integer out of range for {}", stringify!($t)))),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => type_err("number", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => s.parse().map_err(|_| Error(format!("bad ipv4 addr: {s}"))),
            other => type_err("ipv4 string", other),
        }
    }
}

// ------------------------------------------------------------- compositions

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

/// Map keys serialise through their `Serialize` impl: string-valued keys
/// embed directly, numeric keys are stringified (matching serde_json).
fn key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        other => panic!("unsupported map key shape: {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    // Numeric keys arrive stringified; retry through the number path.
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::I(i))) {
            return Ok(k);
        }
    }
    Err(Error(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected {expected}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => type_err("tuple array", other),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
