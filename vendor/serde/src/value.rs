//! JSON value tree shared by `serde` and `serde_json`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number. Integers keep their signedness so u64/i64 round-trip
/// exactly; floats are carried as f64.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Number::U(u) => Some(*u as i128),
            Number::I(i) => Some(*i as i128),
            Number::F(f) if f.fract() == 0.0 && f.abs() < 2.0f64.powi(63) => Some(*f as i128),
            Number::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Number::U(u) => *u as f64,
            Number::I(i) => *i as f64,
            Number::F(f) => *f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i128(), other.as_i128()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON value. Objects use `BTreeMap` for deterministic ordering.
#[derive(Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Index into an object by key. Returns `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|i| u64::try_from(i).ok()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|i| i64::try_from(i).ok()),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "Null"),
            Value::Bool(b) => write!(f, "Bool({b})"),
            Value::Number(n) => write!(f, "Number({n})"),
            Value::String(s) => write!(f, "String({s:?})"),
            Value::Array(a) => f.debug_list().entries(a).finish(),
            Value::Object(m) => f.debug_map().entries(m).finish(),
        }
    }
}

// Comparisons against literals, used pervasively in tests:
// `assert_eq!(t.get("/name").unwrap(), "r1")`.
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_i128() == Some(*other as i128),
                    _ => false,
                }
            }
        }
    )*};
}

impl_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::Number(Number::U(u))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Number(Number::I(i))
    }
}

impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Number(Number::U(u as u64))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(Number::F(x))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}
