//! E7 tier-1 guarantee: for every misconfiguration family the seeded
//! injector can plant, the static pass (`mfv-conflint`) and the emulator
//! agree — conflint flags the planted fault on the right device with the
//! right rule, and the booted network exhibits the predicted runtime
//! symptom (session state + FIB absence/presence).

use mfv_config::SeededMisconfig;
use mfv_core::scenarios;
use mfv_core::xval::cross_validate;

#[test]
fn base_network_is_conflint_clean() {
    let snap = scenarios::conflint_base();
    let report = mfv_conflint::analyze(&snap.topology).expect("analyzable");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn every_family_cross_validates() {
    let mut failures = Vec::new();
    for kind in SeededMisconfig::ALL {
        let outcome = match cross_validate(kind, 0) {
            Ok(o) => o,
            Err(e) => {
                failures.push(format!("{kind:?}: injection failed: {e}"));
                continue;
            }
        };
        if !outcome.validated() {
            failures.push(format!(
                "{kind:?} ({} on {}): flagged={} session_ok={} (state {:?}) fib_ok={}\n  {}\n  evidence:\n    {}",
                outcome.report.rule,
                outcome.report.device,
                outcome.flagged,
                outcome.session_ok,
                outcome.session_state,
                outcome.fib_ok,
                outcome.report.detail,
                outcome.fib_evidence.join("\n    "),
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn cross_validation_is_seed_stable() {
    // A second seed shifts victim selection but the agreement must hold.
    for kind in [
        SeededMisconfig::EbgpAsnMismatch,
        SeededMisconfig::IsisAreaMismatch,
        SeededMisconfig::UnpolicedRedistribution,
    ] {
        let outcome = cross_validate(kind, 1).expect("viable site");
        assert!(
            outcome.validated(),
            "{kind:?} seed 1: flagged={} session_ok={} fib_ok={}\n  evidence:\n    {}",
            outcome.flagged,
            outcome.session_ok,
            outcome.fib_ok,
            outcome.fib_evidence.join("\n    "),
        );
    }
}
