//! Replay-determinism regression: the emulator's contract is that
//! `(topology, seed, chaos plan)` fully determines the run. Two back-to-back
//! runs in the same process must produce identical run reports, identical
//! dataplane digests, and byte-identical AFT extractions — any divergence
//! means wall-clock time, hash-iteration order, or unseeded entropy leaked
//! into the schedule (exactly what the D1/D2 lint rules police statically).

use std::net::Ipv4Addr;

use model_free_verification::config::{IfaceSpec, RouterSpec};
use model_free_verification::emulator::{
    ChaosPlan, Cluster, Emulation, EmulationConfig, NodeSpec, RunReport, Topology,
};
use model_free_verification::mgmt::Telemetry;
use model_free_verification::types::{AsNum, LinkId, NodeId, SimDuration, SimTime};

/// r1 - r2 - r3 line: IS-IS + iBGP full mesh with customer prefixes at both
/// ends (the same shape the emulator's own chaos tests use).
fn line3_topology() -> Topology {
    let asn = AsNum(65000);
    let lo = |n: u8| Ipv4Addr::new(2, 2, 2, n);

    let r1 = RouterSpec::new("r1", asn, lo(1))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
        .ibgp(lo(2))
        .ibgp(lo(3))
        .network("203.0.113.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "203.0.113.1/24".parse().unwrap(),
        ));

    let r2 = RouterSpec::new("r2", asn, lo(2))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap()).with_isis())
        .iface(IfaceSpec::new("Ethernet2", "100.64.0.2/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .ibgp(lo(3));

    let r3 = RouterSpec::new("r3", asn, lo(3))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.3/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .ibgp(lo(2))
        .network("198.51.100.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "198.51.100.1/24".parse().unwrap(),
        ));

    let mut t = Topology::new("line3-determinism");
    t.add_node(NodeSpec::from_config("r1", &r1.build()));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_node(NodeSpec::from_config("r3", &r3.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    t.add_link(("r2", "Ethernet2"), ("r3", "Ethernet1"));
    t
}

/// A chaos plan exercising every fault class whose handling must replay
/// bit-exactly: link flaps, a routing-process kill, and the recovery paths
/// they trigger. Faults start at 450s — after single-node-cluster boot
/// (~430s) — so they land in steady state.
fn chaos_plan() -> ChaosPlan {
    let r2r3 = LinkId::new(
        ("r2".into(), "Ethernet2".into()),
        ("r3".into(), "Ethernet1".into()),
    );
    ChaosPlan::new()
        .repeated_link_flap(
            r2r3,
            SimTime(450_000),
            SimDuration::from_secs(8),
            3,
            SimDuration::from_secs(20),
        )
        .kill_routing("r2", SimTime(600_000))
}

/// One full seeded run: report, dataplane digest, and the per-node AFT
/// extraction serialised to JSON (byte-exact comparison material).
fn run_once(seed: u64) -> (RunReport, u64, Vec<(NodeId, String)>) {
    let cfg = EmulationConfig {
        seed,
        chaos: chaos_plan(),
        max_sim_time: SimDuration::from_mins(30),
        ..Default::default()
    };
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), cfg)
        .expect("line3 topology validates");
    let report = emu.run_until_converged();
    let digest = emu.dataplane().digest();

    let mut afts = Vec::new();
    for name in ["r1", "r2", "r3"] {
        let node = NodeId::from(name);
        let router = emu.router(&node).expect("router booted");
        let telemetry = Telemetry::from_router(router).expect("state tree extracts");
        let aft = telemetry.aft().expect("telemetry carries an AFT");
        afts.push((node, aft.to_json().expect("AFT serialises")));
    }
    (report, digest, afts)
}

#[test]
fn double_run_replays_bit_exactly() {
    let (report_a, digest_a, afts_a) = run_once(5);
    let (report_b, digest_b, afts_b) = run_once(5);

    assert!(report_a.converged, "{report_a:?}");
    assert_eq!(report_a, report_b, "run reports must replay identically");
    assert_eq!(digest_a, digest_b, "dataplane digests must match");
    for ((node, a), (_, b)) in afts_a.iter().zip(&afts_b) {
        assert_eq!(a, b, "AFT for {node} must serialise byte-identically");
    }
}

/// Fixture-pinned regression across engine rewrites: the chaos replay run
/// must keep producing the same *outcome* — converged verdict, dataplane
/// digest, and byte-identical AFT JSON — as the fixtures recorded from the
/// engine before the demand-driven scheduler landed.
///
/// Schedule-dependent `RunReport` counters (`events_processed`,
/// `messages_delivered`, `converged_at`) are deliberately not pinned: the
/// scheduler overhaul exists to change them (fewer events is the point),
/// and this scenario's converged dataplane is unique regardless of schedule
/// (proven by `distinct_seeds_still_converge_to_the_same_dataplane`). What
/// the fixtures pin is everything a verification consumer can observe.
///
/// Regenerate with `MFV_UPDATE_FIXTURES=1 cargo test -q --test determinism`
/// — but only when an intentional behaviour change is being made; the whole
/// value of the fixtures is that they straddle engine rewrites.
#[test]
fn chaos_replay_matches_recorded_fixtures() {
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/line3_chaos_seed5");
    let (report, digest, afts) = run_once(5);
    let report_summary = format!(
        "converged: {}\nverdict: {:?}\ncrashes: {}\nunschedulable: {}\n",
        report.converged,
        report.verdict,
        report.crashes,
        report.unschedulable.len(),
    );
    let digest_text = format!("{digest}\n");

    if std::env::var_os("MFV_UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(&dir).expect("fixture dir");
        std::fs::write(dir.join("report.txt"), &report_summary).expect("write report fixture");
        std::fs::write(dir.join("digest.txt"), &digest_text).expect("write digest fixture");
        for (node, json) in &afts {
            std::fs::write(dir.join(format!("aft_{node}.json")), json).expect("write AFT fixture");
        }
        return;
    }

    let want_report = std::fs::read_to_string(dir.join("report.txt")).expect("report fixture");
    assert_eq!(
        report_summary, want_report,
        "run outcome diverged from the recorded pre-change fixture"
    );
    let want_digest = std::fs::read_to_string(dir.join("digest.txt")).expect("digest fixture");
    assert_eq!(
        digest_text, want_digest,
        "dataplane digest diverged from the recorded pre-change fixture"
    );
    for (node, json) in &afts {
        let want = std::fs::read_to_string(dir.join(format!("aft_{node}.json")))
            .unwrap_or_else(|_| panic!("AFT fixture for {node}"));
        assert_eq!(
            *json, want,
            "AFT for {node} must serialise byte-identically to the recorded fixture"
        );
    }
}

#[test]
fn distinct_seeds_still_converge_to_the_same_dataplane() {
    // Ordering non-determinism across seeds is the *sampled* axis (§6); on
    // this scenario the converged dataplane is unique, so any seed must
    // land on the same digest even though its event schedule differs.
    let (report_a, digest_a, _) = run_once(5);
    let (report_b, digest_b, _) = run_once(6);
    assert!(report_a.converged && report_b.converged);
    assert_eq!(
        digest_a, digest_b,
        "this scenario has a unique converged dataplane regardless of seed"
    );
}
