//! Black-box tests for the `mfvctl` binary, driven over its real argv/stdout
//! interface (cargo provides the binary path via `CARGO_BIN_EXE_*`).

use std::process::Command;

fn mfvctl(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mfvctl"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_example(name: &str, file: &str) -> std::path::PathBuf {
    let (json, _, ok) = mfvctl(&["example", name]);
    assert!(ok);
    let path = std::env::temp_dir().join(file);
    std::fs::write(&path, json).unwrap();
    path
}

#[test]
fn help_lists_commands() {
    let (out, _, ok) = mfvctl(&["help"]);
    assert!(ok);
    for cmd in ["run", "diff", "trace", "show", "model", "example"] {
        assert!(out.contains(cmd), "missing '{cmd}' in help:\n{out}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let (_, err, ok) = mfvctl(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn example_emits_valid_topology_json() {
    let (json, _, ok) = mfvctl(&["example", "fig3-line"]);
    assert!(ok);
    let topo = mfv_emulator::Topology::from_json(&json).unwrap();
    assert_eq!(topo.nodes.len(), 3);
    assert_eq!(topo.validate(), Ok(()));
}

#[test]
fn run_reports_convergence_and_reachability() {
    let path = write_example("fig3-line", "mfvctl_run.json");
    let (out, err, ok) = mfvctl(&["run", path.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("converged:   true"), "{out}");
    assert!(out.contains("full mesh"), "{out}");
}

#[test]
fn trace_prints_hops() {
    let path = write_example("fig3-line", "mfvctl_trace.json");
    let (out, err, ok) = mfvctl(&["trace", path.to_str().unwrap(), "r1", "2.2.2.3"]);
    assert!(ok, "{err}");
    assert!(out.contains("accepted at r3"), "{out}");
    assert!(out.contains("r2"), "{out}");
}

#[test]
fn diff_finds_the_e1_outage() {
    let a = write_example("six-node", "mfvctl_a.json");
    let b = write_example("six-node-broken", "mfvctl_b.json");
    let (out, err, ok) = mfvctl(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("deliverability changes"), "{out}");
    assert!(out.contains("2.2.2.3"), "{out}");
}

#[test]
fn model_reports_coverage() {
    let path = write_example("fig3-line", "mfvctl_model.json");
    let (out, err, ok) = mfvctl(&["model", path.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("unrecognized"), "{out}");
    assert!(out.contains("broken pairs"), "{out}");
}

#[test]
fn show_runs_operator_cli() {
    let path = write_example("fig3-line", "mfvctl_show.json");
    let (out, err, ok) = mfvctl(&[
        "show",
        path.to_str().unwrap(),
        "r2",
        "show",
        "isis",
        "database",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("Link State Database"), "{out}");
    assert!(out.contains("r3"), "{out}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, err, ok) = mfvctl(&["run", "/nonexistent/topo.json"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");
}
