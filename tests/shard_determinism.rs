//! The sharded engine's determinism contract: thread count and shard layout
//! are *execution* knobs, never *behaviour* knobs. The same
//! `(topology, seed, chaos plan)` must produce byte-identical dataplane
//! digests, AFT extractions, and `Obs::to_json(false)` dumps whether the
//! windows run on 1 thread or 7, and the converged dataplane must not even
//! depend on where the partition cuts (events carry content-derived keys
//! and per-entity RNG streams, so the window structure is invisible).

use model_free_verification::core::scenarios;
use model_free_verification::emulator::{
    ChaosPlan, Cluster, ConvergenceVerdict, Emulation, EmulationConfig, ShardMode, Topology,
};
use model_free_verification::mgmt::Telemetry;
use model_free_verification::types::{LinkId, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

/// A multi-vendor WAN with external route feeds — every subsystem the
/// barrier protocol touches (ISIS floods, iBGP mesh, feed injection,
/// vendor-specific timing) is live.
fn wan_topology() -> Topology {
    scenarios::production_wan(9, 2, true, 40).topology
}

/// A chaos plan crossing shard boundaries: flap a link, kill a router.
fn wan_chaos() -> ChaosPlan {
    ChaosPlan::new()
        .repeated_link_flap(
            LinkId::new(
                ("r2".into(), "Ethernet2".into()),
                ("r3".into(), "Ethernet1".into()),
            ),
            SimTime(500_000),
            SimDuration::from_secs(8),
            2,
            SimDuration::from_secs(20),
        )
        .kill_routing("r5", SimTime(560_000))
}

fn cfg(threads: usize, shards: ShardMode) -> EmulationConfig {
    EmulationConfig {
        seed: 5,
        chaos: wan_chaos(),
        threads,
        shards,
        ..Default::default()
    }
}

/// Everything a verification consumer can observe from one run, as bytes.
fn observable_run(topology: Topology, cfg: EmulationConfig) -> (u64, Vec<String>, String) {
    let mut emu = Emulation::new(topology, Cluster::single_node(), cfg).expect("topology builds");
    let report = emu.run_until_converged();
    assert!(report.converged, "{report:?}");
    let dataplane = emu.dataplane();
    let mut afts = Vec::new();
    for node in dataplane.nodes.keys() {
        let node = NodeId::from(node.as_str());
        let router = emu.router(&node).expect("router booted");
        let telemetry = Telemetry::from_router(router).expect("state tree extracts");
        let aft = telemetry.aft().expect("telemetry carries an AFT");
        afts.push(aft.to_json().expect("AFT serialises"));
    }
    (dataplane.digest(), afts, emu.export_obs().to_json(false))
}

#[test]
fn thread_count_never_changes_observable_bytes() {
    let reference = observable_run(wan_topology(), cfg(1, ShardMode::Fixed(4)));
    for threads in [2usize, 4, 7] {
        let run = observable_run(wan_topology(), cfg(threads, ShardMode::Fixed(4)));
        assert_eq!(
            reference.0, run.0,
            "dataplane digest diverged at {threads} threads"
        );
        assert_eq!(reference.1, run.1, "AFT JSON diverged at {threads} threads");
        assert_eq!(reference.2, run.2, "obs dump diverged at {threads} threads");
    }
}

/// The oscillation watchdog's evidence is accumulated *per shard* during
/// the windows and merged exactly once at the post-mortem. This digest
/// check pins the merge as order-independent: an oscillating (never
/// converging) run must produce the identical verdict and the identical
/// merged churn dump at any thread count.
#[test]
fn oscillating_churn_digest_is_thread_count_invariant() {
    // Fault-free control run finds the boot instant so the flap train can
    // be placed entirely in steady state.
    let boot_ms = {
        let mut emu = Emulation::new(
            wan_topology(),
            Cluster::single_node(),
            EmulationConfig {
                seed: 5,
                shards: ShardMode::Fixed(4),
                ..Default::default()
            },
        )
        .expect("topology builds");
        let report = emu.run_until_converged();
        assert!(report.converged, "{report:?}");
        report.boot_complete_at.expect("boot completed").0
    };
    // Flap a ring link every 20s (8s down) past a shortened budget: the
    // network can never stay quiet, so the watchdog must post-mortem.
    let flapped = {
        let topo = wan_topology();
        let l = topo.links.first().expect("WAN has links").clone();
        LinkId::new((l.a_node, l.a_iface), (l.b_node, l.b_iface))
    };
    let osc_cfg = |threads: usize| EmulationConfig {
        seed: 5,
        chaos: ChaosPlan::new().repeated_link_flap(
            flapped.clone(),
            SimTime(boot_ms + 60_000),
            SimDuration::from_secs(8),
            40,
            SimDuration::from_secs(20),
        ),
        threads,
        shards: ShardMode::Fixed(4),
        max_sim_time: SimDuration::from_millis(boot_ms + 400_000),
        ..Default::default()
    };
    let churn_run = |cfg: EmulationConfig| {
        let mut emu =
            Emulation::new(wan_topology(), Cluster::single_node(), cfg).expect("topology builds");
        let report = emu.run_until_converged();
        assert!(!report.converged, "flap train must prevent convergence");
        assert!(
            matches!(report.verdict, ConvergenceVerdict::Oscillating { .. }),
            "{:?}",
            report.verdict
        );
        (report.verdict, emu.churn_dump())
    };
    let (verdict, churn) = churn_run(osc_cfg(1));
    assert!(!churn.is_empty(), "oscillation must leave churn evidence");
    for threads in [2usize, 4] {
        let (v, c) = churn_run(osc_cfg(threads));
        assert_eq!(verdict, v, "verdict diverged at {threads} threads");
        assert_eq!(churn, c, "churn dump diverged at {threads} threads");
    }
}

#[test]
fn auto_partition_matches_fixed_partitions() {
    // The cluster-placement cut (Auto) and arbitrary Fixed cuts are just
    // different window structures over the same event content.
    let auto = observable_run(wan_topology(), cfg(2, ShardMode::Auto));
    let fixed = observable_run(wan_topology(), cfg(2, ShardMode::Fixed(3)));
    assert_eq!(auto.0, fixed.0, "digest depends on the partition cut");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Random shard counts on a small IS-IS line: the converged dataplane
    // digest is partition-invariant (threads fixed at 2 so multi-shard
    // runs actually exercise the barrier pool).
    #[test]
    fn random_shard_counts_converge_identically(shards in 1usize..=7) {
        let reference = {
            let topo = scenarios::isis_line(5).topology;
            let mut emu = Emulation::new(
                topo,
                Cluster::single_node(),
                EmulationConfig { seed: 3, ..Default::default() },
            ).unwrap();
            prop_assert!(emu.run_until_converged().converged);
            emu.dataplane().digest()
        };
        let topo = scenarios::isis_line(5).topology;
        let mut emu = Emulation::new(
            topo,
            Cluster::single_node(),
            EmulationConfig {
                seed: 3,
                threads: 2,
                shards: ShardMode::Fixed(shards),
                ..Default::default()
            },
        ).unwrap();
        prop_assert!(emu.run_until_converged().converged);
        prop_assert_eq!(emu.dataplane().digest(), reference);
    }
}
