//! Continuous-verification acceptance tests: the watcher + standing-query
//! loop under chaos must (a) react to every fault class, degrade coverage
//! while streams are down, and recover; (b) replay byte-identically from
//! the same seed; and (c) heal a sequence gap with a *single-node* resync —
//! proven through the standing queries' class-cache counters, not by
//! trusting the implementation.

use model_free_verification::core::{
    run_watch, scenarios, EmulationBackend, Snapshot, WatchRunConfig,
};
use model_free_verification::emulator::ChaosPlan;
use model_free_verification::mgmt::{StreamFaultModel, WatchEvent, Watcher};
use model_free_verification::types::{NodeId, SimDuration, SimTime};
use model_free_verification::verify::{Coverage, StandingQueries};

fn chaos_cfg(seed: u64, snapshot: &Snapshot) -> WatchRunConfig {
    let link = snapshot.topology.links[0].id();
    let victim = snapshot.topology.nodes[snapshot.topology.nodes.len() / 2]
        .name
        .clone();
    WatchRunConfig {
        backend: EmulationBackend {
            cluster_machines: 2,
            seed,
            ..Default::default()
        },
        watch: model_free_verification::mgmt::WatchConfig {
            seed,
            faults: StreamFaultModel {
                drop_pct: 20,
                session_loss_pct: 3,
            },
            ..Default::default()
        },
        chaos: ChaosPlan::new()
            .link_flap(link, SimTime(5_000), SimDuration::from_secs(8))
            .kill_routing(victim, SimTime(20_000))
            .fail_machine("node-1", SimTime(35_000)),
        tick: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(60),
    }
}

#[test]
fn chaos_watch_reacts_degrades_and_recovers() {
    let snapshot = scenarios::isis_grid(4, 3);
    let cfg = chaos_cfg(11, &snapshot);
    let mut obs = model_free_verification::obs::Obs::new();
    let report = run_watch(&snapshot, &cfg, &mut obs).expect("watch runs");
    assert!(report.converged);

    // Faults surfaced as verdict churn beyond the initial three verdicts,
    // and the fault window genuinely broke the invariants at some point.
    assert!(
        report.verdict_updates.len() > 3,
        "no churn:\n{}",
        report.journal_text
    );
    assert!(
        report
            .verdict_updates
            .iter()
            .any(|u| u.query == "reachability" && !u.verdict.holds),
        "chaos never broke reachability:\n{}",
        report.journal_text
    );
    // The lossy stream and the machine failure both degraded telemetry:
    // some verdicts were coverage-qualified while streams were down.
    assert!(report.stats.gaps + report.stats.session_losses > 0);
    assert!(
        report
            .verdict_updates
            .iter()
            .any(|u| !u.verdict.caveats.is_empty()),
        "no coverage-qualified verdict despite stream faults:\n{}",
        report.journal_text
    );
    // Resync healed every outage: full coverage by the end of the window.
    assert!(report.stats.resyncs > 0);
    assert!(
        report.final_coverage.is_complete(),
        "streams did not recover: {:?}",
        report.final_coverage
    );
}

#[test]
fn chaos_watch_replays_byte_identically() {
    let snapshot = scenarios::isis_grid(4, 3);
    let cfg = chaos_cfg(11, &snapshot);
    let mut obs_a = model_free_verification::obs::Obs::new();
    let a = run_watch(&snapshot, &cfg, &mut obs_a).expect("first run");
    let mut obs_b = model_free_verification::obs::Obs::new();
    let b = run_watch(&snapshot, &cfg, &mut obs_b).expect("second run");

    assert_eq!(a.journal_text, b.journal_text);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.verdict_latencies_ms, b.verdict_latencies_ms);
    assert_eq!(a.cache_stats, b.cache_stats);
    assert_eq!(a.started_at, b.started_at);
    assert_eq!(obs_a.to_json(false), obs_b.to_json(false));
}

/// The incrementality proof: a sequence gap on one node's stream triggers a
/// resync of that node only. The standing queries' class cache shows it —
/// re-evaluation after the resync performs zero class rebuilds (misses
/// frozen) because the resynced mirror carries the same FIB digest, while
/// hits grow by one full sweep. A global re-analysis would rebuild every
/// node and the miss counter would double.
#[test]
fn seq_gap_resyncs_one_node_without_reanalysis() {
    let snapshot = scenarios::isis_line(4);
    let backend = EmulationBackend::with_seed(5);
    let (mut emu, _meta) = backend.run(&snapshot).expect("converges");
    let nodes: Vec<NodeId> = snapshot
        .topology
        .nodes
        .iter()
        .map(|n| n.name.clone())
        .collect();
    let n = nodes.len();

    // Fault-free stream: the only disruption is the gap we inject.
    let mut watcher = Watcher::new(
        model_free_verification::mgmt::WatchConfig {
            seed: 5,
            ..Default::default()
        },
        nodes.iter().cloned(),
    );
    let mut standing = StandingQueries::new();
    let mut now = emu.now();
    let tick = |emu: &mut model_free_verification::emulator::Emulation,
                watcher: &mut Watcher,
                now: &mut SimTime| {
        *now += SimDuration::from_secs(1);
        emu.run_until(*now);
        watcher.tick(
            *now,
            nodes.iter().map(|node| (node.clone(), emu.router(node))),
        )
    };

    // Initial sync: every stream comes up, first evaluation builds classes
    // for all n nodes.
    let first = tick(&mut emu, &mut watcher, &mut now);
    assert_eq!(first.changed.len(), n, "initial sync covers every node");
    let dp = watcher.dataplane(now, &emu.dataplane());
    let cov = Coverage::from_status(&watcher.status(now));
    assert!(cov.is_complete());
    standing.evaluate(now, &dp, &cov);
    let (h0, m0) = standing.cache_stats();
    assert_eq!(m0, n, "first evaluation builds one class set per node");

    // Drop the next delivery for one node. The quiet network only sends
    // heartbeats, so the following heartbeat exposes the sequence gap.
    let victim = nodes[1].clone();
    watcher.inject_drop(&victim, 1);
    let mut resynced_at = None;
    let mut gap_seen = false;
    for _ in 0..20 {
        let r = tick(&mut emu, &mut watcher, &mut now);
        gap_seen |= r
            .events
            .iter()
            .any(|e| matches!(e, WatchEvent::Gap { node, .. } if node == &victim));
        for (node, _) in &r.changed {
            assert_eq!(node, &victim, "only the gapped node may resync");
        }
        if !r.changed.is_empty() {
            resynced_at = Some(now);
            break;
        }
    }
    assert!(gap_seen, "injected drop never surfaced as a sequence gap");
    resynced_at.expect("gap must be healed by a resync within the window");
    assert_eq!(watcher.stats().gaps, 1);
    assert_eq!(watcher.stats().resyncs, 1);
    assert_eq!(watcher.stats().session_losses, 0);

    // Re-evaluate: the resynced node's content is unchanged, so its digest
    // hits the cache — no rebuilds anywhere (misses frozen at n), one full
    // sweep of hits. Global re-analysis would show m1 == 2n.
    let dp = watcher.dataplane(now, &emu.dataplane());
    let cov = Coverage::from_status(&watcher.status(now));
    let updates = standing.evaluate(now, &dp, &cov);
    let (h1, m1) = standing.cache_stats();
    assert_eq!(m1, m0, "resync must not rebuild any node's classes");
    assert!(h1 >= h0 + n, "hits {h0} -> {h1} must grow by a full sweep");
    // Identical content + identical coverage: no verdict transitions.
    assert!(updates.is_empty(), "{updates:?}");
}
