//! Workspace-level integration tests: drive the whole stack through the
//! facade crate, the way a downstream user would.

use std::collections::BTreeMap;

use model_free_verification::config::{IfaceSpec, RouterSpec, Vendor};
use model_free_verification::core::{scenarios, Backend, EmulationBackend, ModelBackend, Snapshot};
use model_free_verification::emulator::{NodeSpec, Topology};
use model_free_verification::mgmt::{collect_afts, dataplane_from_afts, Telemetry};
use model_free_verification::types::{AsNum, IpSet, NodeId};
use model_free_verification::verify;

fn pair_snapshot() -> Snapshot {
    let r1 = RouterSpec::new("r1", AsNum(65001), "2.2.2.1".parse().unwrap())
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
        .ebgp("100.64.0.1".parse().unwrap(), AsNum(65002))
        .network("2.2.2.1/32".parse().unwrap());
    let r2 = RouterSpec::new("r2", AsNum(65002), "2.2.2.2".parse().unwrap())
        .vendor(Vendor::Vjunos)
        .iface(IfaceSpec::new("ge-0/0/0", "100.64.0.1/31".parse().unwrap()).with_isis())
        .ebgp("100.64.0.0".parse().unwrap(), AsNum(65001))
        .network("2.2.2.2/32".parse().unwrap());
    let mut t = Topology::new("facade-pair");
    t.add_node(NodeSpec::from_config("r1", &r1.build()));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "ge-0/0/0"));
    Snapshot::new("facade-pair", t)
}

#[test]
fn multi_vendor_pair_through_facade() {
    let snapshot = pair_snapshot();
    let result = EmulationBackend::default().compute(&snapshot).unwrap();
    assert!(result.meta.converged);
    // Cross-vendor eBGP + IS-IS interop: full reachability.
    assert!(verify::unreachable_pairs(&result.dataplane).is_empty());
    // The vjunos side's route is present on the ceos side.
    let trace = verify::traceroute(
        &result.dataplane,
        &NodeId::from("r1"),
        "2.2.2.2".parse().unwrap(),
    );
    assert!(trace.disposition.is_delivered());
}

#[test]
fn gnmi_extraction_path_is_equivalent_to_direct_state() {
    // Run an emulation, extract AFTs through the management plane, and
    // verify the rebuilt dataplane answers queries identically.
    let snapshot = scenarios::three_node_line_fig3();
    let backend = EmulationBackend::default();
    let (emu, meta) = backend.run(&snapshot).unwrap();
    assert!(meta.converged);

    let mut telemetry = BTreeMap::new();
    for node in &emu.topology.nodes {
        telemetry.insert(
            node.name.clone(),
            Telemetry::from_router(emu.router(&node.name).unwrap()).unwrap(),
        );
    }
    let afts = collect_afts(&telemetry);
    let direct = emu.dataplane();
    let extracted = dataplane_from_afts(&afts, &direct);
    assert_eq!(extracted.digest(), direct.digest());

    let scope = IpSet::from_prefix(&"2.2.2.0/24".parse().unwrap());
    let a = verify::disposition_summary(&direct, &scope);
    let b = verify::disposition_summary(&extracted, &scope);
    assert_eq!(a, b);
}

#[test]
fn config_push_what_if_before_deployment() {
    // The paper's workflow: propose a config change, verify the what-if
    // snapshot BEFORE deploying.
    let base = pair_snapshot();
    let backend = EmulationBackend::default();
    let before = backend.compute(&base).unwrap();

    // Proposed change: r1 shuts down its BGP neighbor.
    let mut cfg = base
        .topology
        .node(&"r1".into())
        .unwrap()
        .parse_config()
        .unwrap()
        .config;
    cfg.bgp.as_mut().unwrap().neighbors[0].shutdown = true;
    let proposed = base.with_config(&"r1".into(), model_free_verification::config::render(&cfg));

    let after = backend.compute(&proposed).unwrap();
    let findings = verify::differential_reachability(&before.dataplane, &after.dataplane, None);
    // IS-IS still provides loopback reachability; only eBGP-only prefixes
    // change. The query must pinpoint exactly the changed classes.
    for f in &findings {
        assert!(f.before != f.after, "spurious finding: {f}");
    }
    // And the baseline compares clean against itself.
    assert!(
        verify::differential_reachability(&before.dataplane, &before.dataplane, None).is_empty()
    );
}

#[test]
fn model_backend_rejects_multi_vendor() {
    let snapshot = pair_snapshot();
    let err = ModelBackend.compute(&snapshot).unwrap_err();
    assert!(err.0.contains("vjunos"), "{err}");
}

#[test]
fn topology_file_roundtrip_runs() {
    // Serialise the topology to its JSON file format and run from the
    // parsed copy — the on-disk workflow.
    let snapshot = pair_snapshot();
    let json = snapshot.topology.to_json();
    let topo = Topology::from_json(&json).unwrap();
    let result = EmulationBackend::default()
        .compute(&Snapshot::new("from-disk", topo))
        .unwrap();
    assert!(result.meta.converged);
    assert_eq!(result.dataplane.nodes.len(), 2);
}

#[test]
fn operator_cli_during_what_if() {
    let snapshot = scenarios::six_node();
    let backend = EmulationBackend::default();
    let (emu, _) = backend.run(&snapshot).unwrap();
    let out = emu.cli(&NodeId::from("r2"), "show bgp summary").unwrap();
    assert!(out.contains("Estab"), "{out}");
    let out = emu.cli(&NodeId::from("r2"), "show isis neighbors").unwrap();
    assert!(out.contains("Up"), "{out}");
    let out = emu.cli(&NodeId::from("r2"), "show version").unwrap();
    assert!(out.contains("4.34.0F"), "{out}");
}
