//! The mfv-obs determinism contract, end to end: two same-seed runs of the
//! full pipeline (emulate → extract → verify) must produce **byte-identical**
//! `Obs::to_json(false)` dumps. Wall-clock readings live in a separate
//! `"wall"` section that only `to_json(true)` includes — the one part of the
//! dump allowed to differ between replays. This is the committed twin of the
//! CI obs-smoke step (which diffs two `chaos_run --obs-json` dumps).

use model_free_verification::core::{observed_query, scenarios, EmulationBackend};
use model_free_verification::obs::Obs;
use model_free_verification::verify::unreachable_pairs;

/// One observed pipeline run: a seeded six-node emulation with a flaky
/// management plane (so retry/backoff tallies are non-trivial), extraction,
/// and one observed verification query.
fn observed_run(seed: u64) -> Obs {
    let mut obs = Obs::new();
    let mut backend = EmulationBackend::with_seed(seed);
    backend.collector.failures.seed = seed;
    backend.collector.failures.transient_error_pct = 30;
    let snapshot = scenarios::six_node();
    let result = backend
        .compute_observed(&snapshot, &mut obs)
        .expect("six-node scenario converges");
    assert!(result.meta.converged);
    let reports = observed_query(&mut obs, "verify.query.unreachable_pairs", || {
        unreachable_pairs(&result.dataplane)
    });
    assert!(reports.is_empty(), "six-node scenario is fully reachable");
    obs
}

#[test]
fn same_seed_dumps_are_byte_identical() {
    let a = observed_run(7).to_json(false);
    let b = observed_run(7).to_json(false);
    assert_eq!(
        a, b,
        "deterministic obs sections diverged between same-seed runs"
    );
    assert!(
        !a.contains("\"wall\""),
        "to_json(false) must omit the wall section"
    );
}

#[test]
fn wall_section_is_present_and_separated() {
    let obs = observed_run(7);
    let bare = obs.to_json(false);
    let full = obs.to_json(true);
    assert!(full.contains("\"wall\""));
    // Including wall only *appends*: the deterministic prefix is unchanged.
    assert!(full.starts_with(bare.trim_end_matches("\n}\n")));
    // The pipeline charged wall time to its stages.
    assert!(obs.wall.phase_micros("converge").is_some());
    assert!(obs.wall.phase_micros("extract").is_some());
}

#[test]
fn pipeline_phases_and_metrics_are_populated() {
    let obs = observed_run(7);
    for phase in ["boot", "converge", "extract"] {
        let span = obs
            .phases
            .get(phase)
            .unwrap_or_else(|| panic!("{phase} phase span missing"));
        assert!(span.end >= span.start, "{phase} span runs backwards");
    }
    // Each instrumented stage flushed something.
    assert!(obs.metrics.counter("engine.events.processed") > 0);
    assert!(obs.metrics.counter("mgmt.rpc.attempts") > 0);
    assert!(obs.metrics.counter("mgmt.rpc.retries") > 0);
    assert_eq!(obs.metrics.counter("verify.query.unreachable_pairs"), 1);
    assert!(obs.metrics.hist("engine.wake_depth").is_some());
    // The flaky collector's backoff waits land in the extract sim span.
    let extract = obs.phases.get("extract").expect("extract span");
    assert!(extract.duration().as_millis() > 0);
}

#[test]
fn different_seeds_may_differ_but_stay_well_formed() {
    // Not a determinism assertion — just that dumps from different seeds
    // are valid standalone documents (the JSON writer is hand-rolled).
    for seed in [7, 8] {
        let dump = observed_run(seed).to_json(true);
        assert!(dump.starts_with("{\n") && dump.ends_with("}\n"), "{dump}");
        let parsed: serde_json::Value =
            serde_json::from_str(&dump).expect("obs dump parses as JSON");
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("phases_sim_ms").is_some());
        assert!(parsed.get("wall").is_some());
    }
}
