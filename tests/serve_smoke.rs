//! Golden-answers smoke test for the query front end: converge the
//! tracked six-node snapshot, serve it over TCP, replay the scripted
//! request batch (`tests/fixtures/serve_smoke.batch`), and require the
//! answers to be byte-identical to the recorded golden file.
//!
//! This is the in-process twin of the `serve-smoke` shell gate in
//! `scripts/check.sh` (which drives the same batch through `mfvctl
//! serve`/`mfvctl query`): any drift in the wire protocol, the class
//! index, or the six-node snapshot itself shows up as a diff here.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::Arc;

use model_free_verification::core::{Backend, EmulationBackend, Snapshot};
use model_free_verification::emulator::Topology;
use model_free_verification::serve::{query_once, QueryIndex, Server, ServerConfig};

const BATCH: &str = include_str!("fixtures/serve_smoke.batch");
const GOLDEN: &str = include_str!("fixtures/serve_smoke.golden");

#[test]
fn scripted_batch_matches_golden_answers() {
    let text =
        std::fs::read_to_string("examples/topologies/six-node.json").expect("tracked topology");
    let topo = Topology::from_json(&text).expect("parses");
    topo.validate().expect("validates");
    let snapshot = Snapshot::new("six-node", topo);

    let result = EmulationBackend::default()
        .compute(&snapshot)
        .expect("six-node converges");
    assert!(result.meta.converged);

    let index = Arc::new(QueryIndex::new(&result.dataplane));
    index.warm();
    let handle = Server::start(Arc::clone(&index), &ServerConfig::default()).expect("bind");

    let conn = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut writer = BufWriter::new(conn);

    // Replay the batch exactly the way `mfvctl query` does: one payload
    // per request, each terminated by a newline.
    let mut answers = String::new();
    for req in BATCH.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let (ok, payload) = query_once(&mut reader, &mut writer, req).expect("query");
        assert!(ok, "request '{req}' failed: {payload}");
        answers.push_str(&payload);
        answers.push('\n');
        if req == "QUIT" {
            break;
        }
    }
    drop(reader);
    drop(writer);
    handle.shutdown();

    assert_eq!(
        answers, GOLDEN,
        "query answers diverged from tests/fixtures/serve_smoke.golden"
    );
}
