#!/usr/bin/env bash
# Engine performance benchmark: builds the bench rig in release mode and
# runs the emulation-engine scenario suite against the recorded pre-overhaul
# baseline, writing BENCH_emulator.json at the repo root.
#
# Usage:
#   scripts/bench.sh            full suite (60-router grid + the sharded
#                               scaling matrix incl. the 1,000-router WAN,
#                               5 iterations)
#   scripts/bench.sh --smoke    tiny grid + 2-shard cluster slice,
#                               1 iteration — CI bit-rot guard
#   scripts/bench.sh --watch    also run the continuous-verification
#                               window (minutes of wall time; opt-in)
#
# Extra flags are passed through to engine_bench (e.g. --iters 9,
# --threads 1,2,4,8).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building engine_bench (release)"
cargo build -q --release -p mfv-bench --bin engine_bench

echo "==> running engine scenario suite"
./target/release/engine_bench \
  --baseline scripts/bench_baseline.txt \
  --out BENCH_emulator.json \
  "$@"

echo "==> BENCH_emulator.json"
cat BENCH_emulator.json

# The query front end rides the same gate: only the --smoke flag carries
# over (engine_bench's other flags don't apply to the load generator).
query_flags=()
for f in "$@"; do
  [ "$f" = "--smoke" ] && query_flags+=(--smoke)
done

echo "==> building query_bench (release)"
cargo build -q --release -p mfv-bench --bin query_bench

echo "==> running query front-end load generator"
./target/release/query_bench --out BENCH_queries.json "${query_flags[@]+"${query_flags[@]}"}"

echo "==> BENCH_queries.json"
cat BENCH_queries.json
