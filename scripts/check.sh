#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default members, deny warnings)"
cargo clippy -- -D warnings

echo "==> mfv-lint (determinism & panic-safety rules)"
cargo run -q -p mfv-lint

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> all checks passed"
