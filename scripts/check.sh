#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default members, deny warnings)"
cargo clippy -- -D warnings

echo "==> mfv-lint (determinism & panic-safety rules + suppression inventory)"
cargo run -q -p mfv-lint

echo "==> mfv-conflint (cross-device config analysis on tracked topologies)"
cargo run -q -p mfv-conflint -- --deny-warnings examples/topologies/*.json

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> obs-smoke: same-seed double run must dump byte-identical obs JSON"
cargo build --release -q -p mfv-bench
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
for run in a b; do
  target/release/engine_bench --smoke \
    --out "$obs_tmp/bench_$run.json" \
    --obs-json "$obs_tmp/obs_$run.json" --obs-exclude-wall 2>/dev/null
done
cmp "$obs_tmp/obs_a.json" "$obs_tmp/obs_b.json" || {
  echo "obs-smoke FAILED: deterministic obs dumps differ between same-seed runs" >&2
  diff "$obs_tmp/obs_a.json" "$obs_tmp/obs_b.json" >&2 || true
  exit 1
}

echo "==> shard-smoke: obs dumps must be byte-identical across worker-thread counts"
# The smoke suite's sharded scenario (a three-region WAN slice on two
# shards) runs once per thread count; worker threads are an execution
# knob, never a behaviour knob, so the full obs dump must not move.
for t in 1 2; do
  target/release/engine_bench --smoke --threads "$t" \
    --out "$obs_tmp/bench_t$t.json" \
    --obs-json "$obs_tmp/obs_t$t.json" --obs-exclude-wall 2>/dev/null
done
cmp "$obs_tmp/obs_t1.json" "$obs_tmp/obs_t2.json" || {
  echo "shard-smoke FAILED: obs dumps differ between 1- and 2-thread runs" >&2
  diff "$obs_tmp/obs_t1.json" "$obs_tmp/obs_t2.json" >&2 || true
  exit 1
}

echo "==> watch-smoke: same-seed chaos watch must replay byte-identically"
cargo build --release -q --example watch_run
for run in a b; do
  target/release/examples/watch_run \
    --seed 7 --grid 4x3 --duration-secs 45 --drop-pct 20 \
    --journal "$obs_tmp/verdicts_$run.txt" \
    --obs-json "$obs_tmp/watch_obs_$run.json" --obs-exclude-wall >/dev/null
done
cmp "$obs_tmp/verdicts_a.txt" "$obs_tmp/verdicts_b.txt" || {
  echo "watch-smoke FAILED: verdict journals differ between same-seed runs" >&2
  diff "$obs_tmp/verdicts_a.txt" "$obs_tmp/verdicts_b.txt" >&2 || true
  exit 1
}
cmp "$obs_tmp/watch_obs_a.json" "$obs_tmp/watch_obs_b.json" || {
  echo "watch-smoke FAILED: watch obs dumps differ between same-seed runs" >&2
  diff "$obs_tmp/watch_obs_a.json" "$obs_tmp/watch_obs_b.json" >&2 || true
  exit 1
}

echo "==> serve-smoke: scripted query batch against mfvctl serve must match golden answers"
# Start the query server on an ephemeral port, replay the scripted batch
# over one connection, and diff against the recorded answers. The batch
# ends with QUIT, so the client exits cleanly; the server is killed after.
target/release/mfvctl serve examples/topologies/six-node.json --port 0 \
  >"$obs_tmp/serve.log" 2>&1 &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr="$(sed -n 's/^listening on //p' "$obs_tmp/serve.log")"
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
[ -n "$serve_addr" ] || {
  echo "serve-smoke FAILED: server never reported its address" >&2
  cat "$obs_tmp/serve.log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
target/release/mfvctl query "$serve_addr" \
  <tests/fixtures/serve_smoke.batch >"$obs_tmp/serve_answers.txt"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
cmp tests/fixtures/serve_smoke.golden "$obs_tmp/serve_answers.txt" || {
  echo "serve-smoke FAILED: query answers diverged from the golden batch" >&2
  diff tests/fixtures/serve_smoke.golden "$obs_tmp/serve_answers.txt" >&2 || true
  exit 1
}

echo "==> all checks passed"
