#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build+test cycle.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default members, deny warnings)"
cargo clippy -- -D warnings

echo "==> mfv-lint (determinism & panic-safety rules + suppression inventory)"
cargo run -q -p mfv-lint

echo "==> mfv-conflint (cross-device config analysis on tracked topologies)"
cargo run -q -p mfv-conflint -- --deny-warnings examples/topologies/*.json

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> obs-smoke: same-seed double run must dump byte-identical obs JSON"
cargo build --release -q -p mfv-bench
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
for run in a b; do
  target/release/engine_bench --smoke \
    --out "$obs_tmp/bench_$run.json" \
    --obs-json "$obs_tmp/obs_$run.json" --obs-exclude-wall 2>/dev/null
done
cmp "$obs_tmp/obs_a.json" "$obs_tmp/obs_b.json" || {
  echo "obs-smoke FAILED: deterministic obs dumps differ between same-seed runs" >&2
  diff "$obs_tmp/obs_a.json" "$obs_tmp/obs_b.json" >&2 || true
  exit 1
}

echo "==> shard-smoke: obs dumps must be byte-identical across worker-thread counts"
# The smoke suite's sharded scenario (a three-region WAN slice on two
# shards) runs once per thread count; worker threads are an execution
# knob, never a behaviour knob, so the full obs dump must not move.
for t in 1 2; do
  target/release/engine_bench --smoke --threads "$t" \
    --out "$obs_tmp/bench_t$t.json" \
    --obs-json "$obs_tmp/obs_t$t.json" --obs-exclude-wall 2>/dev/null
done
cmp "$obs_tmp/obs_t1.json" "$obs_tmp/obs_t2.json" || {
  echo "shard-smoke FAILED: obs dumps differ between 1- and 2-thread runs" >&2
  diff "$obs_tmp/obs_t1.json" "$obs_tmp/obs_t2.json" >&2 || true
  exit 1
}

echo "==> watch-smoke: same-seed chaos watch must replay byte-identically"
cargo build --release -q --example watch_run
for run in a b; do
  target/release/examples/watch_run \
    --seed 7 --grid 4x3 --duration-secs 45 --drop-pct 20 \
    --journal "$obs_tmp/verdicts_$run.txt" \
    --obs-json "$obs_tmp/watch_obs_$run.json" --obs-exclude-wall >/dev/null
done
cmp "$obs_tmp/verdicts_a.txt" "$obs_tmp/verdicts_b.txt" || {
  echo "watch-smoke FAILED: verdict journals differ between same-seed runs" >&2
  diff "$obs_tmp/verdicts_a.txt" "$obs_tmp/verdicts_b.txt" >&2 || true
  exit 1
}
cmp "$obs_tmp/watch_obs_a.json" "$obs_tmp/watch_obs_b.json" || {
  echo "watch-smoke FAILED: watch obs dumps differ between same-seed runs" >&2
  diff "$obs_tmp/watch_obs_a.json" "$obs_tmp/watch_obs_b.json" >&2 || true
  exit 1
}

echo "==> all checks passed"
