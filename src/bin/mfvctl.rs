//! `mfvctl` — command-line front end for the model-free verification
//! pipeline, operating on topology files (the same JSON documents the
//! emulator uses).
//!
//! ```text
//! mfvctl example six-node > topo.json         write a scenario topology file
//! mfvctl run topo.json [--seed N] [--machines N] [--threads N]
//! mfvctl diff before.json after.json [--scope CIDR]
//! mfvctl trace topo.json <src-node> <dst-ip>
//! mfvctl show topo.json <node> <show command...>
//! mfvctl model topo.json                       model-based baseline + coverage
//! mfvctl serve topo.json [--port N] [--workers N] [--baseline model]
//! mfvctl query addr:port [REQUEST...]          client for a running server
//! ```

use std::process::ExitCode;

use mfv_core::{
    deliverability_changes, differential_reachability, scenarios, unreachable_pairs, Backend,
    EmulationBackend, ModelBackend, Snapshot,
};
use mfv_emulator::Topology;
use mfv_serve::{query_once, QueryIndex, Server, ServerConfig};
use mfv_types::{IpSet, NodeId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mfvctl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().map(|s| s.as_str()).unwrap_or("help");
    match cmd {
        "example" => example(it.next().map(|s| s.as_str()).unwrap_or("six-node")),
        "run" => cmd_run(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "show" => cmd_show(&args[1..]),
        "model" => cmd_model(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `mfvctl help`)")),
    }
}

const HELP: &str = "\
mfvctl — model-free network verification

USAGE:
  mfvctl example [NAME]                       print a scenario topology file
                                              (six-node, six-node-broken,
                                               fig3-line, rr-cluster, clos,
                                               interplay, conflint-base)
  mfvctl run TOPOLOGY [--seed N] [--machines N] [--threads N]
                                              emulate, converge, verify
                                              (--threads 0 = host parallelism;
                                               never changes results)
  mfvctl diff BEFORE AFTER [--scope CIDR]     differential reachability
  mfvctl trace TOPOLOGY SRC-NODE DST-IP       single-packet traceroute
  mfvctl show TOPOLOGY NODE COMMAND...        operator CLI on the converged net
  mfvctl model TOPOLOGY                       model-based baseline + coverage
  mfvctl serve TOPOLOGY [--port N] [--workers N] [--baseline model]
                                              converge once, precompute the
                                              class index, answer queries
                                              over TCP (REACH, FATE, TRACE,
                                              DIFF, NODES, STATS, QUIT)
  mfvctl query ADDR:PORT [REQUEST...]         send one request (or stdin
                                              lines) to a running server
";

fn example(name: &str) -> Result<(), String> {
    let snapshot = match name {
        "six-node" => scenarios::six_node(),
        "six-node-broken" => scenarios::six_node_broken(),
        "fig3-line" => scenarios::three_node_line_fig3(),
        "rr-cluster" => scenarios::rr_cluster(4),
        "clos" => scenarios::clos(2, 4),
        "interplay" => scenarios::interplay_chain(),
        "conflint-base" => scenarios::conflint_base(),
        other => return Err(format!("unknown example '{other}'")),
    };
    println!("{}", snapshot.topology.to_json());
    Ok(())
}

fn load(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let topo = Topology::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    topo.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(Snapshot::new(path.to_string(), topo))
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn backend_from(args: &[String]) -> Result<EmulationBackend, String> {
    let mut backend = EmulationBackend::default();
    if let Some(seed) = flag(args, "--seed") {
        backend.seed = seed.parse().map_err(|_| "bad --seed".to_string())?;
    }
    if let Some(m) = flag(args, "--machines") {
        backend.cluster_machines = m.parse().map_err(|_| "bad --machines".to_string())?;
    }
    if let Some(t) = flag(args, "--threads") {
        backend.threads = t.parse().map_err(|_| "bad --threads".to_string())?;
    }
    Ok(backend)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: mfvctl run TOPOLOGY")?;
    let snapshot = load(path)?;
    let backend = backend_from(args)?;
    let result = backend.compute(&snapshot).map_err(|e| e.to_string())?;
    println!("snapshot:    {}", snapshot.name);
    println!("nodes:       {}", result.dataplane.nodes.len());
    println!("converged:   {}", result.meta.converged);
    if let Some(boot) = result.meta.boot_time {
        println!("boot:        {boot}");
    }
    if let Some(conv) = result.meta.convergence_time {
        println!("convergence: {conv} after boot");
    }
    println!("messages:    {}", result.meta.messages);
    println!("crashes:     {}", result.meta.crashes);
    println!("fib entries: {}", result.dataplane.total_entries());

    let broken = unreachable_pairs(&result.dataplane);
    if broken.is_empty() {
        println!("\nreachability: full mesh ✓");
    } else {
        println!("\nreachability: {} broken pairs", broken.len());
        for r in broken.iter().take(10) {
            for (set, disp) in r.failed.iter().take(2) {
                println!("  {} -> {}: {} [{}]", r.src, r.dst_node, set, disp);
            }
        }
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let (a, b) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err("usage: mfvctl diff BEFORE AFTER [--scope CIDR]".into()),
    };
    let scope = match flag(args, "--scope") {
        Some(cidr) => Some(IpSet::from_prefix(
            &cidr.parse().map_err(|_| format!("bad --scope '{cidr}'"))?,
        )),
        None => None,
    };
    let backend = backend_from(args)?;
    let before = backend.compute(&load(a)?).map_err(|e| e.to_string())?;
    let after = backend.compute(&load(b)?).map_err(|e| e.to_string())?;
    let findings = differential_reachability(&before.dataplane, &after.dataplane, scope.as_ref());
    println!("{} fate-changed packet classes", findings.len());
    let lost = deliverability_changes(&findings);
    println!("{} deliverability changes:", lost.len());
    for f in lost {
        println!("  {f}");
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (path, src, dst) = match (args.first(), args.get(1), args.get(2)) {
        (Some(p), Some(s), Some(d)) => (p, s, d),
        _ => return Err("usage: mfvctl trace TOPOLOGY SRC-NODE DST-IP".into()),
    };
    let dst: std::net::Ipv4Addr = dst
        .parse()
        .map_err(|_| format!("bad destination '{dst}'"))?;
    let backend = backend_from(args)?;
    let result = backend.compute(&load(path)?).map_err(|e| e.to_string())?;
    let trace = mfv_core::traceroute(&result.dataplane, &NodeId::from(src.as_str()), dst);
    for (i, hop) in trace.hops.iter().enumerate() {
        match &hop.egress {
            Some(e) => println!("{:>2}  {} (out {})", i + 1, hop.node, e),
            None => println!("{:>2}  {}", i + 1, hop.node),
        }
    }
    println!("=> {}", trace.disposition);
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let (path, node) = match (args.first(), args.get(1)) {
        (Some(p), Some(n)) => (p, n),
        _ => return Err("usage: mfvctl show TOPOLOGY NODE COMMAND...".into()),
    };
    let command = args[2..].join(" ");
    if command.is_empty() {
        return Err("usage: mfvctl show TOPOLOGY NODE COMMAND...".into());
    }
    let backend = EmulationBackend::default();
    let (emu, _) = backend.run(&load(path)?).map_err(|e| e.to_string())?;
    match emu.cli(&NodeId::from(node.as_str()), &command) {
        Some(out) => {
            print!("{out}");
            Ok(())
        }
        None => Err(format!("no such node '{node}'")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: mfvctl serve TOPOLOGY")?;
    let snapshot = load(path)?;
    let backend = backend_from(args)?;
    let result = backend.compute(&snapshot).map_err(|e| e.to_string())?;
    if !result.meta.converged {
        return Err("snapshot did not converge; refusing to serve it".into());
    }
    let baseline = match flag(args, "--baseline").as_deref() {
        Some("model") => Some(
            ModelBackend
                .compute(&snapshot)
                .map_err(|e| e.to_string())?
                .dataplane,
        ),
        Some(other) => return Err(format!("unknown --baseline '{other}' (try 'model')")),
        None => None,
    };
    let index = match &baseline {
        Some(base) => QueryIndex::with_baseline(&result.dataplane, base),
        None => QueryIndex::new(&result.dataplane),
    };
    let classes = index.warm();
    let mut cfg = ServerConfig::default();
    if let Some(p) = flag(args, "--port") {
        cfg.port = p.parse().map_err(|_| "bad --port".to_string())?;
    }
    if let Some(w) = flag(args, "--workers") {
        cfg.workers = w.parse().map_err(|_| "bad --workers".to_string())?;
    }
    let handle =
        Server::start(std::sync::Arc::new(index), &cfg).map_err(|e| format!("bind: {e}"))?;
    println!("snapshot:  {}", snapshot.name);
    println!("nodes:     {}", result.dataplane.nodes.len());
    println!("classes:   {classes}");
    println!("workers:   {}", cfg.workers.max(1));
    println!("listening on {}", handle.addr());
    handle.wait();
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    use std::io::{BufRead as _, BufReader, BufWriter};
    let addr = args
        .first()
        .ok_or("usage: mfvctl query ADDR:PORT [REQUEST...]")?;
    let conn = std::net::TcpStream::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
    let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(conn);
    let mut send = |req: &str| -> Result<bool, String> {
        let (ok, payload) = query_once(&mut reader, &mut writer, req).map_err(|e| e.to_string())?;
        if ok {
            println!("{payload}");
        } else {
            println!("error: {payload}");
        }
        Ok(ok)
    };
    let rest = args.get(1..).unwrap_or(&[]);
    if rest.is_empty() {
        // Scripted mode: one request per stdin line, all on one connection.
        let mut all_ok = true;
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            all_ok &= send(line)?;
            if line == "QUIT" {
                break;
            }
        }
        if all_ok {
            Ok(())
        } else {
            Err("some requests failed".into())
        }
    } else {
        let req = rest.join(" ");
        if send(&req)? {
            Ok(())
        } else {
            Err("request failed".into())
        }
    }
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: mfvctl model TOPOLOGY")?;
    let snapshot = load(path)?;
    let result = ModelBackend.compute(&snapshot).map_err(|e| e.to_string())?;
    println!("config      total  recognized  unrecognized");
    for report in &result.meta.coverage {
        println!(
            "{:<10} {:>6}  {:>10}  {:>12}",
            report.hostname,
            report.total_lines,
            report.recognized_lines,
            report.unrecognized_count()
        );
    }
    let broken = unreachable_pairs(&result.dataplane);
    if broken.is_empty() {
        println!("\nmodel dataplane: full mesh reachability");
    } else {
        println!("\nmodel dataplane: {} broken pairs", broken.len());
        for r in broken.iter().take(10) {
            println!("  {} -> {}", r.src, r.dst_node);
        }
    }
    Ok(())
}
