//! Facade crate re-exporting the full model-free verification stack.
//!
//! See the `mfv-core` crate for the pipeline API and DESIGN.md for the
//! system inventory.

pub use mfv_config as config;
pub use mfv_core as core;
pub use mfv_dataplane as dataplane;
pub use mfv_emulator as emulator;
pub use mfv_mgmt as mgmt;
pub use mfv_model as model;
pub use mfv_obs as obs;
pub use mfv_routing as routing;
pub use mfv_serve as serve;
pub use mfv_types as types;
pub use mfv_verify as verify;
pub use mfv_vrouter as vrouter;
pub use mfv_wire as wire;
