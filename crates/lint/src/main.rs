//! CLI entry point: `cargo run -p mfv-lint [-- --json] [--root <dir>]`.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use mfv_lint::{render, render_json, scan_workspace};

const USAGE: &str = "usage: mfv-lint [--json] [--root <workspace-dir>]

Checks crates/*/src against the workspace's determinism and panic-safety
rules (D1 hash-order, D2 wall-clock/entropy, P1 panic paths, W1 wire
decode). See DESIGN.md \"Determinism & panic-safety invariants\".";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace this binary lives in (crates/lint/../..).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mfv-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report));
    } else {
        for v in &report.violations {
            println!("{}", render(v));
        }
        let n = report.violations.len();
        if n == 0 {
            println!(
                "mfv-lint: clean — {} files across {} crates ({})",
                report.files_scanned,
                report.crates_scanned.len(),
                report.crates_scanned.join(", "),
            );
        } else {
            println!(
                "mfv-lint: {n} violation{} in {} files scanned",
                if n == 1 { "" } else { "s" },
                report.files_scanned,
            );
        }
        // The rule debt, kept visible: every reasoned allow is a spot where
        // an invariant holds by argument rather than by construction.
        let inventory = report.suppression_inventory();
        if inventory.is_empty() {
            println!("suppressions: none");
        } else {
            let total: usize = inventory.iter().map(|(_, n)| n).sum();
            let parts: Vec<String> = inventory
                .iter()
                .map(|(r, n)| format!("{}\u{00d7}{n}", r.as_str()))
                .collect();
            println!(
                "suppressions: {total} reasoned allow{} ({})",
                if total == 1 { "" } else { "s" },
                parts.join(", "),
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
