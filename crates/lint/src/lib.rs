//! `mfv-lint` — determinism & panic-safety static analysis for this
//! workspace.
//!
//! The paper's pitch only holds if an emulated run is *trustworthy
//! evidence*: bit-exact replay of a seeded `ChaosPlan`, and verification
//! verdicts that degrade (coverage-qualified) instead of panicking
//! mid-sweep. Those invariants are dynamic-test-checked in a handful of
//! places; this crate machine-checks them across every source file as
//! named, suppressible rules:
//!
//! | rule | scope                                 | invariant |
//! |------|---------------------------------------|-----------|
//! | D1   | `emulator`, `routing`, `vrouter`, `verify`, `obs`, `mgmt`, `conflint` | no `HashMap`/`HashSet` — iteration order leaks into schedules/verdicts |
//! | D2   | all crates except `bench`             | no wall clock / unseeded RNG — discrete-event time only |
//! | P1   | `mgmt`, `verify`, `core`, `obs`, `conflint` | no `unwrap`/`expect`/`panic!`/indexing — degrade via `Result` |
//! | W1   | `wire`                                | decoders reject input via `DecodeError`, never panic |
//!
//! Analysis is a self-contained lexer + line/scope heuristic (no `syn`,
//! consistent with the workspace's vendored-offline policy). Test code
//! (`#[cfg(test)]` modules, `#[test]` fns) is exempt — tests may assert.
//!
//! Suppression: `// mfv-lint: allow(RULE, reason)` on the offending line or
//! the line directly above; `// mfv-lint: allow-file(RULE, reason)` anywhere
//! in a file. The reason is mandatory.

pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::RuleId;

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: RuleId,
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the match.
    pub col: usize,
    pub message: String,
    /// The raw offending source line, for the diagnostic snippet.
    pub snippet: String,
    pub help: String,
}

/// One reasoned suppression (`allow` / `allow-file`) found in non-test
/// code. The inventory keeps the rule debt visible: every allow is a spot
/// where an invariant holds by argument rather than by construction.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rule: RuleId,
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number of the allow marker.
    pub line: usize,
    /// `allow-file` (whole file) vs `allow` (one line).
    pub file_wide: bool,
    pub reason: String,
}

/// Outcome of scanning a workspace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Every reasoned allow in non-test code, ordered by (file, line).
    pub suppressions: Vec<Suppression>,
    pub files_scanned: usize,
    pub crates_scanned: Vec<String>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule allow counts, ordered by rule id.
    pub fn suppression_inventory(&self) -> Vec<(RuleId, usize)> {
        RuleId::ALL
            .into_iter()
            .map(|r| (r, self.suppressions.iter().filter(|s| s.rule == r).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }
}

/// IO/layout failure — distinct from "the code has violations".
#[derive(Debug)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// Scans `<root>/crates/*/src/**/*.rs` and returns every unsuppressed
/// violation, ordered by (file, line, column).
pub fn scan_workspace(root: &Path) -> Result<Report, ScanError> {
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| ScanError(format!("cannot read {}: {e}", crates_dir.display())))?;
    let mut crate_names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| ScanError(format!("readdir: {e}")))?;
        let path = entry.path();
        if path.is_dir() && path.join("src").is_dir() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                crate_names.push(name.to_string());
            }
        }
    }
    crate_names.sort();

    let mut report = Report::default();
    for name in &crate_names {
        let src = crates_dir.join(name).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let source = fs::read_to_string(&file)
                .map_err(|e| ScanError(format!("cannot read {}: {e}", file.display())))?;
            check_file(
                name,
                &rel,
                &source,
                &mut report.violations,
                &mut report.suppressions,
            );
            report.files_scanned += 1;
        }
    }
    report.crates_scanned = crate_names;
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let entries =
        fs::read_dir(dir).map_err(|e| ScanError(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError(format!("readdir: {e}")))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Checks one file's source against every rule that applies to its crate,
/// recording violations in `out` and reasoned allows in `suppressions`.
pub fn check_file(
    crate_name: &str,
    rel_path: &Path,
    source: &str,
    out: &mut Vec<Violation>,
    suppressions: &mut Vec<Suppression>,
) {
    let active: Vec<RuleId> = RuleId::ALL
        .into_iter()
        .filter(|r| r.applies_to(crate_name))
        .collect();
    if active.is_empty() {
        return;
    }
    let scanned = scan::scan(source);

    // Collect suppressions. Line allows attach to their own line and the
    // one below (an allow comment usually sits above the offending line).
    // Only a plain `//` comment counts: markers quoted in doc comments or
    // string literals are documentation, not suppressions.
    let mut file_allows: Vec<RuleId> = Vec::new();
    let mut line_allows: Vec<(usize, RuleId)> = Vec::new(); // 0-based line
    for (idx, line) in scanned.lines.iter().enumerate() {
        let Some(comment) = plain_comment(line) else {
            continue;
        };
        for (rule, file_wide, reason) in rules::parse_allows(&comment) {
            if reason.is_empty() {
                // Bare allows in test code (e.g. fixture strings in the
                // linter's own tests) are not policing anything real.
                if line.in_test {
                    continue;
                }
                out.push(Violation {
                    rule,
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    col: 1,
                    message: format!(
                        "suppression of {} without a reason — `allow({}, <why>)` is required",
                        rule.as_str(),
                        rule.as_str()
                    ),
                    snippet: line.raw.clone(),
                    help: "state why the invariant holds here despite the pattern".to_string(),
                });
                continue;
            }
            if !line.in_test {
                suppressions.push(Suppression {
                    rule,
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    file_wide,
                    reason: reason.clone(),
                });
            }
            if file_wide {
                file_allows.push(rule);
            } else {
                line_allows.push((idx, rule));
            }
        }
    }

    for (idx, line) in scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for rule in &active {
            if file_allows.contains(rule) {
                continue;
            }
            let suppressed = line_allows
                .iter()
                .any(|(l, r)| r == rule && (*l == idx || *l + 1 == idx));
            if suppressed {
                continue;
            }
            for m in rules::check_line(*rule, line) {
                out.push(Violation {
                    rule: *rule,
                    file: rel_path.to_path_buf(),
                    line: idx + 1,
                    col: m.col + 1,
                    message: rule.message(&m.pattern),
                    snippet: line.raw.clone(),
                    help: rule.help().to_string(),
                });
            }
        }
    }
}

/// The body of the line's real trailing comment, if it is a plain `//`
/// comment rather than `///` / `//!` documentation. The comment start is
/// the first `//` in the raw line whose remainder is fully blanked in the
/// sanitized line — a `//` inside a string literal leaves real code (at
/// least the closing delimiter's neighbors) after it.
fn plain_comment(line: &scan::Line) -> Option<String> {
    if !line.starts_clean {
        return None;
    }
    let raw: Vec<char> = line.raw.chars().collect();
    let code: Vec<char> = line.code.chars().collect();
    for p in 0..raw.len().saturating_sub(1) {
        if raw[p] == '/'
            && raw[p + 1] == '/'
            && code
                .get(p..)
                .is_some_and(|rest| rest.iter().all(|c| *c == ' '))
        {
            return match raw.get(p + 2) {
                Some('/') | Some('!') => None,
                _ => Some(raw[p..].iter().collect()),
            };
        }
    }
    None
}

/// Renders a violation rustc-style.
pub fn render(v: &Violation) -> String {
    format!(
        "error[{rule}]: {msg}\n  --> {file}:{line}:{col}\n   |\n{line:>3} | {snippet}\n   |\n   = help: {help}\n",
        rule = v.rule.as_str(),
        msg = v.message,
        file = v.file.display(),
        line = v.line,
        col = v.col,
        snippet = v.snippet.trim_end(),
        help = v.help,
    )
}

/// Renders the whole report as a JSON object — `violations`, the reasoned
/// `suppressions`, and a per-rule `suppression_inventory` — hand-rolled:
/// the linter stays dependency-free so it can never be broken by the
/// crates it checks.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\"}}",
            v.rule.as_str(),
            json_escape(&v.file.display().to_string()),
            v.line,
            v.col,
            json_escape(&v.message),
            json_escape(&v.help),
        ));
    }
    if !report.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"suppressions\": [");
    for (i, a) in report.suppressions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"scope\":\"{}\",\"reason\":\"{}\"}}",
            a.rule.as_str(),
            json_escape(&a.file.display().to_string()),
            a.line,
            if a.file_wide { "file" } else { "line" },
            json_escape(&a.reason),
        ));
    }
    if !report.suppressions.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"suppression_inventory\": {");
    for (i, (rule, n)) in report.suppression_inventory().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {n}", rule.as_str()));
    }
    s.push_str("}\n}");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(crate_name: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut allows = Vec::new();
        check_file(crate_name, Path::new("test.rs"), src, &mut out, &mut allows);
        out
    }

    fn suppressions(crate_name: &str, src: &str) -> Vec<Suppression> {
        let mut out = Vec::new();
        let mut allows = Vec::new();
        check_file(crate_name, Path::new("test.rs"), src, &mut out, &mut allows);
        allows
    }

    #[test]
    fn rules_scope_to_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(violations("emulator", src).len(), 1);
        assert_eq!(violations("mgmt", src).len(), 1); // D1: journal order
        assert_eq!(violations("model", src).len(), 0); // D1 not in scope
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(violations("mgmt", src).len(), 1);
        assert_eq!(violations("emulator", src).len(), 0); // P1 not in scope
    }

    #[test]
    fn obs_is_in_d1_and_p1_scope() {
        // The observability crate's dump paths must iterate in stable
        // order and never panic mid-flush.
        let src = "use std::collections::HashMap;\n";
        assert_eq!(violations("obs", src).len(), 1);
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(violations("obs", src).len(), 1);
        let src = "let b = buckets[i];\n";
        assert_eq!(violations("obs", src).len(), 1);
    }

    #[test]
    fn obs_wall_clock_needs_the_marked_section() {
        // A bare Instant::now in obs is a D2 violation; only the
        // allow-file-marked wall module may read the clock.
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(violations("obs", src).len(), 1);
        let src = "// mfv-lint: allow-file(D2, the marked wall-time section)\n\
                   let t = std::time::Instant::now();\n";
        assert_eq!(violations("obs", src).len(), 0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert_eq!(violations("verify", src).len(), 0);
    }

    #[test]
    fn line_allow_suppresses_same_and_next_line() {
        let src = "// mfv-lint: allow(P1, bounded by construction)\nlet x = xs[0];\n";
        assert_eq!(violations("core", src).len(), 0);
        let src = "let x = xs[0]; // mfv-lint: allow(P1, bounded by construction)\n";
        assert_eq!(violations("core", src).len(), 0);
        // ...but not two lines below.
        let src = "// mfv-lint: allow(P1, bounded)\nlet a = 1;\nlet x = xs[0];\n";
        assert_eq!(violations("core", src).len(), 1);
    }

    #[test]
    fn allow_without_reason_is_itself_a_violation() {
        let src = "let x = xs[0]; // mfv-lint: allow(P1)\n";
        let v = violations("core", src);
        assert_eq!(v.len(), 2); // the bare allow + the unsuppressed index
        assert!(v.iter().any(|v| v.message.contains("without a reason")));
    }

    #[test]
    fn file_allow_suppresses_everywhere() {
        let src = "// mfv-lint: allow-file(P1, static literals)\nlet a = xs[0];\nlet b = ys[1];\n";
        assert_eq!(violations("core", src).len(), 0);
    }

    #[test]
    fn wrong_rule_allow_does_not_suppress() {
        let src = "let x = xs[0]; // mfv-lint: allow(D1, wrong rule)\n";
        assert_eq!(violations("core", src).len(), 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn suppressions_are_inventoried() {
        let src = "let x = xs[0]; // mfv-lint: allow(P1, bounded by construction)\n\
                   // mfv-lint: allow-file(D2, calibration constants)\n";
        let allows = suppressions("core", src);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, RuleId::P1);
        assert!(!allows[0].file_wide);
        assert_eq!(allows[0].reason, "bounded by construction");
        assert_eq!(allows[1].rule, RuleId::D2);
        assert!(allows[1].file_wide);

        // Allows inside test code police nothing and are not inventoried.
        let src = "#[cfg(test)]\nmod tests {\n    // mfv-lint: allow(P1, x)\n    fn f() {}\n}\n";
        assert!(suppressions("core", src).is_empty());
    }

    #[test]
    fn json_report_carries_inventory() {
        let mut report = Report::default();
        let mut allows = Vec::new();
        check_file(
            "core",
            Path::new("a.rs"),
            "let x = xs[0]; // mfv-lint: allow(P1, bounded)\n",
            &mut report.violations,
            &mut allows,
        );
        report.suppressions = allows;
        let json = render_json(&report);
        assert!(
            json.contains("\"suppression_inventory\": {\"P1\": 1}"),
            "{json}"
        );
        assert!(json.contains("\"scope\":\"line\""), "{json}");
        assert!(report.is_clean());
    }

    #[test]
    fn conflint_is_in_d1_and_p1_scope() {
        // The pre-boot gate must neither panic on a weird config nor
        // order findings by hash iteration.
        let src = "use std::collections::HashMap;\n";
        assert_eq!(violations("conflint", src).len(), 1);
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(violations("conflint", src).len(), 1);
    }
}
