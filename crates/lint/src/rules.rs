//! The project-invariant rules `mfv-lint` enforces, and their matchers.
//!
//! Each rule is a named, suppressible check over sanitized source lines
//! (see [`crate::scan`]). Rules are scoped to the crates where the
//! invariant matters; a violation elsewhere is by definition not a
//! violation. Suppression is per-line (`// mfv-lint: allow(D1, reason)` on
//! the offending line or the line above) or per-file
//! (`// mfv-lint: allow-file(P1, reason)` anywhere in the file); a reason
//! is mandatory — a bare allow is itself rejected.

use crate::scan::{is_ident_char, word_bounded, Line};

/// Rule identifiers, stable across output formats and suppressions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RuleId {
    /// No `HashMap`/`HashSet` in order-sensitive crates.
    D1,
    /// No wall clock / unseeded randomness outside `bench`.
    D2,
    /// No panicking constructs on extraction/verification paths.
    P1,
    /// Wire decoders reject input via the typed decode-error path only.
    W1,
    /// No relaxed atomics or unsorted channel drains in order-sensitive
    /// crates.
    D3,
}

impl RuleId {
    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::P1 => "P1",
            RuleId::W1 => "W1",
            RuleId::D3 => "D3",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "P1" => Some(RuleId::P1),
            "W1" => Some(RuleId::W1),
            "D3" => Some(RuleId::D3),
            _ => None,
        }
    }

    pub const ALL: [RuleId; 5] = [RuleId::D1, RuleId::D2, RuleId::P1, RuleId::W1, RuleId::D3];

    /// Does this rule apply to source in `crate_name`?
    pub fn applies_to(&self, crate_name: &str) -> bool {
        match self {
            // Crates where map iteration order can leak into event
            // schedules or verification verdicts — including obs, whose
            // dump paths must iterate in stable (BTreeMap) order for the
            // byte-identical-metrics contract, and mgmt, whose watcher
            // tick/status order feeds the byte-identical verdict journal.
            // serve is included: its query answers must be byte-identical
            // across worker threads, so map iteration order in any reply
            // path is behaviour, not implementation detail.
            RuleId::D1 => matches!(
                crate_name,
                "emulator"
                    | "routing"
                    | "vrouter"
                    | "verify"
                    | "obs"
                    | "mgmt"
                    | "conflint"
                    | "serve"
            ),
            // The emulator is discrete-event: wall clock and ambient
            // entropy break seeded replay everywhere except the bench
            // harness, which measures real time on purpose. In `obs` only
            // the explicitly-marked wall-time section (src/wall.rs, via a
            // reasoned allow-file) may read the clock.
            RuleId::D2 => crate_name != "bench",
            // Extraction and verification paths must degrade via Result,
            // not abort a sweep; obs is flushed from those same paths, so
            // a panicking dump would take the sweep down with it.
            // conflint is a gate: an analyzer that panics on a weird config
            // is worse than one that reports nothing.
            // serve is long-running: a panicking worker thread silently
            // shrinks the accept pool, so malformed requests must degrade
            // via ERR replies, never aborts.
            RuleId::P1 => matches!(
                crate_name,
                "mgmt" | "verify" | "core" | "obs" | "conflint" | "serve"
            ),
            // Wire decoders must reject malformed input through
            // `DecodeError`, never a panic.
            RuleId::W1 => crate_name == "wire",
            // Same scope as D1: in these crates a relaxed atomic can
            // reorder cross-thread observations, and draining a channel
            // with `try_iter` yields arrival order — both let thread
            // scheduling leak into event schedules or verdicts. The
            // sharded engine's worker pool is Relaxed-free by design;
            // cross-shard results travel through mutex-held outboxes and
            // are merge-sorted by content-derived keys before use.
            RuleId::D3 => matches!(
                crate_name,
                "emulator" | "routing" | "vrouter" | "verify" | "obs" | "mgmt" | "conflint"
            ),
        }
    }

    /// Diagnostic headline for a match of `pattern`.
    pub fn message(&self, pattern: &str) -> String {
        match self {
            RuleId::D1 => format!(
                "`{pattern}` iteration order is unspecified and can leak into \
                 event schedules or verdicts in this crate"
            ),
            RuleId::D2 => format!(
                "`{pattern}` breaks seeded replay: the emulator runs on \
                 virtual time and seeded randomness only"
            ),
            RuleId::P1 => format!(
                "`{pattern}` can panic mid-sweep; extraction/verification \
                 paths must return `Result` and degrade coverage instead"
            ),
            RuleId::W1 => format!(
                "`{pattern}` can panic on malformed input; wire decoders must \
                 reject bytes through the typed `DecodeError` path"
            ),
            RuleId::D3 => format!(
                "`{pattern}` lets thread scheduling order leak into results \
                 in this crate; replayed runs must not depend on it"
            ),
        }
    }

    pub fn help(&self) -> &'static str {
        match self {
            RuleId::D1 => "use BTreeMap/BTreeSet, or annotate `// mfv-lint: allow(D1, <reason>)`",
            RuleId::D2 => {
                "use SimTime/SimDuration and a seeded ChaCha8Rng, or annotate \
                 `// mfv-lint: allow(D2, <reason>)`"
            }
            RuleId::P1 => {
                "return a typed error (SweepError/SeedError/ExtractError), or annotate \
                 `// mfv-lint: allow(P1, <reason>)`"
            }
            RuleId::W1 => {
                "return `Err(DecodeError::new(...))`, or annotate \
                 `// mfv-lint: allow(W1, <reason>)`"
            }
            RuleId::D3 => {
                "use SeqCst (or a mutex) and sort drained items by a \
                 content-derived key, or annotate \
                 `// mfv-lint: allow(D3, <reason>)`"
            }
        }
    }
}

/// One rule match within a line: column (0-based byte offset into the
/// sanitized line) plus the pattern that matched.
#[derive(Clone, Debug)]
pub struct Match {
    pub col: usize,
    pub pattern: String,
}

/// Word-bounded needles per rule. Panicking constructs are shared between
/// P1 and W1 (different crates, different message).
const D1_NEEDLES: [&str; 2] = ["HashMap", "HashSet"];
const D2_NEEDLES: [&str; 5] = [
    "Instant::now",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "OsRng",
];
const PANIC_NEEDLES: [&str; 5] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "unimplemented!",
];
const D3_NEEDLES: [&str; 2] = ["Ordering::Relaxed", ".try_iter("];

/// Runs `rule` against one sanitized line, returning every match.
pub fn check_line(rule: RuleId, line: &Line) -> Vec<Match> {
    let code = line.code.as_str();
    let mut out = Vec::new();
    let needles: &[&str] = match rule {
        RuleId::D1 => &D1_NEEDLES,
        RuleId::D2 => &D2_NEEDLES,
        RuleId::P1 | RuleId::W1 => &PANIC_NEEDLES,
        RuleId::D3 => &D3_NEEDLES,
    };
    for needle in needles {
        for (pos, _) in code.match_indices(needle) {
            // `.unwrap()` / `.expect(` start with '.', which is never an
            // identifier char, so word_bounded handles all needles alike.
            if word_bounded(code, pos, needle) {
                out.push(Match {
                    col: pos,
                    pattern: (*needle).to_string(),
                });
            }
        }
    }
    if matches!(rule, RuleId::P1 | RuleId::W1) {
        out.extend(index_matches(code));
    }
    out.sort_by_key(|m| m.col);
    out
}

/// Heuristic for slice/array/map indexing expressions `expr[...]`, which
/// panic out of bounds (or on a missing map key). An opening bracket counts
/// when it directly follows an identifier, `)`, or `]` — which excludes
/// attributes (`#[...]`), array types/literals (`[u8; 4]`), and macro
/// brackets (`vec![...]`). Pure full-range slices (`x[..]`) cannot panic
/// and are skipped.
fn index_matches(code: &str) -> Vec<Match> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (pos, b) in bytes.iter().enumerate() {
        if *b != b'[' {
            continue;
        }
        let Some(prev) = bytes[..pos].iter().rev().find(|c| !c.is_ascii_whitespace()) else {
            continue;
        };
        let prev = *prev as char;
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        // `for x in [...]`, `return [...]` etc. are array literals, not
        // indexing: skip when the preceding token is a keyword.
        if is_ident_char(prev) && preceded_by_keyword(code, pos) {
            continue;
        }
        // Find the matching close bracket on this line (expressions
        // spanning lines are rare enough to ignore — the lexer works per
        // line).
        let mut depth = 0usize;
        let mut close = None;
        for (j, c) in bytes.iter().enumerate().skip(pos) {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let inner = match close {
            Some(j) => code[pos + 1..j].trim(),
            None => code[pos + 1..].trim(),
        };
        if inner.is_empty() || inner == ".." {
            continue;
        }
        out.push(Match {
            col: pos,
            pattern: format!("indexing `[{inner}]`"),
        });
    }
    out
}

/// Is the identifier token ending just before byte `pos` a Rust keyword
/// that can legally precede an array literal or array pattern
/// (`let [a, b] = ...` is destructuring, not indexing)?
fn preceded_by_keyword(code: &str, pos: usize) -> bool {
    const KEYWORDS: [&str; 10] = [
        "in", "return", "if", "else", "match", "break", "mut", "ref", "pub", "let",
    ];
    let before = code[..pos].trim_end();
    let token_start = before
        .char_indices()
        .rev()
        .find(|(_, c)| !is_ident_char(*c))
        .map(|(i, c)| i + c.len_utf8())
        .unwrap_or(0);
    KEYWORDS.contains(&&before[token_start..])
}

/// Parses `mfv-lint: allow(RULE, reason)` / `allow-file(RULE, reason)`
/// markers out of a raw source line. Returns `(rule, file_wide, reason)`.
pub fn parse_allows(raw: &str) -> Vec<(RuleId, bool, String)> {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(at) = rest.find("mfv-lint:") {
        rest = &rest[at + "mfv-lint:".len()..];
        let trimmed = rest.trim_start();
        let file_wide = trimmed.starts_with("allow-file(");
        let keyword = if file_wide { "allow-file(" } else { "allow(" };
        let Some(body) = trimmed.strip_prefix(keyword) else {
            continue;
        };
        let Some(end) = body.find(')') else { continue };
        let args = &body[..end];
        let (rule_str, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (args.trim(), ""),
        };
        if let Some(rule) = RuleId::parse(rule_str) {
            out.push((rule, file_wide, reason.to_string()));
        }
        rest = &body[end..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn matches(rule: RuleId, src: &str) -> Vec<String> {
        let f = scan(src);
        f.lines
            .iter()
            .flat_map(|l| check_line(rule, l))
            .map(|m| m.pattern)
            .collect()
    }

    #[test]
    fn d1_matches_hash_collections_word_bounded() {
        assert_eq!(
            matches(RuleId::D1, "use std::collections::HashMap;").len(),
            1
        );
        assert_eq!(matches(RuleId::D1, "let x: FxHashMap<u32, u32>;").len(), 0);
        assert_eq!(matches(RuleId::D1, "let s = \"HashMap\";").len(), 0);
    }

    #[test]
    fn d2_matches_clock_and_entropy() {
        assert_eq!(matches(RuleId::D2, "let t = Instant::now();").len(), 1);
        assert_eq!(matches(RuleId::D2, "let r = rand::thread_rng();").len(), 1);
        assert_eq!(matches(RuleId::D2, "let t = SimTime::ZERO;").len(), 0);
    }

    #[test]
    fn p1_matches_panicking_constructs() {
        assert_eq!(matches(RuleId::P1, "x.unwrap();").len(), 1);
        assert_eq!(matches(RuleId::P1, "x.unwrap_or_default();").len(), 0);
        assert_eq!(matches(RuleId::P1, "x.expect(\"boom\");").len(), 1);
        assert_eq!(matches(RuleId::P1, "x.expect_err(\"boom\");").len(), 0);
        assert_eq!(matches(RuleId::P1, "panic!(\"boom\");").len(), 1);
        assert_eq!(matches(RuleId::P1, "fn panic_message() {}").len(), 0);
    }

    #[test]
    fn indexing_heuristic() {
        assert_eq!(matches(RuleId::P1, "let y = xs[0];").len(), 1);
        assert_eq!(matches(RuleId::P1, "let y = &xs[..n];").len(), 1);
        assert_eq!(matches(RuleId::P1, "let y = map[&key];").len(), 1);
        // Non-panicking bracket uses.
        assert_eq!(matches(RuleId::P1, "#[derive(Debug)]").len(), 0);
        assert_eq!(matches(RuleId::P1, "let b: [u8; 4] = [0u8; 4];").len(), 0);
        assert_eq!(matches(RuleId::P1, "let v = vec![1, 2];").len(), 0);
        assert_eq!(matches(RuleId::P1, "let all = &xs[..];").len(), 0);
    }

    #[test]
    fn d3_matches_relaxed_atomics_and_channel_drains() {
        assert_eq!(
            matches(RuleId::D3, "counter.fetch_add(1, Ordering::Relaxed);").len(),
            1
        );
        assert_eq!(
            matches(RuleId::D3, "for msg in rx.try_iter() { out.push(msg); }").len(),
            1
        );
        // The sanctioned idioms stay quiet.
        assert_eq!(
            matches(RuleId::D3, "counter.fetch_add(1, Ordering::SeqCst);").len(),
            0
        );
        assert_eq!(
            matches(RuleId::D3, "let s = \"Ordering::Relaxed\";").len(),
            0
        );
        assert_eq!(
            matches(RuleId::D3, "outbox.sort_by_key(|m| m.key);").len(),
            0
        );
        // `try_iter` only as a method call, not as an identifier.
        assert_eq!(matches(RuleId::D3, "fn try_iteration() {}").len(), 0);
    }

    #[test]
    fn allow_parsing() {
        let allows = parse_allows("x // mfv-lint: allow(D1, keyed lookup only)");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].0, RuleId::D1);
        assert!(!allows[0].1);
        assert_eq!(allows[0].2, "keyed lookup only");

        let allows = parse_allows("// mfv-lint: allow-file(P1, literal scenario constants)");
        assert!(allows[0].1);

        assert!(parse_allows("// mfv-lint: allow(ZZ, nope)").is_empty());
        // Missing reason still parses; the analyzer reports it as an error.
        let allows = parse_allows("// mfv-lint: allow(P1)");
        assert_eq!(allows[0].2, "");
    }
}
