//! Source scanning: a lightweight Rust lexer that strips comments, string
//! and char literals, and tracks `#[cfg(test)]` / `#[test]` brace scopes.
//!
//! The rules in [`crate::rules`] match against *sanitized* lines — the
//! original source with every comment and literal body replaced by spaces —
//! so `"HashMap"` inside a string or a doc comment never trips a rule.
//! Deliberately not a full parser (the workspace vendors no `syn`): scope
//! tracking is brace-counting plus attribute lookahead, which is exact for
//! the `#[cfg(test)] mod tests { ... }` idiom this workspace uses.

/// One line of a scanned file.
#[derive(Clone, Debug)]
pub struct Line {
    /// Code with comments/strings/chars blanked to spaces (same length as
    /// `raw` wherever it matters: column positions are preserved).
    pub code: String,
    /// The raw source line, used for suppression-comment detection and
    /// diagnostic snippets.
    pub raw: String,
    /// True when every brace scope containing this line is test-only code
    /// (`#[cfg(test)]` or `#[test]`-attributed blocks).
    pub in_test: bool,
    /// True when the line begins in plain code — not mid string literal or
    /// block comment. Suppression comments are only recognized on such
    /// lines (a `// mfv-lint:` inside a multiline string is an example,
    /// not an annotation).
    pub starts_clean: bool,
}

/// A whole scanned file.
#[derive(Clone, Debug, Default)]
pub struct ScannedFile {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment,
    Str,
    RawStr,
    Char,
}

/// Scans `source`, producing sanitized lines plus test-scope flags.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines = Vec::new();

    let mut mode = Mode::Code;
    let mut block_depth = 0usize;
    let mut raw_hashes = 0usize;

    // Brace-scope tracking: each entry is "is this scope test code".
    let mut scopes: Vec<bool> = Vec::new();
    // Set when a `#[cfg(test)]` or `#[test]` attribute has been seen and
    // the brace it governs has not opened yet.
    let mut pending_test_attr = false;

    for raw_line in source.lines() {
        let in_test_at_start = scopes.iter().any(|&t| t) || pending_test_attr;
        let mut code = String::with_capacity(raw_line.len());
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        // A line comment never spans lines.
        if mode == Mode::LineComment {
            mode = Mode::Code;
        }
        let starts_clean = mode == Mode::Code;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => match c {
                    '/' if next == Some('/') => {
                        mode = Mode::LineComment;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        mode = Mode::BlockComment;
                        block_depth = 1;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        mode = Mode::Str;
                        code.push(' ');
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"..." / r#"..."#; count hashes.
                        let mut j = i + 1;
                        let mut hashes = 0usize;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            mode = Mode::RawStr;
                            raw_hashes = hashes;
                            for _ in i..=j {
                                code.push(' ');
                            }
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                        let is_char_lit = match next {
                            Some('\\') => true,
                            Some(n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                            _ => false,
                        };
                        if is_char_lit {
                            mode = Mode::Char;
                        }
                        code.push(' ');
                    }
                    '{' => {
                        let parent_test = scopes.iter().any(|&t| t);
                        scopes.push(parent_test || pending_test_attr);
                        pending_test_attr = false;
                        code.push(c);
                    }
                    '}' => {
                        scopes.pop();
                        code.push(c);
                    }
                    ';' => {
                        // An attribute that governed an item without a body
                        // (`#[cfg(test)] use foo;`) is spent here.
                        pending_test_attr = false;
                        code.push(c);
                    }
                    _ => code.push(c),
                },
                Mode::LineComment => {
                    code.push(' ');
                }
                Mode::BlockComment => {
                    if c == '*' && next == Some('/') {
                        block_depth -= 1;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        if block_depth == 0 {
                            mode = Mode::Code;
                        }
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        block_depth += 1;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    code.push(' ');
                }
                Mode::Str => {
                    if c == '\\' {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        mode = Mode::Code;
                    }
                    code.push(' ');
                }
                Mode::RawStr => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..raw_hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=raw_hashes {
                                code.push(' ');
                            }
                            i += 1 + raw_hashes;
                            mode = Mode::Code;
                            continue;
                        }
                    }
                    code.push(' ');
                }
                Mode::Char => {
                    if c == '\\' {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        mode = Mode::Code;
                    }
                    code.push(' ');
                }
            }
            i += 1;
        }

        // Attribute detection on the sanitized line (comments are blanked,
        // so `// #[test]` never counts).
        if code.contains("#[cfg(test)]") || test_attr(&code) {
            pending_test_attr = true;
        }

        lines.push(Line {
            code,
            raw: raw_line.to_string(),
            in_test: in_test_at_start || scopes.iter().any(|&t| t),
            starts_clean,
        });
    }
    ScannedFile { lines }
}

/// Matches a bare `#[test]` / `#[tokio::test]`-style attribute.
fn test_attr(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[") && t.contains("test]")
}

/// True when `code[pos..]` starts a word-bounded occurrence of `needle`.
/// A boundary is only required on a side where the needle itself ends in an
/// identifier character (`.unwrap()` starts with `.`, so anything may
/// precede it; `HashMap` must not extend `FxHashMap`).
pub fn word_bounded(code: &str, pos: usize, needle: &str) -> bool {
    let first_ident = needle.chars().next().map(is_ident_char).unwrap_or(false);
    let last_ident = needle
        .chars()
        .next_back()
        .map(is_ident_char)
        .unwrap_or(false);
    let before_ok = !first_ident
        || pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .map(is_ident_char)
            .unwrap_or(false);
    let end = pos + needle.len();
    let after_ok = !last_ident
        || end >= code.len()
        || !code[end..]
            .chars()
            .next()
            .map(is_ident_char)
            .unwrap_or(false);
    before_ok && after_ok
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = scan("let x = \"HashMap\"; // HashMap\nlet y = 'h';");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let x ="));
        assert!(!f.lines[1].code.contains('h'));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let f = scan("a /* one\n/* two */ still\ncomment */ b");
        assert!(f.lines[0].code.starts_with('a'));
        assert!(!f.lines[1].code.contains("still"));
        assert!(f.lines[2].code.contains('b'));
        assert!(!f.lines[2].code.contains("comment"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let x = r#\"panic!()\"#; panic!()");
        let code = &f.lines[0].code;
        assert_eq!(code.matches("panic!").count(), 1);
    }

    #[test]
    fn cfg_test_scope_is_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn test_attr_on_fn_is_tracked() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn real() {}\n";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn cfg_test_on_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {\n    x();\n}\n";
        let f = scan(src);
        assert!(!f.lines[3].in_test);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(f.lines[0].code.contains(".unwrap()"));
    }
}
