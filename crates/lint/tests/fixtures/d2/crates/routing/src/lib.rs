//! D2 fixture: wall-clock and entropy sources outside the bench crate.

pub fn positive_clock() -> std::time::Instant {
    std::time::Instant::now() // positive: D2 fires here
}

pub fn positive_rng() -> u64 {
    let mut r = thread_rng(); // positive: D2 fires here
    r.next()
}

pub fn suppressed_clock() -> std::time::Instant {
    // mfv-lint: allow(D2, fixture: wall time feeds a log label, never the schedule)
    std::time::Instant::now()
}

pub fn negative_seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
