//! Watch fixture: the mgmt crate is order-sensitive (D1), replay-seeded
//! (D2), and panic-free (P1) — one positive, one suppressed, and one clean
//! case per rule.

use std::collections::HashMap; // positive: D1 now fires in mgmt

pub struct Streams {
    pub mirrors: std::collections::BTreeMap<u64, u64>, // negative: ordered
    // mfv-lint: allow(D1, fixture: keyed lookup only, never iterated)
    pub lookup: HashMap<u64, u64>,
}

pub fn stamp() -> u64 {
    let _wall = std::time::Instant::now(); // positive: D2 fires
    0
}

pub fn seeded() -> u64 {
    // mfv-lint: allow(D2, fixture: wall probe quarantined from sim state)
    let _t = std::time::SystemTime::now();
    7 // negative path: constant, no entropy
}

pub fn apply_batch(batches: &[u64]) -> u64 {
    let first = batches.first().copied().unwrap(); // positive: P1 fires
    // mfv-lint: allow(P1, fixture: length checked by caller)
    let second = batches[1];
    first + second + batches.iter().sum::<u64>() // negative: no panic path
}
