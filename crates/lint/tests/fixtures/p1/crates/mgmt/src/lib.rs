//! P1 fixture: panic paths in a crate that must degrade via `Result`.

pub fn positive_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // positive: P1 fires here
}

pub fn positive_index(xs: &[u32]) -> u32 {
    xs[0] // positive: P1 fires here
}

pub fn suppressed_index(xs: &[u32; 4]) -> u32 {
    // mfv-lint: allow(P1, fixture: fixed-size array, index is compile-time in range)
    xs[0]
}

pub fn negative(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_assert() {
        let xs = [1u32];
        assert_eq!(xs[0], Some(1).unwrap()); // exempt: test code
    }
}
