//! D1 fixture: hash collections in an order-sensitive crate.

use std::collections::BTreeMap; // negative: ordered map is the sanctioned type
use std::collections::HashMap; // positive: D1 fires here

pub struct Positive {
    pub map: HashMap<u32, u32>, // positive: D1 fires here too
}

pub struct Suppressed {
    // mfv-lint: allow(D1, fixture: probed by key only, never iterated)
    pub cache: std::collections::HashSet<u64>,
}

pub struct Negative {
    pub map: BTreeMap<u32, u32>,
}
