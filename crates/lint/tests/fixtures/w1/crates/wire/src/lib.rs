//! W1 fixture: decoders must reject input via a typed error, never panic.

pub struct DecodeError(pub String);

pub fn positive_decode(buf: &[u8]) -> u8 {
    buf[0] // positive: W1 fires here
}

pub fn positive_panic(buf: &[u8]) -> u8 {
    if buf.is_empty() {
        panic!("truncated") // positive: W1 fires here
    }
    0
}

pub fn suppressed_decode(buf: &[u8]) -> Result<u8, DecodeError> {
    if buf.len() < 2 {
        return Err(DecodeError("truncated".to_string()));
    }
    // mfv-lint: allow(W1, fixture: length checked above, index in bounds)
    Ok(buf[1])
}

pub fn negative_decode(buf: &[u8]) -> Result<u8, DecodeError> {
    buf.first()
        .copied()
        .ok_or_else(|| DecodeError("empty".to_string()))
}
