//! D3 fixture: relaxed atomics and unsorted channel drains in an
//! order-sensitive crate.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed); // positive: D3 fires here
}

pub fn drain(rx: &std::sync::mpsc::Receiver<u64>) -> Vec<u64> {
    rx.try_iter().collect() // positive: arrival order leaks out
}

pub struct Suppressed;

impl Suppressed {
    pub fn hit(counter: &AtomicU64) {
        // mfv-lint: allow(D3, fixture: diagnostic counter, never read back into the schedule)
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

pub fn drain_sorted(rx: &std::sync::mpsc::Receiver<(u64, u64)>) -> Vec<(u64, u64)> {
    // Negative: blocking recv in send order, then a content-keyed sort.
    let mut out: Vec<(u64, u64)> = Vec::new();
    while let Ok(item) = rx.try_recv() {
        out.push(item);
    }
    out.sort_unstable();
    out
}

pub fn publish(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst); // negative: sequentially consistent
}
