//! Serve-scope fixture: the query front end is in scope for D1 (answers
//! must not depend on map iteration order) and P1 (a malformed request
//! must yield an ERR reply, never abort a worker).

use std::collections::HashMap; // positive: D1 fires here

pub fn positive_unwrap(req: Option<&str>) -> &str {
    req.unwrap() // positive: P1 fires here
}

pub fn suppressed_probe(k: &str) -> u32 {
    // mfv-lint: allow(D1, fixture: probed by key only, order never observed)
    let m: HashMap<String, u32> = HashMap::new();
    m.get(k).copied().unwrap_or(0)
}

pub fn negative(req: Option<&str>) -> Result<&str, String> {
    req.ok_or_else(|| "empty request".to_string())
}
