//! End-to-end linter tests over fixture workspaces.
//!
//! Each fixture under `tests/fixtures/<rule>/` mirrors the real workspace
//! shape (`crates/<name>/src/lib.rs`) and contains, per rule, a positive
//! case (the rule fires), a negative case (clean idiom, no finding), and a
//! suppressed case (annotated with a reasoned `allow`).

use std::path::PathBuf;

use mfv_lint::{scan_workspace, Report, RuleId};

fn scan_fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    scan_workspace(&root).expect("fixture root scans")
}

fn lines_for(report: &Report, rule: RuleId) -> Vec<usize> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn d1_fixture_positive_negative_suppressed() {
    let report = scan_fixture("d1");
    // Exactly the two marked positives: the `use` and the struct field.
    // The annotated HashSet and the BTreeMap lines stay quiet.
    assert_eq!(lines_for(&report, RuleId::D1), vec![4, 7]);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

#[test]
fn d2_fixture_positive_negative_suppressed() {
    let report = scan_fixture("d2");
    // `Instant::now` and `thread_rng`; the annotated clock and the seeded
    // RNG stay quiet.
    assert_eq!(lines_for(&report, RuleId::D2), vec![4, 8]);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

#[test]
fn p1_fixture_positive_negative_suppressed() {
    let report = scan_fixture("p1");
    // `.unwrap()` and the slice index; the annotated index, the Result
    // path, and the `#[cfg(test)]` module stay quiet.
    assert_eq!(lines_for(&report, RuleId::P1), vec![4, 8]);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

#[test]
fn w1_fixture_positive_negative_suppressed() {
    let report = scan_fixture("w1");
    // The unguarded index and the `panic!`; the annotated guarded index
    // and the typed-error path stay quiet.
    assert_eq!(lines_for(&report, RuleId::W1), vec![6, 11]);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

#[test]
fn d3_fixture_positive_negative_suppressed() {
    let report = scan_fixture("d3");
    // The relaxed counter and the `try_iter` drain; the annotated counter,
    // the SeqCst counter, and the sorted `try_recv` drain stay quiet.
    assert_eq!(lines_for(&report, RuleId::D3), vec![7, 11]);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

#[test]
fn watch_fixture_covers_mgmt_scope() {
    // mgmt is in scope for D1 (watcher iteration order feeds the verdict
    // journal), D2 (seeded stream faults), and P1 (no panics mid-stream):
    // one positive each; the suppressed and clean cases stay quiet.
    let report = scan_fixture("watch");
    assert_eq!(lines_for(&report, RuleId::D1), vec![5]);
    assert_eq!(lines_for(&report, RuleId::D2), vec![14]);
    assert_eq!(lines_for(&report, RuleId::P1), vec![25]);
    assert_eq!(report.violations.len(), 3, "{:#?}", report.violations);
}

#[test]
fn serve_fixture_covers_query_front_end_scope() {
    // serve is in scope for D1 (byte-identical answers across workers
    // forbid order-leaking maps in reply paths) and P1 (malformed
    // requests degrade via ERR replies): one positive each; the
    // suppressed probe and the Result path stay quiet.
    let report = scan_fixture("serve");
    assert_eq!(lines_for(&report, RuleId::D1), vec![5]);
    assert_eq!(lines_for(&report, RuleId::P1), vec![8]);
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

#[test]
fn fixture_reports_are_deterministic() {
    for name in ["d1", "d2", "d3", "p1", "w1", "watch", "serve"] {
        let a = scan_fixture(name);
        let b = scan_fixture(name);
        let key = |r: &Report| -> Vec<(String, usize, usize)> {
            r.violations
                .iter()
                .map(|v| (v.file.display().to_string(), v.line, v.col))
                .collect()
        };
        assert_eq!(key(&a), key(&b), "scan of {name} must be reproducible");
    }
}

/// The real workspace must stay lint-clean: this is the same gate CI runs
/// via `cargo run -p mfv-lint`, expressed as a test so a plain `cargo test`
/// also catches regressions.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("lint crate lives at <root>/crates/lint");
    let report = scan_workspace(&root).expect("workspace scans");
    let rendered: Vec<String> = report.violations.iter().map(mfv_lint::render).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
