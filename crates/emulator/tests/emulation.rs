//! End-to-end emulator tests: boot, converge, inject, fail, replay.

use std::net::Ipv4Addr;

use mfv_config::{IfaceSpec, RouterSpec, Vendor};
use mfv_emulator::{
    outcome_distribution, run_seeds, run_seeds_detailed, Cluster, Emulation, EmulationConfig,
    ExternalPeerSpec, NodeSpec, Topology,
};
use mfv_types::{AsNum, LinkId, NodeId, RouteProtocol};
use mfv_vrouter::{VendorBugs, VendorProfile};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// r1 - r2 - r3 line, single AS, IS-IS everywhere + iBGP full mesh over
/// loopbacks with next-hop-self; r1 and r3 originate a "customer" prefix.
fn line3_topology() -> Topology {
    let asn = AsNum(65000);
    let lo = |n: u8| Ipv4Addr::new(2, 2, 2, n);

    let r1 = RouterSpec::new("r1", asn, lo(1))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
        .ibgp(lo(2))
        .ibgp(lo(3))
        .network("203.0.113.0/24".parse().unwrap())
        .network("2.2.2.1/32".parse().unwrap());
    // The customer prefix must exist in the RIB for `network` to fire:
    // model it as a connected stub interface.
    let r1 = r1.iface(IfaceSpec::new(
        "Ethernet9",
        "203.0.113.1/24".parse().unwrap(),
    ));

    let r2 = RouterSpec::new("r2", asn, lo(2))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap()).with_isis())
        .iface(IfaceSpec::new("Ethernet2", "100.64.0.2/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .ibgp(lo(3));

    let r3 = RouterSpec::new("r3", asn, lo(3))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.3/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .ibgp(lo(2))
        .network("198.51.100.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "198.51.100.1/24".parse().unwrap(),
        ));

    let mut t = Topology::new("line3");
    t.add_node(NodeSpec::from_config("r1", &r1.build()));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_node(NodeSpec::from_config("r3", &r3.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    t.add_link(("r2", "Ethernet2"), ("r3", "Ethernet1"));
    t
}

fn quick_cfg(seed: u64) -> EmulationConfig {
    EmulationConfig {
        seed,
        ..Default::default()
    }
}

#[test]
fn line3_boots_and_converges() {
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), quick_cfg(1)).unwrap();
    let report = emu.run_until_converged();
    assert!(report.converged, "{report:?}");
    assert!(report.boot_complete_at.is_some());
    assert!(report.converged_at > report.boot_complete_at.unwrap());
    assert_eq!(report.crashes, 0);

    // r3 reaches r1's customer prefix via iBGP (next-hop-self over IS-IS).
    let r3 = emu.router(&NodeId::from("r3")).unwrap();
    let e = r3.fib().lookup(ip("203.0.113.9")).expect("customer route");
    assert_eq!(e.proto, RouteProtocol::IbgpLearned);

    // And r1 reaches r3's prefix.
    let r1 = emu.router(&NodeId::from("r1")).unwrap();
    assert!(r1.fib().lookup(ip("198.51.100.9")).is_some());

    // Transit r2 has loopback routes from IS-IS.
    let r2 = emu.router(&NodeId::from("r2")).unwrap();
    assert_eq!(
        r2.fib().lookup(ip("2.2.2.1")).unwrap().proto,
        RouteProtocol::Isis
    );
}

#[test]
fn dataplane_snapshot_reflects_fibs() {
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), quick_cfg(1)).unwrap();
    emu.run_until_converged();
    let dp = emu.dataplane();
    assert_eq!(dp.nodes.len(), 3);
    assert_eq!(dp.links.len(), 2);
    assert!(dp.total_entries() > 8);
    assert_eq!(dp.owner_of(ip("2.2.2.2")), Some(&NodeId::from("r2")));
}

#[test]
fn link_cut_withdraws_transit_routes() {
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), quick_cfg(1)).unwrap();
    emu.run_until_converged();
    let had = emu
        .router(&NodeId::from("r1"))
        .unwrap()
        .fib()
        .lookup(ip("198.51.100.9"))
        .is_some();
    assert!(had);

    emu.set_link(
        &LinkId::new(
            ("r2".into(), "Ethernet2".into()),
            ("r3".into(), "Ethernet1".into()),
        ),
        false,
    );
    let report = emu.run_until_converged();
    assert!(report.converged);
    let r1 = emu.router(&NodeId::from("r1")).unwrap();
    assert!(
        r1.fib().lookup(ip("198.51.100.9")).is_none(),
        "r3's prefix must be gone after the cut"
    );
    assert!(
        r1.fib().lookup(ip("2.2.2.2")).is_some(),
        "r2 still reachable"
    );
}

#[test]
fn same_seed_replays_identically() {
    let digest = |seed: u64| {
        let mut emu =
            Emulation::new(line3_topology(), Cluster::single_node(), quick_cfg(seed)).unwrap();
        emu.run_until_converged();
        emu.dataplane().digest()
    };
    assert_eq!(
        digest(42),
        digest(42),
        "same seed, same converged dataplane"
    );
}

#[test]
fn route_injection_scales_fib() {
    // Attach an external feed of 5,000 routes to r1 via a stub subnet.
    let mut topo = line3_topology();
    // Give r1 an interface toward the peer and a neighbor statement.
    let spec = topo
        .nodes
        .iter_mut()
        .find(|n| n.name == NodeId::from("r1"))
        .unwrap();
    let mut parsed = mfv_config::parse(Vendor::Ceos, &spec.config_text)
        .unwrap()
        .config;
    let eth = parsed.ensure_interface("Ethernet5");
    eth.addr = Some("100.64.9.0/31".parse().unwrap());
    eth.routed = true;
    parsed
        .bgp
        .as_mut()
        .unwrap()
        .neighbors
        .push(mfv_config::BgpNeighborConfig::new(
            ip("100.64.9.1"),
            AsNum(64999),
        ));
    spec.config_text = mfv_config::render(&parsed);

    topo.external_peers.push(ExternalPeerSpec {
        addr: ip("100.64.9.1"),
        asn: AsNum(64999),
        attach_to: "r1".into(),
        route_count: 5_000,
        base_octet: Some(20),
    });

    let mut emu = Emulation::new(topo, Cluster::single_node(), quick_cfg(3)).unwrap();
    let report = emu.run_until_converged();
    assert!(report.converged, "{report:?}");

    // r1 holds all injected routes as eBGP.
    let r1 = emu.router(&NodeId::from("r1")).unwrap();
    let e = r1.fib().lookup(ip("20.3.7.1")).expect("injected route");
    assert_eq!(e.proto, RouteProtocol::EbgpLearned);
    assert!(r1.fib().len() >= 5_000);

    // And they propagate over iBGP to r3.
    let r3 = emu.router(&NodeId::from("r3")).unwrap();
    let e3 = r3.fib().lookup(ip("20.3.7.1")).expect("propagated route");
    assert_eq!(e3.proto, RouteProtocol::IbgpLearned);
}

#[test]
fn vendor_interplay_crash_causes_partial_outage() {
    // r1's parser crashes on attribute 213; r3 (the far end) emits it on
    // every update. The poisoned update reaches r1 over iBGP and kills its
    // routing process — the paper's §2 incident.
    let mut cfg = quick_cfg(5);
    cfg.auto_restart_crashed = false;
    cfg.profile_overrides.insert(
        "r1".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            crash_on_unknown_attr: Some(213),
            ..Default::default()
        }),
    );
    cfg.profile_overrides.insert(
        "r3".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            emit_unusual_attr: Some(213),
            ..Default::default()
        }),
    );
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), cfg).unwrap();
    let report = emu.run_until_converged();
    assert!(report.crashes >= 1, "{report:?}");
    let r1 = emu.router(&NodeId::from("r1")).unwrap();
    assert!(!r1.is_running());
    assert!(r1.fib().is_empty(), "crashed router forwards nothing");
    // The dataplane snapshot records the outage.
    let dp = emu.dataplane();
    assert!(!dp.nodes[&NodeId::from("r1")].up);
}

#[test]
fn crash_with_watchdog_restarts_into_crash_loop() {
    let mut cfg = quick_cfg(5);
    cfg.profile_overrides.insert(
        "r1".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            crash_on_unknown_attr: Some(213),
            ..Default::default()
        }),
    );
    cfg.profile_overrides.insert(
        "r3".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            emit_unusual_attr: Some(213),
            ..Default::default()
        }),
    );
    // Cap the run: a crash loop never goes quiet.
    cfg.max_sim_time = mfv_types::SimDuration::from_mins(30);
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), cfg).unwrap();
    let report = emu.run_until_converged();
    assert!(
        report.crashes >= 2,
        "restart leads to another crash: {report:?}"
    );
}

#[test]
fn config_push_shutting_session_reconverges() {
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), quick_cfg(1)).unwrap();
    emu.run_until_converged();
    assert!(emu
        .router(&NodeId::from("r3"))
        .unwrap()
        .fib()
        .lookup(ip("203.0.113.9"))
        .is_some());

    // Push a config to r1 dropping its iBGP session to r3.
    let spec = emu.topology.node(&NodeId::from("r1")).unwrap().clone();
    let mut parsed = mfv_config::parse(Vendor::Ceos, &spec.config_text)
        .unwrap()
        .config;
    parsed
        .bgp
        .as_mut()
        .unwrap()
        .neighbors
        .retain(|n| n.peer != ip("2.2.2.3"));
    let text = mfv_config::render(&parsed);
    emu.push_config(&NodeId::from("r1"), &text).unwrap();
    let report = emu.run_until_converged();
    assert!(report.converged);
    assert!(
        emu.router(&NodeId::from("r3"))
            .unwrap()
            .fib()
            .lookup(ip("203.0.113.9"))
            .is_none(),
        "customer prefix must vanish at r3 without the session"
    );
}

#[test]
fn cli_works_against_running_emulation() {
    let mut emu = Emulation::new(line3_topology(), Cluster::single_node(), quick_cfg(1)).unwrap();
    emu.run_until_converged();
    let out = emu.cli(&NodeId::from("r2"), "show isis neighbors").unwrap();
    assert!(out.contains("Up"), "{out}");
    let out = emu.cli(&NodeId::from("r1"), "show bgp summary").unwrap();
    assert!(out.contains("Estab"), "{out}");
    assert!(emu.cli(&NodeId::from("ghost"), "show version").is_none());
}

#[test]
fn parallel_seed_runs_produce_consistent_reachability() {
    let topo = line3_topology();
    let runs = run_seeds(&topo, Cluster::single_node, &quick_cfg(0), &[1, 2, 3, 4]);
    assert_eq!(runs.len(), 4);
    for run in &runs {
        assert!(run.report.converged, "seed {}: {:?}", run.seed, run.report);
        // Reachability-level outcome must agree even if tiebreaks differ.
        let r3 = &run.dataplane.nodes[&NodeId::from("r3")];
        assert!(r3.fib().lookup(ip("203.0.113.9")).is_some());
    }
    let dist = outcome_distribution(&runs);
    let total: usize = dist.values().map(|v| v.len()).sum();
    assert_eq!(total, 4);
}

#[test]
fn detailed_seed_runs_match_plain_and_stay_in_order() {
    let topo = line3_topology();
    let plain = run_seeds(&topo, Cluster::single_node, &quick_cfg(0), &[5, 6, 7]);
    let detailed = run_seeds_detailed(&topo, Cluster::single_node, &quick_cfg(0), &[5, 6, 7]);
    assert_eq!(detailed.len(), 3);
    for (p, d) in plain.iter().zip(&detailed) {
        let d = d.as_ref().expect("seed run succeeds");
        assert_eq!(p.seed, d.seed);
        assert_eq!(p.dataplane.digest(), d.dataplane.digest());
    }
}

#[test]
fn seed_worker_panic_is_confined_to_its_seed() {
    let topo = line3_topology();
    // A cluster factory that panics poisons every run that calls it — but
    // each failure must surface as that seed's error, not tear down the
    // sweep or the test harness.
    let results = run_seeds_detailed(
        &topo,
        || panic!("cluster provisioning exploded"),
        &quick_cfg(0),
        &[1, 2],
    );
    assert_eq!(results.len(), 2);
    for (r, seed) in results.iter().zip([1u64, 2]) {
        let err = r.as_ref().expect_err("run must fail");
        assert_eq!(err.seed, seed);
        assert!(
            err.message.contains("cluster provisioning exploded"),
            "{err}"
        );
    }
}

/// Demand-driven polling acceptance: an idle network — routers with only
/// connected interfaces, no IS-IS, no BGP — must never put a poll event on
/// the heap. The only scheduled events are the 60 pod boots; each router is
/// woken exactly once after boot, reports no future work, and is never
/// visited again. Under the old fixed-interval scheduler this run cost
/// O(nodes x sim-time) poll events.
#[test]
fn idle_network_schedules_zero_poll_events() {
    const N: u8 = 60;
    let asn = AsNum(65000);
    let mut t = Topology::new("idle60");
    for i in 1..=N {
        let name = format!("r{i}");
        let spec = RouterSpec::new(&name, asn, Ipv4Addr::new(9, 9, 9, i)).iface(IfaceSpec::new(
            "Ethernet1",
            format!("10.{i}.0.1/24").parse().unwrap(),
        ));
        t.add_node(NodeSpec::from_config(name.as_str(), &spec.build()));
    }
    let mut emu = Emulation::new(t, Cluster::single_node(), quick_cfg(7)).unwrap();
    let report = emu.run_until_converged();
    assert!(report.converged, "{report:?}");
    // Heap traffic: one PodReady per node, nothing else — zero poll events.
    assert_eq!(report.events_scheduled, u64::from(N));
    // Work items: each boot plus exactly one demand-driven wake per router
    // (which finds no engines and requests no further wakeup).
    assert_eq!(report.events_processed, 2 * u64::from(N));
}
