//! Chaos-schedule integration tests: fault injection, convergence verdicts,
//! and replay determinism over `(topology, seed, plan)`.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use mfv_config::{IfaceSpec, RouterSpec};
use mfv_emulator::{
    ChaosPlan, Cluster, ConvergenceVerdict, Emulation, EmulationConfig, ImpairSpec, NodeSpec,
    Topology,
};
use mfv_mgmt::{Aft, Telemetry};
use mfv_types::{AsNum, LinkId, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// r1 - r2 - r3 line: IS-IS + iBGP full mesh, customer prefixes at both
/// ends (same shape as the fault-free integration tests).
fn line3_topology() -> Topology {
    let asn = AsNum(65000);
    let lo = |n: u8| Ipv4Addr::new(2, 2, 2, n);

    let r1 = RouterSpec::new("r1", asn, lo(1))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
        .ibgp(lo(2))
        .ibgp(lo(3))
        .network("203.0.113.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "203.0.113.1/24".parse().unwrap(),
        ));

    let r2 = RouterSpec::new("r2", asn, lo(2))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap()).with_isis())
        .iface(IfaceSpec::new("Ethernet2", "100.64.0.2/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .ibgp(lo(3));

    let r3 = RouterSpec::new("r3", asn, lo(3))
        .iface(IfaceSpec::new("Ethernet1", "100.64.0.3/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .ibgp(lo(2))
        .network("198.51.100.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "198.51.100.1/24".parse().unwrap(),
        ));

    let mut t = Topology::new("line3-chaos");
    t.add_node(NodeSpec::from_config("r1", &r1.build()));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_node(NodeSpec::from_config("r3", &r3.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    t.add_link(("r2", "Ethernet2"), ("r3", "Ethernet1"));
    t
}

fn r2r3_link() -> LinkId {
    LinkId::new(
        ("r2".into(), "Ethernet2".into()),
        ("r3".into(), "Ethernet1".into()),
    )
}

fn cfg_with(seed: u64, chaos: ChaosPlan, max_sim_time: SimDuration) -> EmulationConfig {
    EmulationConfig {
        seed,
        chaos,
        max_sim_time,
        ..Default::default()
    }
}

/// Boot on the single-node cluster completes around t=430s; faults in these
/// tests start at 450s to land in steady state.
const AFTER_BOOT: SimTime = SimTime(450_000);

#[test]
fn flap_train_yields_oscillating_verdict_and_control_run_converges() {
    // A flap every 20s (8s down) on r2-r3, repeating past the 12-minute
    // budget: neither the down nor the up interval ever spans the 12s quiet
    // period, so the run cannot converge.
    let plan = ChaosPlan::new().repeated_link_flap(
        r2r3_link(),
        AFTER_BOOT,
        SimDuration::from_secs(8),
        40,
        SimDuration::from_secs(20),
    );
    let budget = SimDuration::from_mins(12);
    let mut emu = Emulation::new(
        line3_topology(),
        Cluster::single_node(),
        cfg_with(5, plan, budget),
    )
    .unwrap();
    let report = emu.run_until_converged();
    assert!(!report.converged);
    match &report.verdict {
        ConvergenceVerdict::Oscillating { period, prefixes } => {
            assert!(!prefixes.is_empty());
            // r3's customer prefix is withdrawn and restored every cycle.
            assert!(
                prefixes.contains(&"198.51.100.0/24".parse().unwrap()),
                "{prefixes:?}"
            );
            // One flap cycle is 20s: down and up each change the FIB, so
            // consecutive changes are 8s and 12s apart. The detected period
            // must land in that band.
            assert!(
                period.as_millis() >= 6_000 && period.as_millis() <= 14_000,
                "detected period {period}"
            );
        }
        other => panic!("expected Oscillating, got {other:?}"),
    }

    // Control: identical run minus the flap schedule converges.
    let mut control = Emulation::new(
        line3_topology(),
        Cluster::single_node(),
        cfg_with(5, ChaosPlan::new(), budget),
    )
    .unwrap();
    let control_report = control.run_until_converged();
    assert!(control_report.converged, "{control_report:?}");
    assert!(control_report.verdict.is_converged());
}

#[test]
fn finite_flap_train_settles_back_to_the_clean_dataplane() {
    // Three flaps that end well before the budget: the verdict must be
    // Converged and the final dataplane identical to a fault-free run.
    let plan = ChaosPlan::new().repeated_link_flap(
        r2r3_link(),
        AFTER_BOOT,
        SimDuration::from_secs(8),
        3,
        SimDuration::from_secs(20),
    );
    let budget = SimDuration::from_mins(30);
    let mut emu = Emulation::new(
        line3_topology(),
        Cluster::single_node(),
        cfg_with(5, plan, budget),
    )
    .unwrap();
    let report = emu.run_until_converged();
    assert!(report.converged, "{report:?}");

    let mut clean = Emulation::new(
        line3_topology(),
        Cluster::single_node(),
        cfg_with(5, ChaosPlan::new(), budget),
    )
    .unwrap();
    clean.run_until_converged();
    assert_eq!(emu.dataplane().digest(), clean.dataplane().digest());
}

#[test]
fn kill_routing_crashes_and_watchdog_recovers() {
    let plan = ChaosPlan::new().kill_routing("r2", AFTER_BOOT);
    let budget = SimDuration::from_mins(30);
    let mut emu = Emulation::new(
        line3_topology(),
        Cluster::single_node(),
        cfg_with(7, plan, budget),
    )
    .unwrap();
    let report = emu.run_until_converged();
    assert!(report.converged, "{report:?}");
    assert!(report.crashes >= 1, "{report:?}");

    // After restart and reconvergence, transit routes are back.
    let r1 = emu.router(&NodeId::from("r1")).unwrap();
    assert!(r1.fib().lookup(ip("198.51.100.9")).is_some());
}

#[test]
fn machine_failure_reschedules_pods_and_reconverges() {
    // Two machines; fail each in turn at 500s. Whichever hosted pods, they
    // are evicted, resubmitted to the survivor, rebooted, and the network
    // reconverges to the same dataplane as a fault-free run.
    let budget = SimDuration::from_mins(40);
    let mut clean = Emulation::new(
        line3_topology(),
        Cluster::of_size(2),
        cfg_with(11, ChaosPlan::new(), budget),
    )
    .unwrap();
    assert!(clean.run_until_converged().converged);
    let clean_digest = clean.dataplane().digest();

    for machine in ["node-0", "node-1"] {
        let plan = ChaosPlan::new().fail_machine(machine, SimTime(500_000));
        let mut emu = Emulation::new(
            line3_topology(),
            Cluster::of_size(2),
            cfg_with(11, plan, budget),
        )
        .unwrap();
        let report = emu.run_until_converged();
        assert!(report.converged, "fail {machine}: {report:?}");
        for node in ["r1", "r2", "r3"] {
            assert!(
                emu.router(&NodeId::from(node)).is_some(),
                "{node} must be rescheduled after {machine} fails"
            );
        }
        assert_eq!(emu.dataplane().digest(), clean_digest, "fail {machine}");
    }
}

#[test]
fn impairment_window_slows_but_does_not_break_convergence() {
    // 35% drop + 10% duplication + 150ms extra delay on r1-r2 while a flap
    // on r2-r3 forces reconvergence traffic through the impaired link.
    let spec = ImpairSpec {
        drop_pct: 35,
        duplicate_pct: 10,
        extra_delay_ms: 150,
    };
    let plan = ChaosPlan::new()
        .impair_link(
            LinkId::new(
                ("r1".into(), "Ethernet1".into()),
                ("r2".into(), "Ethernet1".into()),
            ),
            AFTER_BOOT,
            SimTime(700_000),
            spec,
        )
        .link_flap(r2r3_link(), SimTime(460_000), SimDuration::from_secs(8));
    let budget = SimDuration::from_mins(40);
    let run = |seed| {
        let mut emu = Emulation::new(
            line3_topology(),
            Cluster::single_node(),
            cfg_with(seed, plan.clone(), budget),
        )
        .unwrap();
        let report = emu.run_until_converged();
        (report, emu.dataplane().digest())
    };
    let (report, digest) = run(13);
    assert!(report.converged, "{report:?}");
    // Replay: same (topology, seed, plan) → same report and dataplane.
    let (report2, digest2) = run(13);
    assert_eq!(report, report2);
    assert_eq!(digest, digest2);
}

/// Extracts every node's AFT through the management plane, as the pipeline
/// does — the satellite acceptance check wants AFT-level determinism, not
/// just digest equality.
fn extract_afts(emu: &Emulation) -> BTreeMap<NodeId, Aft> {
    ["r1", "r2", "r3"]
        .iter()
        .filter_map(|n| {
            let node = NodeId::from(*n);
            let router = emu.router(&node)?;
            let t = Telemetry::from_router(router).ok()?;
            t.aft().map(|a| (node, a))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Replaying any chaos plan with the same `(topology, seed, plan)`
    // yields an identical RunReport and identical extracted AFTs.
    #[test]
    fn chaos_replay_is_deterministic(
        seed in 0u64..10_000,
        start_s in 440u64..470,
        every_s in 15u64..25,
        repeats in 2u32..6,
    ) {
        let plan = ChaosPlan::new()
            .repeated_link_flap(
                r2r3_link(),
                SimTime(start_s * 1_000),
                SimDuration::from_secs(7),
                repeats,
                SimDuration::from_secs(every_s),
            )
            .kill_routing("r2", SimTime((start_s + 90) * 1_000));
        let budget = SimDuration::from_mins(45);
        let run = || {
            let mut emu = Emulation::new(
                line3_topology(),
                Cluster::single_node(),
                cfg_with(seed, plan.clone(), budget),
            )
            .unwrap();
            let report = emu.run_until_converged();
            let afts = extract_afts(&emu);
            (report, afts, emu.dataplane().digest())
        };
        let (report_a, afts_a, digest_a) = run();
        let (report_b, afts_b, digest_b) = run();
        prop_assert_eq!(report_a, report_b);
        prop_assert_eq!(digest_a, digest_b);
        prop_assert_eq!(afts_a.len(), afts_b.len());
        for (node, aft) in &afts_a {
            let other = &afts_b[node];
            prop_assert!(aft.to_fib().same_as(&other.to_fib()), "AFT of {} differs", node);
        }
    }
}
