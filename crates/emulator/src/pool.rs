//! Shared worker-pool plumbing for every place the emulator spawns
//! threads: the sharded engine's window workers ([`with_workers`]) and the
//! multi-seed fan-out ([`run_indexed`]). One spawn/bounding implementation,
//! so thread-count clamping, panic confinement, and lock-poison recovery
//! behave identically everywhere.
//!
//! Determinism note: thread counts and scheduling affect only *when* work
//! runs, never results — callers own that contract (the engine via
//! conservative time windows, the seed pool via per-index result slots).
//! No `Ordering::Relaxed` atomics live here (mfv-lint rule D3): work
//! distribution uses a plain mutex-guarded cursor, which is equally fast at
//! this granularity (items are whole emulation runs or time windows).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

/// Resolves a requested thread count: `0` means "use the host's available
/// parallelism", and the result is clamped to `[1, work_items]` so we never
/// spawn idle workers.
pub(crate) fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let req = if requested == 0 { hw } else { requested };
    req.max(1).min(work_items.max(1))
}

/// Locks a mutex, recovering from poisoning: a worker that panicked while
/// holding the guard leaves per-item state that the caller still needs to
/// read (to report the panic deterministically) — the panic itself is
/// surfaced separately, never swallowed.
pub(crate) fn lock_or_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `lead` on the current thread while `threads` scoped workers each
/// execute `worker(index)`. Returns `lead`'s result once every worker has
/// finished. Workers that need to rendezvous with the lead (the engine's
/// barrier protocol) must catch their own panics so the rendezvous always
/// completes; a panic that *does* escape a worker propagates at scope exit.
pub(crate) fn with_workers<R>(
    threads: usize,
    worker: impl Fn(usize) + Sync,
    lead: impl FnOnce() -> R,
) -> R {
    std::thread::scope(|s| {
        for w in 0..threads {
            let worker = &worker;
            s.spawn(move || worker(w));
        }
        lead()
    })
}

/// Renders a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Runs `job(i)` for every `i in 0..count` across a bounded worker pool,
/// returning per-index outcomes in index order regardless of which worker
/// ran what. Panics are confined to their item (`Err(message)`); a slot
/// that somehow never ran reports an error rather than aborting the batch.
pub(crate) fn run_indexed<T: Send>(
    requested_threads: usize,
    count: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<Result<T, String>> {
    let threads = effective_threads(requested_threads, count);
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = Mutex::new(0usize);
    with_workers(
        threads,
        |_w| loop {
            let i = {
                let mut g = lock_or_recover(&cursor);
                if *g >= count {
                    break;
                }
                let i = *g;
                *g += 1;
                i
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| job(i)))
                .map_err(|payload| format!("worker panicked: {}", panic_message(payload)));
            *lock_or_recover(&slots[i]) = Some(outcome);
        },
        || (),
    );
    slots
        .into_iter()
        .map(|slot| {
            lock_or_recover(&slot)
                .take()
                .unwrap_or_else(|| Err("worker pool lost this item before running it".to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_clamps_to_work_and_floor() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 100) >= 1);
    }

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let out = run_indexed(3, 10, |i| i * i);
        let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_confines_panics_to_their_item() {
        let out = run_indexed(2, 4, |i| {
            if i == 2 {
                panic!("boom {i}");
            }
            i
        });
        assert_eq!(out[0].as_ref().unwrap(), &0);
        assert_eq!(out[1].as_ref().unwrap(), &1);
        assert!(out[2].as_ref().unwrap_err().contains("boom 2"));
        assert_eq!(out[3].as_ref().unwrap(), &3);
    }

    #[test]
    fn with_workers_runs_lead_alongside_workers() {
        let hits = Mutex::new(0usize);
        let r = with_workers(
            4,
            |_w| {
                *lock_or_recover(&hits) += 1;
            },
            || 42,
        );
        assert_eq!(r, 42);
        assert_eq!(*lock_or_recover(&hits), 4);
    }
}
