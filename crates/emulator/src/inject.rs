//! External BGP peers: the route-injection harness.
//!
//! §5 of the paper brings up a 30-node replica "and inject[s]
//! production-recorded routes (millions from each BGP peer)". We have no
//! production feed to replay, so an [`ExternalPeer`] synthesises a
//! deterministic route table of the requested size and speaks real BGP to
//! its attached router: OPEN handshake, batched UPDATEs, keepalives.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use mfv_types::{AsNum, AsPath, Origin, Prefix, SimDuration, SimTime};
use mfv_wire::bgp::{BgpMsg, OpenMsg, PathAttr, UpdateMsg};

/// Peer session state (simplified speaker: we always accept).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerState {
    Idle,
    OpenSent,
    Established,
}

/// A synthetic external BGP peer.
pub struct ExternalPeer {
    /// Our address (the routers' configs name this as their neighbor).
    pub addr: Ipv4Addr,
    pub asn: AsNum,
    /// The router-side session address we talk to.
    pub router_addr: Ipv4Addr,
    state: PeerState,
    /// Routes remaining to announce.
    pending: VecDeque<Prefix>,
    total: usize,
    /// Prefixes per UPDATE message.
    batch: usize,
    /// UPDATE messages sent per poll tick (paces the feed like a real
    /// session's TCP window would).
    msgs_per_tick: usize,
    last_keepalive: SimTime,
    last_open_attempt: Option<SimTime>,
    /// OPEN attempts since the session was last Established; drives the
    /// capped exponential retry backoff.
    open_attempts: u32,
    /// Set once the retry budget is exhausted: the peer stops trying (a
    /// real feed operator pages a human instead of hammering a dead box).
    gave_up: bool,
    /// Last instant a batch was released; pacing is enforced here so that
    /// extra polls (e.g. triggered by router replies) cannot speed the feed.
    last_batch: Option<SimTime>,
    out: Vec<(Ipv4Addr, BgpMsg)>,
}

/// Generates `count` deterministic /24 prefixes under `base_octet`/8,
/// rolling into adjacent first octets when count exceeds 65 536.
pub fn synthetic_prefixes(base_octet: u8, count: usize) -> Vec<Prefix> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let o1 = base_octet as usize + (i >> 16);
        let o2 = (i >> 8) & 0xff;
        let o3 = i & 0xff;
        out.push(Prefix::new(
            Ipv4Addr::new(o1 as u8, o2 as u8, o3 as u8, 0),
            24,
        ));
    }
    out
}

impl ExternalPeer {
    pub fn new(
        addr: Ipv4Addr,
        asn: AsNum,
        router_addr: Ipv4Addr,
        routes: Vec<Prefix>,
    ) -> ExternalPeer {
        ExternalPeer {
            addr,
            asn,
            router_addr,
            state: PeerState::Idle,
            total: routes.len(),
            pending: routes.into(),
            batch: 250,
            msgs_per_tick: 2,
            last_keepalive: SimTime::ZERO,
            last_open_attempt: None,
            open_attempts: 0,
            gave_up: false,
            last_batch: None,
            out: Vec::new(),
        }
    }

    /// OPEN retry policy: capped exponential backoff, bounded attempts.
    const OPEN_BASE_RETRY: SimDuration = SimDuration::from_secs(5);
    const OPEN_MAX_RETRY: SimDuration = SimDuration::from_secs(80);
    const OPEN_MAX_ATTEMPTS: u32 = 8;

    /// Delay before the next OPEN attempt: 5 s doubling per failure,
    /// capped at 80 s.
    fn open_retry_delay(&self) -> SimDuration {
        let exp = self.open_attempts.saturating_sub(1).min(4); // 5s << 4 = 80s cap
        SimDuration::from_millis(
            Self::OPEN_BASE_RETRY
                .as_millis()
                .saturating_mul(1 << exp)
                .min(Self::OPEN_MAX_RETRY.as_millis()),
        )
    }

    /// True once the peer has abandoned session establishment.
    pub fn gave_up(&self) -> bool {
        self.gave_up
    }

    pub fn state(&self) -> PeerState {
        self.state
    }

    /// True once every route has been announced — or the peer has given up
    /// on ever establishing (so a dead router cannot stall the run forever).
    pub fn done(&self) -> bool {
        self.gave_up || (self.state == PeerState::Established && self.pending.is_empty())
    }

    pub fn announced(&self) -> usize {
        self.total - self.pending.len()
    }

    /// Feeds a message received from the router.
    pub fn push_msg(&mut self, now: SimTime, msg: BgpMsg) {
        match msg {
            BgpMsg::Open(open) => {
                let _ = open;
                if self.state == PeerState::Idle {
                    self.out.push((
                        self.router_addr,
                        BgpMsg::Open(OpenMsg::new(self.asn, 90, self.addr)),
                    ));
                }
                self.out.push((self.router_addr, BgpMsg::Keepalive));
                self.state = PeerState::Established;
                self.open_attempts = 0;
                self.last_keepalive = now;
            }
            BgpMsg::Keepalive => {
                if self.state == PeerState::OpenSent {
                    self.state = PeerState::Established;
                    self.open_attempts = 0;
                }
            }
            BgpMsg::Notification(_) => {
                self.state = PeerState::Idle;
            }
            BgpMsg::Update(_) => {
                // Routes from the network are accepted silently (we are a
                // feed, not a transit).
            }
        }
    }

    /// Advances the peer; returns messages addressed to the router.
    pub fn poll(&mut self, now: SimTime) -> Vec<(Ipv4Addr, BgpMsg)> {
        match self.state {
            PeerState::Idle => {
                if self.gave_up {
                    return std::mem::take(&mut self.out);
                }
                let retry = self
                    .last_open_attempt
                    .map(|t| now.since(t) >= self.open_retry_delay())
                    .unwrap_or(true);
                if retry {
                    if self.open_attempts >= Self::OPEN_MAX_ATTEMPTS {
                        self.gave_up = true;
                        return std::mem::take(&mut self.out);
                    }
                    self.last_open_attempt = Some(now);
                    self.open_attempts += 1;
                    self.state = PeerState::OpenSent;
                    self.out.push((
                        self.router_addr,
                        BgpMsg::Open(OpenMsg::new(self.asn, 90, self.addr)),
                    ));
                }
            }
            PeerState::OpenSent => {
                if self
                    .last_open_attempt
                    .map(|t| now.since(t) >= SimDuration::from_secs(10))
                    .unwrap_or(true)
                {
                    self.state = PeerState::Idle;
                }
            }
            PeerState::Established => {
                if now.since(self.last_keepalive) >= SimDuration::from_secs(20) {
                    self.last_keepalive = now;
                    self.out.push((self.router_addr, BgpMsg::Keepalive));
                }
                let pacing_ok = self
                    .last_batch
                    .map(|t| now.since(t) >= SimDuration::from_millis(50))
                    .unwrap_or(true);
                if pacing_ok && !self.pending.is_empty() {
                    self.last_batch = Some(now);
                }
                for _ in 0..self.msgs_per_tick {
                    if !pacing_ok || self.pending.is_empty() {
                        break;
                    }
                    let mut nlri = Vec::with_capacity(self.batch);
                    for _ in 0..self.batch {
                        match self.pending.pop_front() {
                            Some(p) => nlri.push(p),
                            None => break,
                        }
                    }
                    self.out.push((
                        self.router_addr,
                        BgpMsg::Update(UpdateMsg {
                            withdrawn: vec![],
                            attrs: vec![
                                PathAttr::Origin(Origin::Igp),
                                PathAttr::AsPath(AsPath::sequence([self.asn])),
                                PathAttr::NextHop(self.addr),
                            ],
                            nlri,
                        }),
                    ));
                }
            }
        }
        std::mem::take(&mut self.out)
    }

    /// Next instant this peer needs servicing.
    pub fn next_wakeup(&self, now: SimTime) -> SimTime {
        match self.state {
            PeerState::Established if !self.pending.is_empty() => {
                // 2 × 250 routes per 50 ms ≈ 10k routes/s — the sustained
                // rate of a production BGP feed, which is what makes E5's
                // convergence time injection-dominated like the paper's.
                SimTime(now.0 + 50)
            }
            PeerState::Established => now + SimDuration::from_secs(20),
            // A peer that gave up needs no servicing; park it far out so it
            // cannot keep the event loop busy.
            _ if self.gave_up => now + SimDuration::from_mins(60),
            _ => now + SimDuration::from_secs(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(count: usize) -> ExternalPeer {
        ExternalPeer::new(
            Ipv4Addr::new(100, 64, 9, 1),
            AsNum(64999),
            Ipv4Addr::new(100, 64, 9, 0),
            synthetic_prefixes(20, count),
        )
    }

    #[test]
    fn synthetic_prefixes_are_unique_and_sized() {
        let ps = synthetic_prefixes(20, 70_000);
        assert_eq!(ps.len(), 70_000);
        let mut dedup = ps.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 70_000, "all prefixes distinct");
        assert_eq!(ps[0].to_string(), "20.0.0.0/24");
        assert_eq!(ps[65_536].to_string(), "21.0.0.0/24");
    }

    #[test]
    fn handshake_and_feed() {
        let mut p = peer(1000);
        let now = SimTime(1000);
        // Initiates an OPEN.
        let out = p.poll(now);
        assert!(matches!(out[0].1, BgpMsg::Open(_)));
        // Router's OPEN arrives; we complete and start feeding.
        p.push_msg(
            now,
            BgpMsg::Open(OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(1, 1, 1, 1))),
        );
        assert_eq!(p.state(), PeerState::Established);
        let out = p.poll(SimTime(2000));
        let updates: usize = out
            .iter()
            .filter(|(_, m)| matches!(m, BgpMsg::Update(_)))
            .count();
        assert!(updates > 0);
        assert!(p.announced() >= 250);
    }

    #[test]
    fn feed_completes_in_bounded_polls() {
        let mut p = peer(10_000);
        let mut now = SimTime(0);
        p.push_msg(
            now,
            BgpMsg::Open(OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(1, 1, 1, 1))),
        );
        let mut polls = 0;
        while !p.done() {
            now = SimTime(now.0 + 50);
            let _ = p.poll(now);
            polls += 1;
            assert!(polls < 100, "feed must finish (10k routes / 500 per poll)");
        }
        assert_eq!(p.announced(), 10_000);
    }

    #[test]
    fn notification_resets_session() {
        let mut p = peer(10);
        let now = SimTime(0);
        p.push_msg(
            now,
            BgpMsg::Open(OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(1, 1, 1, 1))),
        );
        assert_eq!(p.state(), PeerState::Established);
        p.push_msg(
            now,
            BgpMsg::Notification(mfv_wire::bgp::NotificationMsg {
                code: 6,
                subcode: 0,
                data: bytes::Bytes::new(),
            }),
        );
        assert_eq!(p.state(), PeerState::Idle);
    }

    #[test]
    fn open_retry_backs_off_and_gives_up() {
        let mut p = peer(10);
        let mut now = SimTime(0);
        let mut open_times: Vec<u64> = Vec::new();
        for _ in 0..1_000 {
            for (_, m) in p.poll(now) {
                if matches!(m, BgpMsg::Open(_)) {
                    open_times.push(now.0);
                }
            }
            if p.gave_up() {
                break;
            }
            now = SimTime(now.0 + 1_000);
        }
        assert!(p.gave_up(), "peer must stop retrying a dead router");
        assert!(p.done(), "a given-up peer reports done so runs can end");
        assert_eq!(open_times.len(), 8, "bounded attempts: {open_times:?}");
        // Inter-attempt gaps never shrink (exponential backoff, capped).
        let gaps: Vec<u64> = open_times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|g| g[1] >= g[0]),
            "backoff must be monotone: {gaps:?}"
        );
        assert!(
            *gaps.last().unwrap() <= 95_000,
            "backoff is capped: {gaps:?}"
        );
        // And it stays silent afterwards.
        for i in 0..50 {
            assert!(p.poll(SimTime(now.0 + 100_000 + i * 7_000)).is_empty());
        }
    }

    #[test]
    fn established_session_resets_retry_budget() {
        let mut p = peer(10);
        // Burn a few attempts.
        let mut now = SimTime(0);
        for _ in 0..40 {
            let _ = p.poll(now);
            now = SimTime(now.0 + 1_000);
        }
        assert!(!p.gave_up());
        // The router finally answers: session establishes, budget resets.
        p.push_msg(
            now,
            BgpMsg::Open(OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(1, 1, 1, 1))),
        );
        assert_eq!(p.state(), PeerState::Established);
        // A notification drops us back to Idle; we get a full budget again.
        p.push_msg(
            now,
            BgpMsg::Notification(mfv_wire::bgp::NotificationMsg {
                code: 6,
                subcode: 0,
                data: bytes::Bytes::new(),
            }),
        );
        let out = p.poll(SimTime(now.0 + 10_000));
        assert!(
            out.iter().any(|(_, m)| matches!(m, BgpMsg::Open(_))),
            "fresh budget after an established session"
        );
    }

    #[test]
    fn keepalives_flow_when_established_and_idle() {
        let mut p = peer(0);
        p.push_msg(
            SimTime(0),
            BgpMsg::Open(OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(1, 1, 1, 1))),
        );
        let out = p.poll(SimTime(25_000));
        assert!(out.iter().any(|(_, m)| matches!(m, BgpMsg::Keepalive)));
        assert!(p.done());
    }
}
