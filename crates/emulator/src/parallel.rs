//! Multi-seed parallel emulation.
//!
//! §6 of the paper proposes running "multiple [emulations] in parallel to
//! produce multiple resulting dataplanes" as the answer to non-determinism:
//! message-arrival order can legitimately change BGP tie-breaking, so one
//! run yields one sample of the converged-state distribution. This module
//! fans runs out across OS threads (one emulation per seed) and collects
//! the dataplanes for differential comparison.

use std::collections::BTreeMap;

use mfv_dataplane::Dataplane;

use crate::cluster::Cluster;
use crate::engine::{Emulation, EmulationConfig, RunReport};
use crate::topology::Topology;

/// Result of one seeded run.
#[derive(Clone, Debug)]
pub struct SeedRun {
    pub seed: u64,
    pub report: RunReport,
    pub dataplane: Dataplane,
}

/// Runs the same topology under each seed, in parallel (bounded by the host
/// parallelism), returning runs in seed order.
pub fn run_seeds(
    topology: &Topology,
    make_cluster: impl Fn() -> Cluster + Sync,
    base_cfg: &EmulationConfig,
    seeds: &[u64],
) -> Vec<SeedRun> {
    let mut results: Vec<Option<SeedRun>> = Vec::new();
    results.resize_with(seeds.len(), || None);

    crossbeam::thread::scope(|scope| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(seeds.len().max(1));
        let work = crossbeam::channel::unbounded::<(usize, u64)>();
        for (i, &seed) in seeds.iter().enumerate() {
            work.0.send((i, seed)).unwrap();
        }
        drop(work.0);
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, SeedRun)>();

        for _ in 0..threads {
            let rx = work.1.clone();
            let tx = res_tx.clone();
            let topology = topology.clone();
            let make_cluster = &make_cluster;
            let base_cfg = base_cfg.clone();
            scope.spawn(move |_| {
                while let Ok((i, seed)) = rx.recv() {
                    let mut cfg = base_cfg.clone();
                    cfg.seed = seed;
                    let mut emu = Emulation::new(topology.clone(), make_cluster(), cfg)
                        .expect("topology validated by caller");
                    let report = emu.run_until_converged();
                    let dataplane = emu.dataplane();
                    tx.send((i, SeedRun { seed, report, dataplane })).unwrap();
                }
            });
        }
        drop(res_tx);
        while let Ok((i, run)) = res_rx.recv() {
            results[i] = Some(run);
        }
    })
    .expect("no worker panics");

    results.into_iter().map(|r| r.expect("all seeds completed")).collect()
}

/// Groups runs by converged-dataplane digest: the observable distribution of
/// distinct outcomes under ordering non-determinism.
pub fn outcome_distribution(runs: &[SeedRun]) -> BTreeMap<u64, Vec<u64>> {
    let mut out: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for run in runs {
        out.entry(run.dataplane.digest()).or_default().push(run.seed);
    }
    out
}
