//! Multi-seed parallel emulation.
//!
//! §6 of the paper proposes running "multiple [emulations] in parallel to
//! produce multiple resulting dataplanes" as the answer to non-determinism:
//! message-arrival order can legitimately change BGP tie-breaking, so one
//! run yields one sample of the converged-state distribution. This module
//! fans runs out across OS threads (one emulation per seed) on the shared
//! [`crate::pool`] plumbing and collects the dataplanes for differential
//! comparison.

use std::collections::BTreeMap;

use mfv_dataplane::Dataplane;

use crate::cluster::Cluster;
use crate::engine::{Emulation, EmulationConfig, RunReport};
use crate::pool::run_indexed;
use crate::topology::Topology;

/// Result of one seeded run.
#[derive(Clone, Debug)]
pub struct SeedRun {
    pub seed: u64,
    pub report: RunReport,
    pub dataplane: Dataplane,
}

/// Why one seed of a multi-seed sweep failed. Confined to its seed; the
/// other runs still complete.
#[derive(Clone, Debug)]
pub struct SeedError {
    pub seed: u64,
    pub message: String,
}

impl std::fmt::Display for SeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {} failed: {}", self.seed, self.message)
    }
}

impl std::error::Error for SeedError {}

/// Runs the same topology under each seed, in parallel (bounded by the host
/// parallelism), returning per-seed outcomes in seed order. A panic or
/// setup error in one run is caught and reported as that seed's [`SeedError`]
/// instead of aborting the whole sweep.
pub fn run_seeds_detailed(
    topology: &Topology,
    make_cluster: impl Fn() -> Cluster + Sync,
    base_cfg: &EmulationConfig,
    seeds: &[u64],
) -> Vec<Result<SeedRun, SeedError>> {
    run_indexed(0, seeds.len(), |i| {
        let seed = seeds[i];
        let mut cfg = base_cfg.clone();
        cfg.seed = seed;
        let mut emu =
            Emulation::new(topology.clone(), make_cluster(), cfg).map_err(|e| e.to_string())?;
        let report = emu.run_until_converged();
        let dataplane = emu.dataplane();
        Ok::<SeedRun, String>(SeedRun {
            seed,
            report,
            dataplane,
        })
    })
    .into_iter()
    .enumerate()
    .map(|(i, outcome)| {
        let seed = seeds.get(i).copied().unwrap_or(u64::MAX);
        match outcome {
            Ok(Ok(run)) => Ok(run),
            Ok(Err(message)) => Err(SeedError { seed, message }),
            Err(message) => Err(SeedError { seed, message }),
        }
    })
    .collect()
}

/// [`run_seeds_detailed`] with the original infallible shape: panics if any
/// seed failed (callers that can tolerate partial results should use the
/// detailed variant).
pub fn run_seeds(
    topology: &Topology,
    make_cluster: impl Fn() -> Cluster + Sync,
    base_cfg: &EmulationConfig,
    seeds: &[u64],
) -> Vec<SeedRun> {
    run_seeds_detailed(topology, make_cluster, base_cfg, seeds)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Groups runs by converged-dataplane digest: the observable distribution of
/// distinct outcomes under ordering non-determinism.
pub fn outcome_distribution(runs: &[SeedRun]) -> BTreeMap<u64, Vec<u64>> {
    let mut out: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for run in runs {
        out.entry(run.dataplane.digest())
            .or_default()
            .push(run.seed);
    }
    out
}
