//! Simulated Kubernetes cluster: machines, pod resource requests, a
//! bin-packing scheduler, and a container boot-time model.
//!
//! This is the substrate for the paper's scalability results (§5): router
//! pods request real resources (0.5 vCPU + 1 GiB for the cEOS image), a
//! 32-vCPU machine therefore fits ~60 of them, and 1,000 devices need a
//! 17-node cluster. Startup is "12–17 minutes" of image pull + container
//! boot, modelled with seeded jitter.

use mfv_types::{NodeId, SimDuration, SimTime};
use rand::Rng;

/// One cluster machine (a Kubernetes node).
#[derive(Clone, Debug)]
pub struct MachineSpec {
    pub name: String,
    /// Allocatable CPU in millicores.
    pub cpu_millis: u32,
    /// Allocatable memory in MiB.
    pub mem_mib: u32,
}

impl MachineSpec {
    /// The machine used in the paper's single-node experiment:
    /// e2-standard-32 (32 vCPU, 128 GB).
    pub fn e2_standard_32(name: impl Into<String>) -> MachineSpec {
        MachineSpec {
            name: name.into(),
            cpu_millis: 32_000,
            mem_mib: 128 * 1024,
        }
    }
}

/// A pod resource request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PodRequest {
    pub pod: NodeId,
    pub cpu_millis: u32,
    pub mem_mib: u32,
}

/// Scheduling failure: no machine has room.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unschedulable {
    pub pod: NodeId,
    pub reason: String,
}

impl std::fmt::Display for Unschedulable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pod {} unschedulable: {}", self.pod, self.reason)
    }
}

impl std::error::Error for Unschedulable {}

#[derive(Clone, Debug)]
struct Machine {
    spec: MachineSpec,
    used_cpu: u32,
    used_mem: u32,
    /// Requests (not just names): a machine failure must return each
    /// evicted pod's resource shape so it can be resubmitted verbatim.
    pods: Vec<PodRequest>,
    /// Whether the router image has been pulled to this machine already.
    image_cached: bool,
    /// A failed machine keeps its entry (stable indices for reporting) but
    /// accepts no pods and holds none.
    failed: bool,
}

/// A pod placement decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    pub pod: NodeId,
    pub machine: String,
    /// When the container becomes Ready.
    pub ready_at: SimTime,
}

/// The simulated cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    machines: Vec<Machine>,
    /// First-pull image cost per machine.
    pub image_pull: SimDuration,
}

impl Cluster {
    pub fn new(machines: Vec<MachineSpec>) -> Cluster {
        Cluster {
            machines: machines
                .into_iter()
                .map(|spec| Machine {
                    spec,
                    used_cpu: 0,
                    used_mem: 0,
                    pods: Vec::new(),
                    image_cached: false,
                    failed: false,
                })
                .collect(),
            image_pull: SimDuration::from_secs(300),
        }
    }

    /// A single-machine cluster (the paper's first scalability test).
    pub fn single_node() -> Cluster {
        Cluster::new(vec![MachineSpec::e2_standard_32("node-0")])
    }

    /// An n-machine cluster of e2-standard-32s.
    pub fn of_size(n: usize) -> Cluster {
        Cluster::new(
            (0..n)
                .map(|i| MachineSpec::e2_standard_32(format!("node-{i}")))
                .collect(),
        )
    }

    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Remaining capacity in (cpu_millis, mem_mib) across live machines.
    pub fn free_capacity(&self) -> (u64, u64) {
        self.machines
            .iter()
            .filter(|m| !m.failed)
            .fold((0, 0), |(c, m), machine| {
                (
                    c + (machine.spec.cpu_millis - machine.used_cpu) as u64,
                    m + (machine.spec.mem_mib - machine.used_mem) as u64,
                )
            })
    }

    /// How many pods of the given request shape still fit.
    pub fn capacity_for(&self, cpu_millis: u32, mem_mib: u32) -> usize {
        self.machines
            .iter()
            .filter(|m| !m.failed)
            .map(|m| {
                let by_cpu = (m.spec.cpu_millis - m.used_cpu) / cpu_millis.max(1);
                let by_mem = (m.spec.mem_mib - m.used_mem) / mem_mib.max(1);
                by_cpu.min(by_mem) as usize
            })
            .sum()
    }

    /// Schedules one pod (best-fit by remaining CPU, like kube-scheduler's
    /// LeastAllocated inverted for packing density in batch bring-up), and
    /// returns its placement with a modelled ready time.
    ///
    /// `boot_time` is the vendor image's container start cost; jitter is
    /// drawn from `rng` so identical topologies boot in deterministic but
    /// non-uniform order per seed.
    pub fn schedule(
        &mut self,
        req: &PodRequest,
        submitted: SimTime,
        boot_time: SimDuration,
        rng: &mut impl Rng,
    ) -> Result<Placement, Unschedulable> {
        let candidate = self
            .machines
            .iter_mut()
            .filter(|m| {
                !m.failed
                    && m.spec.cpu_millis - m.used_cpu >= req.cpu_millis
                    && m.spec.mem_mib - m.used_mem >= req.mem_mib
            })
            // Best fit: the machine with the least leftover CPU. Ties are
            // broken by machine name so the placement is a function of the
            // cluster state alone, not of the machine list's build order.
            .min_by_key(|m| {
                (
                    m.spec.cpu_millis - m.used_cpu - req.cpu_millis,
                    m.spec.name.clone(),
                )
            });
        let Some(machine) = candidate else {
            return Err(Unschedulable {
                pod: req.pod.clone(),
                reason: format!(
                    "insufficient cluster capacity for {}m CPU / {} MiB",
                    req.cpu_millis, req.mem_mib
                ),
            });
        };
        machine.used_cpu += req.cpu_millis;
        machine.used_mem += req.mem_mib;
        machine.pods.push(req.clone());

        let pull = if machine.image_cached {
            SimDuration::ZERO
        } else {
            machine.image_cached = true;
            self.image_pull
        };
        // Control-plane boot slows under co-boot load: each already-placed
        // pod on the machine inflates boot time by 12.5%. This reproduces
        // the paper's startup profile ("single to tens of minutes, depending
        // on the network size"; 12–17 minutes for the 30-node replica).
        let co_resident = machine.pods.len() as u64 - 1;
        let inflated = boot_time.as_millis() + boot_time.as_millis() * co_resident / 8;
        // Boot jitter: ±20% of the (inflated) boot time.
        let jitter_range = (inflated / 5).max(1);
        let jitter = rng.gen_range(0..jitter_range * 2);
        let ready_at =
            submitted + pull + SimDuration::from_millis(inflated - jitter_range + jitter);
        Ok(Placement {
            pod: req.pod.clone(),
            machine: machine.spec.name.clone(),
            ready_at,
        })
    }

    /// Releases a pod's resources (pod deletion).
    pub fn release(&mut self, pod: &NodeId, cpu_millis: u32, mem_mib: u32) {
        for m in &mut self.machines {
            if let Some(pos) = m.pods.iter().position(|p| &p.pod == pod) {
                m.pods.remove(pos);
                m.used_cpu = m.used_cpu.saturating_sub(cpu_millis);
                m.used_mem = m.used_mem.saturating_sub(mem_mib);
                return;
            }
        }
    }

    /// Fails a machine (node outage): it stops accepting pods and every pod
    /// it held is evicted. The evicted pods' requests are returned in
    /// placement order so the caller can resubmit them to the scheduler —
    /// the k8s eviction/reschedule loop, compressed into one call.
    /// Unknown or already-failed machines evict nothing.
    pub fn fail_machine(&mut self, name: &str) -> Vec<PodRequest> {
        for m in &mut self.machines {
            if m.spec.name == name && !m.failed {
                m.failed = true;
                m.used_cpu = 0;
                m.used_mem = 0;
                return std::mem::take(&mut m.pods);
            }
        }
        Vec::new()
    }

    /// Names of machines that have failed.
    pub fn failed_machines(&self) -> Vec<String> {
        self.machines
            .iter()
            .filter(|m| m.failed)
            .map(|m| m.spec.name.clone())
            .collect()
    }

    /// Pods per machine, for reporting.
    pub fn packing(&self) -> Vec<(String, usize)> {
        self.machines
            .iter()
            .map(|m| (m.spec.name.clone(), m.pods.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn ceos_request(i: usize) -> PodRequest {
        PodRequest {
            pod: format!("r{i}").into(),
            cpu_millis: 500,
            mem_mib: 1024,
        }
    }

    #[test]
    fn single_machine_fits_paper_count() {
        // 32 vCPU / 0.5 vCPU = 64 by CPU; 128 GiB / 1 GiB = 128 by memory.
        // CPU binds: 64 pods; the paper reports "up to 60 routers" (their
        // machine also runs system pods — we model the headroom explicitly).
        let cluster = Cluster::single_node();
        assert_eq!(cluster.capacity_for(500, 1024), 64);
    }

    #[test]
    fn scheduler_packs_until_full_then_fails() {
        let mut cluster = Cluster::single_node();
        let mut r = rng();
        for i in 0..64 {
            cluster
                .schedule(
                    &ceos_request(i),
                    SimTime::ZERO,
                    SimDuration::from_secs(110),
                    &mut r,
                )
                .unwrap_or_else(|e| panic!("pod {i}: {e}"));
        }
        let err = cluster
            .schedule(
                &ceos_request(64),
                SimTime::ZERO,
                SimDuration::from_secs(110),
                &mut r,
            )
            .unwrap_err();
        assert!(err.reason.contains("insufficient"));
    }

    #[test]
    fn seventeen_machines_fit_a_thousand_pods() {
        // The paper: 1,000 devices converge on a 17-node cluster.
        let cluster = Cluster::of_size(17);
        assert!(cluster.capacity_for(500, 1024) >= 1000);
        // And 15 machines would not fit 1,000.
        assert!(Cluster::of_size(15).capacity_for(500, 1024) < 1000);
    }

    #[test]
    fn first_pod_pays_image_pull() {
        let mut cluster = Cluster::single_node();
        let mut r = rng();
        let boot = SimDuration::from_secs(100);
        let p1 = cluster
            .schedule(&ceos_request(0), SimTime::ZERO, boot, &mut r)
            .unwrap();
        let p2 = cluster
            .schedule(&ceos_request(1), SimTime::ZERO, boot, &mut r)
            .unwrap();
        // First pod: pull (300 s) + boot(±20%); second pod: boot only
        // (inflated 20% by the co-resident first pod).
        assert!(p1.ready_at.as_millis() >= 300_000 + 80_000);
        assert!(p2.ready_at.as_millis() <= 170_000);
    }

    #[test]
    fn release_frees_capacity() {
        let mut cluster = Cluster::new(vec![MachineSpec {
            name: "tiny".into(),
            cpu_millis: 500,
            mem_mib: 1024,
        }]);
        let mut r = rng();
        cluster
            .schedule(
                &ceos_request(0),
                SimTime::ZERO,
                SimDuration::from_secs(1),
                &mut r,
            )
            .unwrap();
        assert_eq!(cluster.capacity_for(500, 1024), 0);
        cluster.release(&"r0".into(), 500, 1024);
        assert_eq!(cluster.capacity_for(500, 1024), 1);
    }

    #[test]
    fn boot_jitter_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut cluster = Cluster::single_node();
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            (0..5)
                .map(|i| {
                    cluster
                        .schedule(
                            &ceos_request(i),
                            SimTime::ZERO,
                            SimDuration::from_secs(110),
                            &mut r,
                        )
                        .unwrap()
                        .ready_at
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn machine_failure_evicts_pods_and_excludes_machine() {
        let mut cluster = Cluster::of_size(2);
        let mut r = rng();
        for i in 0..3 {
            cluster
                .schedule(
                    &ceos_request(i),
                    SimTime::ZERO,
                    SimDuration::from_secs(1),
                    &mut r,
                )
                .unwrap();
        }
        // Best-fit packs all three onto one machine; find it.
        let (loaded, _) = cluster
            .packing()
            .into_iter()
            .find(|(_, n)| *n == 3)
            .expect("one machine holds all pods");
        let evicted = cluster.fail_machine(&loaded);
        assert_eq!(evicted.len(), 3);
        assert_eq!(evicted[0], ceos_request(0));
        assert_eq!(cluster.failed_machines(), vec![loaded.clone()]);
        // Evicted pods resubmit onto the survivor only.
        for req in &evicted {
            let p = cluster
                .schedule(req, SimTime::ZERO, SimDuration::from_secs(1), &mut r)
                .unwrap();
            assert_ne!(p.machine, loaded);
        }
        // Failing again evicts nothing.
        assert!(cluster.fail_machine(&loaded).is_empty());
        // A failed machine contributes no capacity.
        assert_eq!(Cluster::of_size(1).capacity_for(500, 1024), {
            let mut c = Cluster::of_size(2);
            c.fail_machine("node-1");
            c.capacity_for(500, 1024)
        });
    }

    #[test]
    fn packing_reports_distribution() {
        let mut cluster = Cluster::of_size(2);
        let mut r = rng();
        for i in 0..10 {
            cluster
                .schedule(
                    &ceos_request(i),
                    SimTime::ZERO,
                    SimDuration::from_secs(1),
                    &mut r,
                )
                .unwrap();
        }
        let packing = cluster.packing();
        let total: usize = packing.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 10);
    }
}
