//! Per-shard engine state for the sharded conservative-lookahead runtime.
//!
//! A [`Shard`] owns everything one worker thread touches during a time
//! window: its slice of the virtual routers and external peers, its own
//! event heap and demand-driven wake sets, per-flow FIFO clocks, and
//! per-entity RNG streams. Everything shared and read-only during a window
//! lives in [`Net`].
//!
//! # Determinism contract
//!
//! Same `(topology, seed, plan, shard layout)` must produce byte-identical
//! results at **any thread count**. Three design rules enforce it:
//!
//! 1. **Content-based event keys.** Events order by
//!    `(time, origin, origin_seq)` where `origin` identifies the entity
//!    that scheduled the event (0 = the coordinator, then nodes in interned
//!    name order, then external peers) and `origin_seq` is that entity's
//!    monotone counter. Keys are unique and assigned by simulation content,
//!    never by execution order, so a heap merge of cross-shard arrivals is
//!    a deterministic merge-sort no matter which thread delivered them.
//! 2. **Per-entity RNG streams.** Jitter and impairment draws come from a
//!    `ChaCha8Rng` derived from `(seed, entity)` — not from a shared
//!    engine RNG whose draw order would depend on scheduling.
//! 3. **No shared mutable state inside a window.** A shard reads [`Net`]
//!    and writes only itself; cross-shard messages go to a per-shard
//!    outbox that the coordinator drains at the window barrier.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::net::Ipv4Addr;

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mfv_obs::{Hist, Journal};
use mfv_types::{IfaceRef, Interner, NodeRef, Prefix, SimDuration, SimTime};
use mfv_vrouter::{RouterEvent, VendorProfile, VirtualRouter};

use crate::chaos::ImpairSpec;

/// Most prefixes tracked per shard by the churn watchdog; arrivals past the
/// cap are ignored (deterministically) to bound memory at production-feed
/// scale. The post-mortem merge applies the same cap globally, in prefix
/// order, so the merged view is independent of shard layout and count.
pub(crate) const CHURN_PREFIX_CAP: usize = 4096;
/// Change records retained per prefix (per shard, and again after merge).
pub(crate) const CHURN_HISTORY: usize = 8;
use crate::inject::ExternalPeer;

/// Event origin rank. The coordinator's rank sorts before every entity, so
/// boot/chaos events at an instant run before same-instant deliveries —
/// matching the old single-heap engine where they were scheduled first.
pub(crate) const GLOBAL_ORIGIN: u32 = 0;

/// Deterministic content-based event key: `(time, origin, origin_seq)`.
/// Unique per event (each origin increments its own counter), which makes
/// every heap order — including merged cross-shard arrivals — total.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct EvKey {
    pub time: SimTime,
    pub origin: u32,
    pub oseq: u64,
}

#[derive(Debug)]
pub(crate) enum EventKind {
    PodReady(NodeRef),
    DeliverIsis {
        node: NodeRef,
        iface: IfaceRef,
        payload: Bytes,
    },
    DeliverBgp {
        node: NodeRef,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Bytes,
    },
    DeliverToExternal {
        idx: usize,
        payload: Bytes,
    },
    RestartRouter(NodeRef),
    /// Pre-resolved link slot; replicated to both endpoint shards. The
    /// coordinator keeps the canonical link timeline for `dataplane()`.
    ChaosLink {
        slot: usize,
        up: bool,
    },
    ChaosKillRouter(NodeRef),
}

pub(crate) struct Ev {
    pub key: EvKey,
    pub kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Who owns a BGP endpoint address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Owner {
    Node(NodeRef),
    External(usize),
}

/// One directed end of a link: everything delivery needs, resolved once.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EndInfo {
    pub peer: NodeRef,
    pub peer_iface: IfaceRef,
    pub latency_ms: u64,
    pub link_slot: usize,
}

/// One chaos message-impairment window.
pub(crate) struct ImpairWindow {
    pub from: SimTime,
    pub until: SimTime,
    pub spec: ImpairSpec,
}

/// Plain-field execution counters, one per event kind plus the impairment
/// and poll tallies — bumped on the hot path, summed across shards at
/// `export_obs`.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct EventTally {
    pub pod_ready: u64,
    pub deliver_isis: u64,
    pub deliver_bgp: u64,
    pub deliver_external: u64,
    pub restart_router: u64,
    pub chaos_link: u64,
    pub chaos_kill: u64,
    pub chaos_fail_machine: u64,
    pub router_polls: u64,
    pub ext_polls: u64,
    pub impair_dropped: u64,
    pub impair_duplicated: u64,
    pub encode_errors: u64,
}

impl EventTally {
    pub fn absorb(&mut self, o: &EventTally) {
        self.pod_ready += o.pod_ready;
        self.deliver_isis += o.deliver_isis;
        self.deliver_bgp += o.deliver_bgp;
        self.deliver_external += o.deliver_external;
        self.restart_router += o.restart_router;
        self.chaos_link += o.chaos_link;
        self.chaos_kill += o.chaos_kill;
        self.chaos_fail_machine += o.chaos_fail_machine;
        self.router_polls += o.router_polls;
        self.ext_polls += o.ext_polls;
        self.impair_dropped += o.impair_dropped;
        self.impair_duplicated += o.impair_duplicated;
        self.encode_errors += o.encode_errors;
    }
}

/// Immutable-during-a-window shared state: the interned id space, parsed
/// configs, link tables, address ownership, impairment windows, and the
/// node→shard map. Mutated only by the coordinator between runs (config
/// push, late chaos scheduling).
pub(crate) struct Net {
    pub interner: Interner,
    /// Per-node vendor profile (overrides pre-applied), by `NodeRef` index.
    pub profiles: Vec<VendorProfile>,
    /// Per-node configs parsed once at `Emulation::new`.
    pub parsed_configs: Vec<mfv_config::Parsed>,
    /// Directed link ends, pre-resolved. Latencies are clamped to ≥ 1 ms —
    /// the conservative lookahead bound requires a strictly positive
    /// cross-shard delay.
    pub ends: BTreeMap<(NodeRef, IfaceRef), EndInfo>,
    /// Link endpoints by slot (for link up/down router notification).
    pub link_ends: Vec<((NodeRef, IfaceRef), (NodeRef, IfaceRef))>,
    /// addr → owning entity, for BGP segment delivery. Built statically
    /// from parsed configs (interface addresses are config-derived), so
    /// delivery routing never depends on boot order.
    pub ip_owner: BTreeMap<Ipv4Addr, Owner>,
    /// Node → shard id (filled at boot when the partition is cut).
    pub node_shard: Vec<usize>,
    /// External peer → shard id (the attach node's shard).
    pub ext_shard: Vec<usize>,
    pub seed: u64,
    pub auto_restart: bool,
    /// Active message-impairment windows with per-link / per-pair indexes.
    pub impairments: Vec<ImpairWindow>,
    pub link_impair: Vec<Vec<usize>>,
    pub pair_impair: BTreeMap<(NodeRef, NodeRef), Vec<usize>>,
}

impl Net {
    pub fn node_origin(&self, n: NodeRef) -> u32 {
        1 + n.index() as u32
    }

    pub fn ext_origin(&self, idx: usize) -> u32 {
        1 + self.interner.node_count() as u32 + idx as u32
    }
}

/// SplitMix64-style stream derivation: one independent seed per
/// `(run seed, entity tag)` pair.
pub(crate) fn stream_seed(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn node_stream(seed: u64, n: NodeRef) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(stream_seed(seed, 0x1000_0000 + n.index() as u64))
}

fn ext_stream(seed: u64, idx: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(stream_seed(seed, 0x2000_0000 + idx as u64))
}

/// One partition of the topology: a private event heap, wake sets, the
/// routers and external peers placed here, link-state replicas, per-flow
/// FIFO clocks, and per-entity RNG/sequence streams. Entity-indexed
/// vectors are full-size (indexed by global `NodeRef`/peer index) with
/// `None`/zero holes for non-members — O(nodes) pointers per shard.
pub(crate) struct Shard {
    pub id: usize,
    now: SimTime,
    events: BinaryHeap<Reverse<Ev>>,
    wake: BTreeSet<(SimTime, NodeRef)>,
    next_poll: Vec<Option<SimTime>>,
    ext_wake: BTreeSet<(SimTime, usize)>,
    ext_next: Vec<Option<SimTime>>,
    pub routers: Vec<Option<VirtualRouter>>,
    pub ready_at: Vec<Option<SimTime>>,
    pub ready_count: usize,
    pub externals: Vec<Option<ExternalPeer>>,
    /// When each local external feed finished draining (exact transition
    /// instants; the coordinator folds these into `feeds_done_at`).
    ext_done: Vec<Option<SimTime>>,
    /// Done-transitions observed since the last barrier.
    ext_done_new: Vec<(usize, SimTime)>,
    pub feeds_active: bool,
    /// Local replica of link up/down state (full link set; only links with
    /// a local endpoint ever matter here).
    link_up: Vec<bool>,
    node_rng: Vec<Option<ChaCha8Rng>>,
    ext_rng: Vec<Option<ChaCha8Rng>>,
    node_oseq: Vec<u64>,
    ext_oseq: Vec<u64>,
    /// FIFO clocks: jitter may delay but never reorder messages between the
    /// same endpoints. Flows are keyed by sender, so each flow's clock
    /// lives in exactly one shard.
    bgp_flow_clock: BTreeMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    isis_link_clock: BTreeMap<(NodeRef, IfaceRef), SimTime>,
    /// Cross-shard sends since the last barrier: `(dest shard, event)`.
    pub outbox: Vec<(usize, Ev)>,
    /// Raw dataplane-change records since the last fold, tagged with the
    /// node that changed. Folded into the local `churn` tracker at each
    /// window end once the coordinator has announced the steady instant;
    /// discarded by the coordinator before that (pre-convergence noise).
    pub churn_buf: Vec<(SimTime, NodeRef, BTreeSet<Prefix>)>,
    /// Steady-state gate: records before this instant never count toward
    /// oscillation. Set exactly once, at the barrier where boot and feed
    /// completion become known.
    pub churn_from: Option<SimTime>,
    /// Shard-local bounded churn tracker: per-prefix `(instant, node)`
    /// change records, capped in both axes. Shards fold their own records
    /// in parallel inside their windows — the coordinator never touches a
    /// shared churn map per window; the per-shard maps are merged exactly
    /// once, order-independently, by the oscillation post-mortem.
    pub churn: BTreeMap<Prefix, VecDeque<(SimTime, u32)>>,
    pub tally: EventTally,
    pub journal: Journal,
    pub wake_depth: Hist,
    pub last_activity: SimTime,
    pub pending_restarts: usize,
    pub messages_delivered: u64,
    pub crashes: u64,
    pub events_processed: u64,
    pub events_scheduled: u64,
    /// Chaos replicas (link notifications, kills) this shard has handled —
    /// compared against the coordinator's injected count so convergence is
    /// never declared while a fault is still in flight.
    pub chaos_processed: u64,
}

impl Shard {
    /// `link_up` is a copy of the coordinator's canonical link state at
    /// build time (operator `set_link` calls may precede boot).
    pub fn new(id: usize, net: &Net, link_up: Vec<bool>) -> Shard {
        let n = net.interner.node_count();
        let e = net.ext_shard.len();
        let mut node_rng: Vec<Option<ChaCha8Rng>> = (0..n).map(|_| None).collect();
        for r in net.interner.node_refs() {
            if net.node_shard.get(r.index()) == Some(&id) {
                node_rng[r.index()] = Some(node_stream(net.seed, r));
            }
        }
        let mut ext_rng: Vec<Option<ChaCha8Rng>> = (0..e).map(|_| None).collect();
        for (idx, rng) in ext_rng.iter_mut().enumerate() {
            if net.ext_shard.get(idx) == Some(&id) {
                *rng = Some(ext_stream(net.seed, idx));
            }
        }
        Shard {
            id,
            now: SimTime::ZERO,
            events: BinaryHeap::new(),
            wake: BTreeSet::new(),
            next_poll: vec![None; n],
            ext_wake: BTreeSet::new(),
            ext_next: vec![None; e],
            routers: (0..n).map(|_| None).collect(),
            ready_at: vec![None; n],
            ready_count: 0,
            externals: (0..e).map(|_| None).collect(),
            ext_done: vec![None; e],
            ext_done_new: Vec::new(),
            feeds_active: false,
            link_up,
            node_rng,
            ext_rng,
            node_oseq: vec![0; n],
            ext_oseq: vec![0; e],
            bgp_flow_clock: BTreeMap::new(),
            isis_link_clock: BTreeMap::new(),
            outbox: Vec::new(),
            churn_buf: Vec::new(),
            churn_from: None,
            churn: BTreeMap::new(),
            tally: EventTally::default(),
            journal: Journal::new(),
            wake_depth: Hist::new(),
            last_activity: SimTime::ZERO,
            pending_restarts: 0,
            messages_delivered: 0,
            crashes: 0,
            events_processed: 0,
            events_scheduled: 0,
            chaos_processed: 0,
        }
    }

    /// The shard's local clock (last processed instant or barrier edge).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Earliest pending work across the heap and both wake sets.
    pub fn next_due(&self) -> Option<SimTime> {
        let heap_t = self.events.peek().map(|Reverse(ev)| ev.key.time);
        let wake_t = self.wake.iter().next().map(|&(t, _)| t);
        let ext_t = self.ext_wake.iter().next().map(|&(t, _)| t);
        [heap_t, wake_t, ext_t].into_iter().flatten().min()
    }

    /// Coordinator-side insertion (cross-shard arrivals, boot events,
    /// chaos). The scheduling counter is *not* bumped here — the sender
    /// already counted the event when it created it.
    pub fn inject(&mut self, ev: Ev) {
        self.events.push(Reverse(ev));
    }

    /// Schedules an event created by a local entity and counts it. Local
    /// destinations go straight onto the heap; remote ones ride the outbox
    /// until the coordinator drains it at the barrier.
    fn send(&mut self, dest_shard: usize, ev: Ev) {
        self.events_scheduled += 1;
        if dest_shard == self.id {
            self.events.push(Reverse(ev));
        } else {
            self.outbox.push((dest_shard, ev));
        }
    }

    fn next_node_key(&mut self, net: &Net, node: NodeRef, time: SimTime) -> EvKey {
        let oseq = &mut self.node_oseq[node.index()];
        *oseq += 1;
        EvKey {
            time,
            origin: net.node_origin(node),
            oseq: *oseq,
        }
    }

    fn next_ext_key(&mut self, net: &Net, idx: usize, time: SimTime) -> EvKey {
        let oseq = &mut self.ext_oseq[idx];
        *oseq += 1;
        EvKey {
            time,
            origin: net.ext_origin(idx),
            oseq: *oseq,
        }
    }

    /// Requests a router wake at `at` (or keeps an earlier pending one).
    pub fn schedule_poll(&mut self, node: NodeRef, at: SimTime) {
        let at = at.max(self.now);
        match self.next_poll.get(node.index()).copied().flatten() {
            Some(t) if t <= at => return,
            Some(t) => {
                self.wake.remove(&(t, node));
            }
            None => {}
        }
        if let Some(slot) = self.next_poll.get_mut(node.index()) {
            *slot = Some(at);
            self.wake.insert((at, node));
        }
    }

    /// Drops any pending wake for `node` (eviction).
    pub fn clear_poll(&mut self, node: NodeRef) {
        if let Some(t) = self.next_poll.get_mut(node.index()).and_then(|s| s.take()) {
            self.wake.remove(&(t, node));
        }
    }

    /// Like `schedule_poll`, for external peers.
    pub fn schedule_ext_poll(&mut self, idx: usize, at: SimTime) {
        let at = at.max(self.now);
        match self.ext_next.get(idx).copied().flatten() {
            Some(t) if t <= at => return,
            Some(t) => {
                self.ext_wake.remove(&(t, idx));
            }
            None => {}
        }
        if let Some(slot) = self.ext_next.get_mut(idx) {
            *slot = Some(at);
            self.ext_wake.insert((at, idx));
        }
    }

    /// Installs an external peer at boot. Feeds that are born drained
    /// (zero-route peers) count as done immediately, mirroring the old
    /// engine's `injection_done()` semantics.
    pub fn install_external(&mut self, idx: usize, peer: ExternalPeer) {
        let done = peer.done();
        self.externals[idx] = Some(peer);
        if done {
            self.ext_done[idx] = Some(SimTime::ZERO);
            self.ext_done_new.push((idx, SimTime::ZERO));
        }
    }

    /// Activates local feeds and schedules their first poll.
    pub fn activate_feeds(&mut self, at: SimTime) {
        self.feeds_active = true;
        for idx in 0..self.externals.len() {
            if self.externals[idx].is_some() {
                self.schedule_ext_poll(idx, at);
            }
        }
    }

    pub fn take_ext_done_transitions(&mut self) -> Vec<(usize, SimTime)> {
        std::mem::take(&mut self.ext_done_new)
    }

    /// Applies a link state change locally: updates the replica and pokes
    /// any local endpoint routers. Journal/tally for chaos flaps live with
    /// the coordinator's canonical timeline (one entry per event, not one
    /// per replica).
    pub fn apply_link(&mut self, net: &Net, slot: usize, up: bool) {
        if let Some(s) = self.link_up.get_mut(slot) {
            *s = up;
        }
        let Some(&(a, b)) = net.link_ends.get(slot) else {
            return;
        };
        let now = self.now;
        for (node, iface) in [a, b] {
            let Some(iface_name) = net.interner.iface(iface) else {
                continue;
            };
            if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                router.set_link(iface_name, up);
                self.schedule_poll(node, SimTime(now.0 + 1));
            }
        }
        self.last_activity = self.last_activity.max(now);
    }

    fn link_is_up(&self, net: &Net, node: NodeRef, iface: IfaceRef) -> bool {
        net.ends
            .get(&(node, iface))
            .and_then(|e| self.link_up.get(e.link_slot))
            .copied()
            .unwrap_or(false)
    }

    /// The active impairment window covering link `slot` right now, if any.
    fn impairment_for(&self, net: &Net, slot: usize) -> Option<ImpairSpec> {
        let now = self.now;
        net.link_impair
            .get(slot)?
            .iter()
            .filter_map(|&i| net.impairments.get(i))
            .find(|w| now >= w.from && now < w.until)
            .map(|w| w.spec)
    }

    /// Impairment for BGP traffic between two directly-linked nodes.
    fn bgp_impairment_for(&self, net: &Net, a: NodeRef, b: NodeRef) -> Option<ImpairSpec> {
        let now = self.now;
        let key = if a <= b { (a, b) } else { (b, a) };
        net.pair_impair
            .get(&key)?
            .iter()
            .filter_map(|&i| net.impairments.get(i))
            .find(|w| now >= w.from && now < w.until)
            .map(|w| w.spec)
    }

    /// Applies an impairment's drop/duplicate draws from the *sender's*
    /// RNG stream; returns how many copies to deliver (0 = dropped).
    fn impaired_copies(&mut self, node: NodeRef, spec: Option<ImpairSpec>) -> u32 {
        let Some(spec) = spec else { return 1 };
        let Some(rng) = self.node_rng.get_mut(node.index()).and_then(|r| r.as_mut()) else {
            return 1;
        };
        if spec.drop_pct > 0 && rng.gen_range(0..100u32) < spec.drop_pct as u32 {
            self.tally.impair_dropped += 1;
            return 0;
        }
        if spec.duplicate_pct > 0 && rng.gen_range(0..100u32) < spec.duplicate_pct as u32 {
            self.tally.impair_duplicated += 1;
            return 2;
        }
        1
    }

    fn node_jitter(&mut self, node: NodeRef) -> u64 {
        self.node_rng
            .get_mut(node.index())
            .and_then(|r| r.as_mut())
            .map(|rng| rng.gen_range(0..3))
            .unwrap_or(0)
    }

    /// Handles one router's output events.
    fn dispatch_router_events(&mut self, net: &Net, node: NodeRef, events: Vec<RouterEvent>) {
        for ev in events {
            match ev {
                RouterEvent::IsisFrame { iface, payload } => {
                    let Some(iface_ref) = net.interner.resolve_iface(&iface) else {
                        continue;
                    };
                    let key = (node, iface_ref);
                    let Some(end) = net.ends.get(&key).copied() else {
                        continue;
                    };
                    if !self.link_up.get(end.link_slot).copied().unwrap_or(false) {
                        continue;
                    }
                    let impair = self.impairment_for(net, end.link_slot);
                    let copies = self.impaired_copies(node, impair);
                    let extra = impair.map(|s| s.extra_delay_ms).unwrap_or(0);
                    for _ in 0..copies {
                        let jitter = self.node_jitter(node);
                        let mut at =
                            self.now + SimDuration::from_millis(end.latency_ms + jitter + extra);
                        let clock = self.isis_link_clock.entry(key).or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        let ev_key = self.next_node_key(net, node, at);
                        let dest = net.node_shard[end.peer.index()];
                        self.send(
                            dest,
                            Ev {
                                key: ev_key,
                                kind: EventKind::DeliverIsis {
                                    node: end.peer,
                                    iface: end.peer_iface,
                                    payload: payload.clone(),
                                },
                            },
                        );
                    }
                }
                RouterEvent::BgpSegment { src, dst, payload } => {
                    let Some(&owner) = net.ip_owner.get(&dst) else {
                        continue; // addressed to nobody we know
                    };
                    let impair = match owner {
                        Owner::Node(peer) => self.bgp_impairment_for(net, node, peer),
                        Owner::External(_) => None,
                    };
                    let copies = self.impaired_copies(node, impair);
                    let extra = impair.map(|s| s.extra_delay_ms).unwrap_or(0);
                    for _ in 0..copies {
                        let jitter = self.node_jitter(node);
                        let mut at = self.now + SimDuration::from_millis(2 + jitter + extra);
                        let clock = self
                            .bgp_flow_clock
                            .entry((src, dst))
                            .or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        let ev_key = self.next_node_key(net, node, at);
                        match owner {
                            Owner::Node(peer) => {
                                let dest = net.node_shard[peer.index()];
                                self.send(
                                    dest,
                                    Ev {
                                        key: ev_key,
                                        kind: EventKind::DeliverBgp {
                                            node: peer,
                                            src,
                                            dst,
                                            payload: payload.clone(),
                                        },
                                    },
                                );
                            }
                            Owner::External(idx) => {
                                let dest = net.ext_shard[idx];
                                self.send(
                                    dest,
                                    Ev {
                                        key: ev_key,
                                        kind: EventKind::DeliverToExternal {
                                            idx,
                                            payload: payload.clone(),
                                        },
                                    },
                                );
                            }
                        }
                    }
                }
                RouterEvent::Crashed { reason } => {
                    self.crashes += 1;
                    self.last_activity = self.last_activity.max(self.now);
                    let detail = match net.interner.node(node) {
                        Some(name) => format!("{name}: {reason}"),
                        None => reason,
                    };
                    self.journal.push(self.now, "engine.crash", detail);
                    if net.auto_restart {
                        let delay = self
                            .routers
                            .get(node.index())
                            .and_then(|s| s.as_ref())
                            .map(|r| r.profile().restart_delay)
                            .unwrap_or(SimDuration::from_secs(60));
                        self.pending_restarts += 1;
                        let at = self.now + delay;
                        let key = self.next_node_key(net, node, at);
                        self.send(
                            self.id,
                            Ev {
                                key,
                                kind: EventKind::RestartRouter(node),
                            },
                        );
                    }
                }
            }
        }
    }

    fn poll_router(&mut self, net: &Net, node: NodeRef) {
        let now = self.now;
        self.tally.router_polls += 1;
        let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) else {
            return;
        };
        let v_before = router.fib_version();
        let events = router.poll(now);
        let v_after = router.fib_version();
        let wakeup = router.next_wakeup(now);
        let changed = router.take_changed_prefixes();
        if v_after != v_before {
            self.last_activity = self.last_activity.max(now);
        }
        self.dispatch_router_events(net, node, events);
        if let Some(at) = wakeup {
            self.schedule_poll(node, at);
        }
        if !changed.is_empty() {
            self.churn_buf.push((now, node, changed));
        }
    }

    fn poll_external(&mut self, net: &Net, idx: usize) {
        if !self.feeds_active {
            return;
        }
        let now = self.now;
        self.tally.ext_polls += 1;
        let Some(peer) = self.externals.get_mut(idx).and_then(|s| s.as_mut()) else {
            return;
        };
        let was_done = peer.done();
        let msgs = peer.poll(now);
        let wakeup = peer.next_wakeup(now);
        let src = peer.addr;
        let now_done = peer.done();
        if !was_done && now_done {
            self.ext_done[idx] = Some(now);
            self.ext_done_new.push((idx, now));
        }
        for (dst, msg) in msgs {
            // A message that exceeds a wire length field is dropped (and
            // counted) instead of truncated into a corrupt frame.
            let payload = match msg.encode() {
                Ok(p) => p,
                Err(_) => {
                    self.tally.encode_errors += 1;
                    continue;
                }
            };
            if let Some(&Owner::Node(node)) = net.ip_owner.get(&dst) {
                let jitter = self
                    .ext_rng
                    .get_mut(idx)
                    .and_then(|r| r.as_mut())
                    .map(|rng| rng.gen_range(0..3))
                    .unwrap_or(0);
                let mut at = now + SimDuration::from_millis(2 + jitter);
                let clock = self
                    .bgp_flow_clock
                    .entry((src, dst))
                    .or_insert(SimTime::ZERO);
                at = at.max(SimTime(clock.0 + 1));
                *clock = at;
                let key = self.next_ext_key(net, idx, at);
                let dest = net.node_shard[node.index()];
                self.send(
                    dest,
                    Ev {
                        key,
                        kind: EventKind::DeliverBgp {
                            node,
                            src,
                            dst,
                            payload,
                        },
                    },
                );
            }
        }
        self.schedule_ext_poll(idx, wakeup);
    }

    fn handle(&mut self, net: &Net, kind: EventKind) {
        match kind {
            EventKind::PodReady(node) => {
                self.tally.pod_ready += 1;
                let Some(name) = net.interner.node(node).cloned() else {
                    return;
                };
                let Some(parsed) = net.parsed_configs.get(node.index()).cloned() else {
                    return;
                };
                let Some(profile) = net.profiles.get(node.index()).cloned() else {
                    return;
                };
                self.journal
                    .push(self.now, "engine.pod_ready", name.to_string());
                let router = VirtualRouter::new(name, profile, parsed.config);
                if let Some(slot) = self.routers.get_mut(node.index()) {
                    *slot = Some(router);
                }
                if let Some(slot) = self.ready_at.get_mut(node.index()) {
                    if slot.replace(self.now).is_none() {
                        self.ready_count += 1;
                    }
                }
                self.last_activity = self.last_activity.max(self.now);
                self.schedule_poll(node, self.now);
            }
            EventKind::DeliverIsis {
                node,
                iface,
                payload,
            } => {
                self.tally.deliver_isis += 1;
                if !self.link_is_up(net, node, iface) {
                    return;
                }
                let now = self.now;
                let Some(iface_name) = net.interner.iface(iface) else {
                    return;
                };
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    router.push_isis(now, iface_name, payload);
                    self.messages_delivered += 1;
                    self.schedule_poll(node, SimTime(now.0 + 1));
                }
            }
            EventKind::DeliverBgp {
                node,
                src,
                dst,
                payload,
            } => {
                self.tally.deliver_bgp += 1;
                let now = self.now;
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    router.push_bgp(now, src, dst, payload);
                    self.messages_delivered += 1;
                    self.schedule_poll(node, SimTime(now.0 + 1));
                }
            }
            EventKind::DeliverToExternal { idx, payload } => {
                self.tally.deliver_external += 1;
                // An inactive feed is an unplugged device: segments vanish.
                if !self.feeds_active {
                    return;
                }
                let now = self.now;
                if let Some(peer) = self.externals.get_mut(idx).and_then(|s| s.as_mut()) {
                    let was_done = peer.done();
                    let mut buf = payload;
                    if let Ok(msg) = mfv_wire::bgp::BgpMsg::decode(&mut buf) {
                        peer.push_msg(now, msg);
                        self.messages_delivered += 1;
                    }
                    if !was_done && peer.done() {
                        self.ext_done[idx] = Some(now);
                        self.ext_done_new.push((idx, now));
                    }
                    self.schedule_ext_poll(idx, SimTime(now.0 + 1));
                }
            }
            EventKind::RestartRouter(node) => {
                self.tally.restart_router += 1;
                let now = self.now;
                self.pending_restarts = self.pending_restarts.saturating_sub(1);
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    if !router.is_running() {
                        router.restart(now);
                        self.last_activity = self.last_activity.max(now);
                        self.schedule_poll(node, SimTime(now.0 + 1));
                        if let Some(name) = net.interner.node(node) {
                            self.journal.push(now, "engine.restart", name.to_string());
                        }
                    }
                }
            }
            EventKind::ChaosLink { slot, up } => {
                // Tally + journal live with the coordinator's canonical
                // timeline (one entry per flap, not one per shard replica).
                self.chaos_processed += 1;
                self.apply_link(net, slot, up);
            }
            EventKind::ChaosKillRouter(node) => {
                self.chaos_processed += 1;
                self.tally.chaos_kill += 1;
                let now = self.now;
                if let Some(name) = net.interner.node(node) {
                    self.journal
                        .push(now, "chaos.kill_routing", name.to_string());
                }
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    router.inject_crash("chaos: routing process killed");
                    self.last_activity = self.last_activity.max(now);
                    self.schedule_poll(node, SimTime(now.0 + 1));
                }
            }
        }
    }

    /// Processes every work item with instant `< end` in deterministic
    /// order: earliest instant first; at equal instants the heap wins
    /// (content-keyed order), then router wakes, then external wakes.
    pub fn run_window(&mut self, net: &Net, end: SimTime) {
        loop {
            let heap_t = self.events.peek().map(|Reverse(ev)| ev.key.time);
            let wake_t = self.wake.iter().next().map(|&(t, _)| t);
            let ext_t = self.ext_wake.iter().next().map(|&(t, _)| t);
            let Some(t) = [heap_t, wake_t, ext_t].into_iter().flatten().min() else {
                self.fold_churn();
                return;
            };
            if t >= end {
                self.fold_churn();
                return;
            }
            self.now = t;
            if heap_t == Some(t) {
                if let Some(Reverse(ev)) = self.events.pop() {
                    self.handle(net, ev.kind);
                }
            } else if wake_t == Some(t) {
                if let Some(&(wt, node)) = self.wake.iter().next() {
                    self.wake.remove(&(wt, node));
                    if let Some(slot) = self.next_poll.get_mut(node.index()) {
                        *slot = None;
                    }
                    self.poll_router(net, node);
                }
            } else if let Some(&(wt, idx)) = self.ext_wake.iter().next() {
                self.ext_wake.remove(&(wt, idx));
                if let Some(slot) = self.ext_next.get_mut(idx) {
                    *slot = None;
                }
                self.poll_external(net, idx);
            }
            self.events_processed += 1;
            self.wake_depth
                .record((self.wake.len() + self.ext_wake.len()) as u64);
        }
    }

    /// Folds buffered raw change records into the bounded local `churn`
    /// tracker, inside the shard's own window — no coordinator-side merge
    /// per barrier. A no-op until the coordinator announces the
    /// steady-state gate (`churn_from`); records stamped before the gate
    /// never count toward oscillation. `churn_buf` is drained in processed
    /// order, which within one shard is the deterministic event order, so
    /// the fold is a pure function of shard content.
    pub fn fold_churn(&mut self) {
        let Some(from) = self.churn_from else {
            return;
        };
        for (at, node, prefixes) in self.churn_buf.drain(..) {
            if at < from {
                continue;
            }
            for p in prefixes {
                if !self.churn.contains_key(&p) && self.churn.len() >= CHURN_PREFIX_CAP {
                    continue;
                }
                let q = self.churn.entry(p).or_default();
                q.push_back((at, node.index() as u32));
                if q.len() > CHURN_HISTORY {
                    q.pop_front();
                }
            }
        }
    }

    /// Advances the shard's local clock to at least `t` without processing
    /// anything (used by the coordinator so wall-clock-relative scheduling
    /// after a barrier can't rewind behind the window edge).
    pub fn advance_clock(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Evicts a node (machine failure): drops the router, its ready mark,
    /// and any pending wake.
    pub fn evict_node(&mut self, node: NodeRef, now: SimTime) {
        if let Some(slot) = self.routers.get_mut(node.index()) {
            *slot = None;
        }
        if let Some(slot) = self.ready_at.get_mut(node.index()) {
            if slot.take().is_some() {
                self.ready_count = self.ready_count.saturating_sub(1);
            }
        }
        self.clear_poll(node);
        self.last_activity = self.last_activity.max(now);
    }
}
