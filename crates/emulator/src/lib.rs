//! The network emulator — this workspace's stand-in for Kubernetes Network
//! Emulator (KNE): it schedules router "pods" onto a simulated cluster,
//! boots vendor OS instances from their configs, wires virtual links with
//! latency and jitter, injects external BGP route feeds, detects dataplane
//! convergence, and extracts [`mfv_dataplane::Dataplane`] snapshots.
//!
//! - [`topology`] — the topology-file format (nodes, links, external peers)
//! - [`cluster`] — simulated k8s machines, bin-packing scheduler, boot model
//! - [`inject`] — synthetic production-route BGP feeds
//! - [`chaos`] — seeded fault-injection schedules and convergence verdicts
//! - [`engine`] — the discrete-event emulation itself
//! - [`parallel`] — multi-seed parallel runs for the non-determinism study

pub mod chaos;
pub mod cluster;
pub mod engine;
pub mod inject;
pub mod parallel;
mod pool;
mod shard;
pub mod topology;

pub use chaos::{ChaosEvent, ChaosPlan, ConvergenceVerdict, ImpairSpec};
pub use cluster::{Cluster, MachineSpec, PodRequest, Unschedulable};
pub use engine::{Emulation, EmulationConfig, RunReport, ShardMode};
pub use inject::{synthetic_prefixes, ExternalPeer};
pub use parallel::{outcome_distribution, run_seeds, run_seeds_detailed, SeedError, SeedRun};
pub use topology::{ExternalPeerSpec, NodeSpec, TopoLink, Topology};
