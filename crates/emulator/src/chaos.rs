//! Chaos schedules: seeded, deterministic fault injection.
//!
//! The paper's argument for emulation is that real control planes misbehave
//! in ways hand-written models never predict (§2, §6) — but a replica that
//! only ever replays the happy path exercises none of that behaviour. A
//! [`ChaosPlan`] is a declarative schedule of faults the engine injects at
//! fixed virtual times: link flaps, message impairment on selected links,
//! routing-process kills, and cluster machine failures that evict pods back
//! through the bin-packing scheduler. Because the schedule is data and every
//! random draw comes from the engine's seeded RNG, a run is replayable from
//! `(topology, seed, plan)` — the same determinism contract the fault-free
//! engine already offers.

use mfv_types::{LinkId, NodeId, SimDuration, SimTime};

/// Message impairment applied to traffic crossing a link while a
/// [`ChaosEvent::Impair`] window is active.
///
/// Percentages are evaluated per message against the engine's seeded RNG,
/// so impairment outcomes replay identically for a given `(seed, plan)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ImpairSpec {
    /// Probability (0–100) that a message crossing the link is dropped.
    pub drop_pct: u8,
    /// Probability (0–100) that a message is delivered twice.
    pub duplicate_pct: u8,
    /// Extra one-way delay added to every message, in milliseconds.
    pub extra_delay_ms: u64,
}

impl ImpairSpec {
    /// Does this spec do anything at all?
    pub fn is_noop(&self) -> bool {
        self.drop_pct == 0 && self.duplicate_pct == 0 && self.extra_delay_ms == 0
    }
}

/// One scheduled fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChaosEvent {
    /// Take `link` down at `at`, restore it `down_for` later — and repeat
    /// the cycle `repeats` times, `every` apart. `repeats == 1` is a single
    /// flap; a long train of flaps is how oscillation scenarios are built.
    LinkFlap {
        link: LinkId,
        at: SimTime,
        down_for: SimDuration,
        repeats: u32,
        every: SimDuration,
    },
    /// Kill the routing process on `node` at `at` (the process dies exactly
    /// as a vendor-bug crash does: FIB flushed, sessions lost; the engine's
    /// watchdog applies its usual restart policy).
    KillRouting { node: NodeId, at: SimTime },
    /// Fail the named cluster machine at `at`: every pod on it is evicted
    /// and resubmitted to the scheduler, which places it on surviving
    /// machines (or reports it unschedulable).
    FailMachine { machine: String, at: SimTime },
    /// Impair messages crossing `link` during `[from, until)`.
    Impair {
        link: LinkId,
        from: SimTime,
        until: SimTime,
        spec: ImpairSpec,
    },
}

impl ChaosEvent {
    /// The last instant at which this event can still change the network —
    /// convergence must not be declared before every scheduled fault has
    /// had its say.
    pub fn horizon(&self) -> SimTime {
        match self {
            ChaosEvent::LinkFlap {
                at,
                down_for,
                repeats,
                every,
                ..
            } => *at + every.saturating_mul((*repeats).saturating_sub(1) as u64) + *down_for,
            ChaosEvent::KillRouting { at, .. } => *at,
            ChaosEvent::FailMachine { at, .. } => *at,
            ChaosEvent::Impair { until, .. } => *until,
        }
    }
}

/// A deterministic schedule of injected faults.
///
/// Built with the chainable constructors and handed to the engine via
/// [`EmulationConfig::chaos`](crate::EmulationConfig); an empty plan (the
/// default) is a fault-free run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ChaosPlan {
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// One down/up flap of `link`.
    pub fn link_flap(self, link: LinkId, at: SimTime, down_for: SimDuration) -> ChaosPlan {
        self.repeated_link_flap(link, at, down_for, 1, SimDuration::ZERO)
    }

    /// A train of `repeats` flaps starting at `at`, one cycle `every`
    /// (which must exceed `down_for` for the link to come back up between
    /// cycles).
    pub fn repeated_link_flap(
        mut self,
        link: LinkId,
        at: SimTime,
        down_for: SimDuration,
        repeats: u32,
        every: SimDuration,
    ) -> ChaosPlan {
        self.events.push(ChaosEvent::LinkFlap {
            link,
            at,
            down_for,
            repeats,
            every,
        });
        self
    }

    pub fn kill_routing(mut self, node: impl Into<NodeId>, at: SimTime) -> ChaosPlan {
        self.events.push(ChaosEvent::KillRouting {
            node: node.into(),
            at,
        });
        self
    }

    pub fn fail_machine(mut self, machine: impl Into<String>, at: SimTime) -> ChaosPlan {
        self.events.push(ChaosEvent::FailMachine {
            machine: machine.into(),
            at,
        });
        self
    }

    pub fn impair_link(
        mut self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        spec: ImpairSpec,
    ) -> ChaosPlan {
        self.events.push(ChaosEvent::Impair {
            link,
            from,
            until,
            spec,
        });
        self
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The same plan with every scheduled instant pushed `by` later.
    ///
    /// Plans are usually authored relative to t=0; a continuous-verification
    /// loop that injects faults *after* initial convergence shifts the plan
    /// by the convergence instant so "flap at 30s" means 30s into the
    /// steady-state window.
    pub fn shifted(&self, by: SimDuration) -> ChaosPlan {
        let events = self
            .events
            .iter()
            .map(|ev| match ev.clone() {
                ChaosEvent::LinkFlap {
                    link,
                    at,
                    down_for,
                    repeats,
                    every,
                } => ChaosEvent::LinkFlap {
                    link,
                    at: at + by,
                    down_for,
                    repeats,
                    every,
                },
                ChaosEvent::KillRouting { node, at } => {
                    ChaosEvent::KillRouting { node, at: at + by }
                }
                ChaosEvent::FailMachine { machine, at } => ChaosEvent::FailMachine {
                    machine,
                    at: at + by,
                },
                ChaosEvent::Impair {
                    link,
                    from,
                    until,
                    spec,
                } => ChaosEvent::Impair {
                    link,
                    from: from + by,
                    until: until + by,
                    spec,
                },
            })
            .collect();
        ChaosPlan { events }
    }

    /// Latest horizon across all scheduled events ([`SimTime::ZERO`] for an
    /// empty plan).
    pub fn horizon(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.horizon())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Why a convergence run ended the way it did — the watchdog's replacement
/// for a bare `converged: bool`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConvergenceVerdict {
    /// The dataplane went quiet for the configured window.
    Converged,
    /// The time budget ran out while a recognisable set of prefixes kept
    /// changing — the network is flapping, not converging slowly.
    Oscillating {
        /// Mean interval between consecutive changes of the most-churning
        /// prefix: the detected flap period.
        period: SimDuration,
        /// Prefixes still churning at the deadline (sorted; capped at
        /// [`ConvergenceVerdict::MAX_REPORTED_PREFIXES`]).
        prefixes: Vec<mfv_types::Prefix>,
    },
    /// The time budget ran out without quiescence or detectable
    /// oscillation (e.g. still booting, or a feed still draining).
    TimedOut,
}

impl ConvergenceVerdict {
    /// Cap on the prefix list carried by an `Oscillating` verdict.
    pub const MAX_REPORTED_PREFIXES: usize = 32;

    pub fn is_converged(&self) -> bool {
        matches!(self, ConvergenceVerdict::Converged)
    }
}

impl std::fmt::Display for ConvergenceVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceVerdict::Converged => write!(f, "converged"),
            ConvergenceVerdict::Oscillating { period, prefixes } => write!(
                f,
                "oscillating ({} prefixes churning, period {period})",
                prefixes.len()
            ),
            ConvergenceVerdict::TimedOut => write!(f, "timed out"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkId {
        LinkId::new(
            ("r1".into(), "Ethernet1".into()),
            ("r2".into(), "Ethernet1".into()),
        )
    }

    #[test]
    fn plan_builders_accumulate_events() {
        let plan = ChaosPlan::new()
            .link_flap(link(), SimTime(10_000), SimDuration::from_secs(5))
            .kill_routing("r2", SimTime(20_000))
            .fail_machine("node-0", SimTime(30_000))
            .impair_link(
                link(),
                SimTime(40_000),
                SimTime(50_000),
                ImpairSpec {
                    drop_pct: 10,
                    ..Default::default()
                },
            );
        assert_eq!(plan.events.len(), 4);
        assert!(!plan.is_empty());
        assert!(ChaosPlan::new().is_empty());
    }

    #[test]
    fn horizon_covers_the_last_fault() {
        let plan = ChaosPlan::new().repeated_link_flap(
            link(),
            SimTime(100_000),
            SimDuration::from_secs(5),
            10,
            SimDuration::from_secs(20),
        );
        // Last down at 100s + 9*20s = 280s; back up 5s later.
        assert_eq!(plan.horizon(), SimTime(285_000));
        assert_eq!(ChaosPlan::new().horizon(), SimTime::ZERO);
    }

    #[test]
    fn impair_horizon_is_window_end() {
        let ev = ChaosEvent::Impair {
            link: link(),
            from: SimTime(1_000),
            until: SimTime(9_000),
            spec: ImpairSpec::default(),
        };
        assert_eq!(ev.horizon(), SimTime(9_000));
    }

    #[test]
    fn verdict_display_and_predicates() {
        assert!(ConvergenceVerdict::Converged.is_converged());
        assert!(!ConvergenceVerdict::TimedOut.is_converged());
        let v = ConvergenceVerdict::Oscillating {
            period: SimDuration::from_secs(15),
            prefixes: vec!["10.0.0.0/24".parse().unwrap()],
        };
        assert_eq!(
            v.to_string(),
            "oscillating (1 prefixes churning, period 15.000s)"
        );
    }
}
