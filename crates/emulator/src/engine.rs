//! The discrete-event emulation engine — the workspace's stand-in for KNE.
//!
//! Owns the virtual routers, the simulated cluster that boots them, the
//! links between them, and the external route-injection peers. Runs on
//! virtual time with seeded per-link jitter: a given `(topology, seed)` pair
//! replays identically, and different seeds reorder message arrivals — which
//! is exactly the non-determinism surface §6 of the paper discusses.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::net::Ipv4Addr;

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mfv_dataplane::Dataplane;
use mfv_types::{IfaceId, LinkId, NodeId, Prefix, SimDuration, SimTime};
use mfv_vrouter::{RouterEvent, VendorProfile, VirtualRouter};

use crate::chaos::{ChaosEvent, ChaosPlan, ConvergenceVerdict, ImpairSpec};
use crate::cluster::{Cluster, PodRequest, Unschedulable};
use crate::inject::{synthetic_prefixes, ExternalPeer};
use crate::topology::Topology;

/// Emulation tuning knobs.
#[derive(Clone, Debug)]
pub struct EmulationConfig {
    /// Seed for boot jitter and link jitter.
    pub seed: u64,
    /// Dataplane quiescence window for convergence detection ("we detect
    /// convergence to be complete once we observe the dataplane to
    /// stabilize at all routers", §5).
    pub quiet_period: SimDuration,
    /// Hard stop for a run.
    pub max_sim_time: SimDuration,
    /// Restart crashed routing processes after their vendor restart delay.
    pub auto_restart_crashed: bool,
    /// Per-node vendor profile overrides (bug injection).
    pub profile_overrides: BTreeMap<NodeId, VendorProfile>,
    /// Start external route feeds only once every pod is Ready — the
    /// paper's E5 measurement applies configuration and injection to an
    /// already-booted replica.
    pub inject_after_boot: bool,
    /// Scheduled fault injection. The default (empty) plan is a fault-free
    /// run; see [`ChaosPlan`] for what can be scheduled. Events referencing
    /// unknown links/nodes/machines are inert.
    pub chaos: ChaosPlan,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            seed: 1,
            quiet_period: SimDuration::from_secs(12),
            max_sim_time: SimDuration::from_mins(60),
            auto_restart_crashed: true,
            profile_overrides: BTreeMap::new(),
            inject_after_boot: true,
            chaos: ChaosPlan::default(),
        }
    }
}

/// Outcome of a convergence run.
///
/// `PartialEq` so determinism tests can compare whole reports: a replay of
/// the same `(topology, seed, plan)` must produce an identical one.
#[derive(Clone, PartialEq, Debug)]
pub struct RunReport {
    /// Whether the dataplane went quiet before `max_sim_time`.
    /// (Equivalent to `verdict.is_converged()`; kept for callers that only
    /// need the boolean.)
    pub converged: bool,
    /// The watchdog's full verdict: converged, oscillating (with the
    /// detected flap period and churning prefixes), or timed out.
    pub verdict: ConvergenceVerdict,
    /// When the last pod became Ready (emulation startup complete).
    pub boot_complete_at: Option<SimTime>,
    /// Time of the last dataplane change — the convergence instant.
    pub converged_at: SimTime,
    /// Control-plane messages delivered.
    pub messages_delivered: u64,
    /// Routing-process crashes observed.
    pub crashes: u64,
    /// Events processed (engine work metric).
    pub events_processed: u64,
    /// Pods that could not be scheduled.
    pub unschedulable: Vec<Unschedulable>,
}

#[derive(Debug)]
enum EventKind {
    PodReady(NodeId),
    Poll(NodeId),
    DeliverIsis {
        node: NodeId,
        iface: IfaceId,
        payload: Bytes,
    },
    DeliverBgp {
        node: NodeId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Bytes,
    },
    PollExternal(usize),
    DeliverToExternal {
        idx: usize,
        payload: Bytes,
    },
    RestartRouter(NodeId),
    ChaosLink {
        link: LinkId,
        up: bool,
    },
    ChaosKillRouter(NodeId),
    ChaosFailMachine(String),
}

struct Ev {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Owner {
    Node,
    External(usize),
}

/// The running emulation.
pub struct Emulation {
    pub topology: Topology,
    cfg: EmulationConfig,
    cluster: Cluster,
    routers: BTreeMap<NodeId, VirtualRouter>,
    ready_at: BTreeMap<NodeId, SimTime>,
    externals: Vec<ExternalPeer>,
    events: BinaryHeap<Reverse<Ev>>,
    next_poll: BTreeMap<NodeId, SimTime>,
    next_ext_poll: BTreeMap<usize, SimTime>,
    now: SimTime,
    seq: u64,
    rng: ChaCha8Rng,
    /// addr → owning entity, for BGP segment delivery.
    ip_owner: BTreeMap<Ipv4Addr, (Owner, NodeId)>,
    /// (node, iface) → (peer node, peer iface, latency).
    link_ends: BTreeMap<(NodeId, IfaceId), (NodeId, IfaceId, u64)>,
    link_up: BTreeMap<LinkId, bool>,
    last_activity: SimTime,
    boot_complete_at: Option<SimTime>,
    messages_delivered: u64,
    crashes: u64,
    events_processed: u64,
    unschedulable: Vec<Unschedulable>,
    booted: bool,
    pending_restarts: usize,
    /// External feeds are inert until activated (at boot completion when
    /// `inject_after_boot`, else immediately).
    feeds_active: bool,
    /// FIFO clocks: jitter may delay but never reorder messages between the
    /// same endpoints (BGP runs over TCP; IS-IS links preserve order).
    /// Cross-flow ordering still varies by seed — the non-determinism §6
    /// actually has.
    bgp_flow_clock: BTreeMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    isis_link_clock: BTreeMap<(NodeId, IfaceId), SimTime>,
    /// Chaos events scheduled but not yet handled; convergence must wait
    /// for zero, or a quiet spell before a scheduled fault would be
    /// declared final.
    chaos_pending: usize,
    /// Active message-impairment windows from the chaos plan.
    impairments: Vec<(LinkId, SimTime, SimTime, ImpairSpec)>,
    /// Recent per-prefix dataplane-change timestamps (recorded once boot
    /// and injection are done), bounded in both axes. The watchdog reads
    /// this at the deadline to distinguish oscillation from slow progress.
    churn: BTreeMap<Prefix, VecDeque<SimTime>>,
    /// Per-node configs parsed once at [`Emulation::new`]; every later
    /// consumer (boot wiring, pod bring-up, crash-restart) reads from here
    /// instead of re-parsing and asserting success.
    parsed_configs: BTreeMap<NodeId, mfv_config::Parsed>,
}

/// Most prefixes tracked by the churn watchdog; arrivals past the cap are
/// ignored (deterministically) to bound memory at production-feed scale.
const CHURN_PREFIX_CAP: usize = 4096;
/// Change timestamps retained per prefix.
const CHURN_HISTORY: usize = 8;
/// Changes a prefix needs within the recent window to count as oscillating.
const OSCILLATION_MIN_CHANGES: usize = 4;

impl Emulation {
    /// Prepares an emulation: validates the topology and parses every
    /// config in its vendor dialect (reporting config errors up front, as
    /// the real bring-up would).
    pub fn new(
        topology: Topology,
        cluster: Cluster,
        cfg: EmulationConfig,
    ) -> Result<Emulation, String> {
        topology.validate()?;
        let mut parsed_configs = BTreeMap::new();
        for node in &topology.nodes {
            let parsed = node
                .parse_config()
                .map_err(|e| format!("config for {}: {e}", node.name))?;
            parsed_configs.insert(node.name.clone(), parsed);
        }
        let mut link_ends = BTreeMap::new();
        let mut link_up = BTreeMap::new();
        for l in &topology.links {
            link_ends.insert(
                (l.a_node.clone(), l.a_iface.clone()),
                (l.b_node.clone(), l.b_iface.clone(), l.latency_ms),
            );
            link_ends.insert(
                (l.b_node.clone(), l.b_iface.clone()),
                (l.a_node.clone(), l.a_iface.clone(), l.latency_ms),
            );
            link_up.insert(l.id(), true);
        }
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let feeds_active = !cfg.inject_after_boot;
        Ok(Emulation {
            topology,
            cfg,
            cluster,
            routers: BTreeMap::new(),
            ready_at: BTreeMap::new(),
            externals: Vec::new(),
            events: BinaryHeap::new(),
            next_poll: BTreeMap::new(),
            next_ext_poll: BTreeMap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            ip_owner: BTreeMap::new(),
            link_ends,
            link_up,
            last_activity: SimTime::ZERO,
            boot_complete_at: None,
            messages_delivered: 0,
            crashes: 0,
            events_processed: 0,
            unschedulable: Vec::new(),
            booted: false,
            pending_restarts: 0,
            feeds_active,
            bgp_flow_clock: BTreeMap::new(),
            isis_link_clock: BTreeMap::new(),
            chaos_pending: 0,
            impairments: Vec::new(),
            churn: BTreeMap::new(),
            parsed_configs,
        })
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn router(&self, node: &NodeId) -> Option<&VirtualRouter> {
        self.routers.get(node)
    }

    /// Runs an operator CLI command on a node (SSH-to-the-emulated-router).
    pub fn cli(&self, node: &NodeId, command: &str) -> Option<String> {
        self.routers
            .get(node)
            .map(|r| mfv_vrouter::cli::exec(r, command))
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn schedule_poll(&mut self, node: &NodeId, at: SimTime) {
        let at = at.max(SimTime(self.now.0));
        match self.next_poll.get(node) {
            Some(t) if *t <= at => return,
            _ => {}
        }
        self.next_poll.insert(node.clone(), at);
        self.push_event(at, EventKind::Poll(node.clone()));
    }

    /// Like `schedule_poll`, for external peers: at most one pending poll
    /// per peer, else event chains multiply and the feed outruns its pacing.
    fn schedule_ext_poll(&mut self, idx: usize, at: SimTime) {
        let at = at.max(SimTime(self.now.0));
        match self.next_ext_poll.get(&idx) {
            Some(t) if *t <= at => return,
            _ => {}
        }
        self.next_ext_poll.insert(idx, at);
        self.push_event(at, EventKind::PollExternal(idx));
    }

    /// Submits all pods to the cluster and wires external peers. Called
    /// implicitly by `run_until_converged`.
    fn boot(&mut self) {
        if self.booted {
            return;
        }
        self.booted = true;
        let nodes: Vec<_> = self.topology.nodes.clone();
        for node in &nodes {
            let profile = self
                .cfg
                .profile_overrides
                .get(&node.name)
                .cloned()
                .unwrap_or_else(|| VendorProfile::for_vendor(node.vendor));
            let req = PodRequest {
                pod: node.name.clone(),
                cpu_millis: profile.cpu_millis,
                mem_mib: profile.mem_mib,
            };
            match self
                .cluster
                .schedule(&req, self.now, profile.boot_time, &mut self.rng)
            {
                Ok(placement) => {
                    self.push_event(placement.ready_at, EventKind::PodReady(node.name.clone()));
                }
                Err(e) => {
                    self.unschedulable.push(e);
                }
            }
        }
        let peers: Vec<_> = self.topology.external_peers.clone();
        for (idx, spec) in peers.iter().enumerate() {
            // The router-side address: the attach node's interface on the
            // peer's subnet. Resolved from the config parsed at `new()`.
            let router_addr = self
                .parsed_configs
                .get(&spec.attach_to)
                .and_then(|parsed| {
                    parsed
                        .config
                        .interfaces
                        .iter()
                        .filter(|i| i.is_l3())
                        .filter_map(|i| i.addr)
                        .find(|a| a.subnet().contains(spec.addr))
                        .map(|a| a.addr)
                })
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            let base = spec.base_octet.unwrap_or(20 + idx as u8);
            let routes = synthetic_prefixes(base, spec.route_count);
            let peer = ExternalPeer::new(spec.addr, spec.asn, router_addr, routes);
            self.ip_owner
                .insert(spec.addr, (Owner::External(idx), spec.attach_to.clone()));
            self.externals.push(peer);
            if !self.cfg.inject_after_boot {
                self.schedule_ext_poll(idx, SimTime(self.now.0 + 1_000));
            }
        }
        // Chaos schedule: expand the plan into engine events up front so the
        // whole fault timeline is part of the deterministic event order.
        let plan = self.cfg.chaos.clone();
        for ev in plan.events {
            match ev {
                ChaosEvent::LinkFlap {
                    link,
                    at,
                    down_for,
                    repeats,
                    every,
                } => {
                    for k in 0..repeats as u64 {
                        let down_at = at + every.saturating_mul(k);
                        self.chaos_pending += 2;
                        self.push_event(
                            down_at,
                            EventKind::ChaosLink {
                                link: link.clone(),
                                up: false,
                            },
                        );
                        self.push_event(
                            down_at + down_for,
                            EventKind::ChaosLink {
                                link: link.clone(),
                                up: true,
                            },
                        );
                    }
                }
                ChaosEvent::KillRouting { node, at } => {
                    self.chaos_pending += 1;
                    self.push_event(at, EventKind::ChaosKillRouter(node));
                }
                ChaosEvent::FailMachine { machine, at } => {
                    self.chaos_pending += 1;
                    self.push_event(at, EventKind::ChaosFailMachine(machine));
                }
                ChaosEvent::Impair {
                    link,
                    from,
                    until,
                    spec,
                } => {
                    self.impairments.push((link, from, until, spec));
                }
            }
        }
    }

    fn register_addresses(&mut self, node: &NodeId) {
        if let Some(router) = self.routers.get(node) {
            for addr in router.addresses() {
                self.ip_owner.insert(addr, (Owner::Node, node.clone()));
            }
        }
    }

    fn link_is_up(&self, node: &NodeId, iface: &IfaceId) -> bool {
        let Some((peer, piface, _)) = self.link_ends.get(&(node.clone(), iface.clone())) else {
            return false;
        };
        let id = LinkId::new(
            (node.clone(), iface.clone()),
            (peer.clone(), piface.clone()),
        );
        self.link_up.get(&id).copied().unwrap_or(false)
    }

    /// The active impairment window covering `link` right now, if any.
    fn impairment_for(&self, link: &LinkId) -> Option<ImpairSpec> {
        let now = self.now;
        self.impairments
            .iter()
            .find(|(l, from, until, _)| l == link && now >= *from && now < *until)
            .map(|(_, _, _, spec)| *spec)
    }

    /// Impairment for BGP traffic between two nodes: matched when an
    /// impaired link directly connects them (eBGP single-hop, or iBGP
    /// between adjacent routers). Multi-hop sessions crossing an impaired
    /// transit link are not modelled — impairment targets links, and we
    /// route no per-message paths here.
    fn bgp_impairment_for(&self, a: &NodeId, b: &NodeId) -> Option<ImpairSpec> {
        let now = self.now;
        self.impairments
            .iter()
            .find(|(l, from, until, _)| {
                now >= *from
                    && now < *until
                    && ((l.a.0 == *a && l.b.0 == *b) || (l.a.0 == *b && l.b.0 == *a))
            })
            .map(|(_, _, _, spec)| *spec)
    }

    /// Applies an impairment's drop/duplicate draws; returns how many
    /// copies to deliver (0 = dropped). Draws come from the engine RNG, so
    /// impairment outcomes are part of the seed-deterministic replay.
    fn impaired_copies(&mut self, spec: Option<ImpairSpec>) -> u32 {
        let Some(spec) = spec else { return 1 };
        if spec.drop_pct > 0 && self.rng.gen_range(0..100u32) < spec.drop_pct as u32 {
            return 0;
        }
        if spec.duplicate_pct > 0 && self.rng.gen_range(0..100u32) < spec.duplicate_pct as u32 {
            return 2;
        }
        1
    }

    /// Handles one router's output events.
    fn dispatch_router_events(&mut self, node: &NodeId, events: Vec<RouterEvent>) {
        for ev in events {
            match ev {
                RouterEvent::IsisFrame { iface, payload } => {
                    if !self.link_is_up(node, &iface) {
                        continue;
                    }
                    let Some((peer, piface, latency)) =
                        self.link_ends.get(&(node.clone(), iface.clone())).cloned()
                    else {
                        continue;
                    };
                    let link = LinkId::new(
                        (node.clone(), iface.clone()),
                        (peer.clone(), piface.clone()),
                    );
                    let impair = self.impairment_for(&link);
                    let copies = self.impaired_copies(impair);
                    let extra = impair.map(|s| s.extra_delay_ms).unwrap_or(0);
                    for _ in 0..copies {
                        let jitter = self.rng.gen_range(0..3);
                        let mut at = self.now + SimDuration::from_millis(latency + jitter + extra);
                        let clock = self
                            .isis_link_clock
                            .entry((node.clone(), iface.clone()))
                            .or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        self.push_event(
                            at,
                            EventKind::DeliverIsis {
                                node: peer.clone(),
                                iface: piface.clone(),
                                payload: payload.clone(),
                            },
                        );
                    }
                }
                RouterEvent::BgpSegment { src, dst, payload } => {
                    let Some((owner, owner_node)) = self.ip_owner.get(&dst).cloned() else {
                        continue; // addressed to nobody we know
                    };
                    let impair = match owner {
                        Owner::Node => self.bgp_impairment_for(node, &owner_node),
                        Owner::External(_) => None,
                    };
                    let copies = self.impaired_copies(impair);
                    let extra = impair.map(|s| s.extra_delay_ms).unwrap_or(0);
                    for _ in 0..copies {
                        let jitter = self.rng.gen_range(0..3);
                        let mut at = self.now + SimDuration::from_millis(2 + jitter + extra);
                        let clock = self
                            .bgp_flow_clock
                            .entry((src, dst))
                            .or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        match owner {
                            Owner::Node => self.push_event(
                                at,
                                EventKind::DeliverBgp {
                                    node: owner_node.clone(),
                                    src,
                                    dst,
                                    payload: payload.clone(),
                                },
                            ),
                            Owner::External(idx) => self.push_event(
                                at,
                                EventKind::DeliverToExternal {
                                    idx,
                                    payload: payload.clone(),
                                },
                            ),
                        }
                    }
                }
                RouterEvent::Crashed { reason } => {
                    self.crashes += 1;
                    self.last_activity = self.now;
                    let _ = reason;
                    if self.cfg.auto_restart_crashed {
                        let delay = self
                            .routers
                            .get(node)
                            .map(|r| r.profile().restart_delay)
                            .unwrap_or(SimDuration::from_secs(60));
                        self.pending_restarts += 1;
                        self.push_event(self.now + delay, EventKind::RestartRouter(node.clone()));
                    }
                }
            }
        }
    }

    fn poll_router(&mut self, node: &NodeId) {
        let now = self.now;
        let Some(router) = self.routers.get_mut(node) else {
            return;
        };
        let v_before = router.fib_version();
        let events = router.poll(now);
        let v_after = router.fib_version();
        let wakeup = router.next_wakeup(now);
        let changed = router.take_changed_prefixes();
        if v_after != v_before {
            self.last_activity = now;
        }
        self.dispatch_router_events(node, events);
        self.next_poll.remove(node);
        self.schedule_poll(node, wakeup);
        if !changed.is_empty() {
            self.record_churn(now, changed);
        }
    }

    /// Records per-prefix change timestamps for the oscillation watchdog.
    /// Only steady-state churn matters (boot and feed injection legitimately
    /// touch every prefix), and both axes are capped so production-scale
    /// tables cannot blow up the tracker.
    fn record_churn(&mut self, now: SimTime, prefixes: BTreeSet<Prefix>) {
        if self.boot_complete_at.is_none() || !self.injection_done() {
            return;
        }
        for p in prefixes {
            if !self.churn.contains_key(&p) && self.churn.len() >= CHURN_PREFIX_CAP {
                continue;
            }
            let q = self.churn.entry(p).or_default();
            q.push_back(now);
            if q.len() > CHURN_HISTORY {
                q.pop_front();
            }
        }
    }

    /// The watchdog's post-mortem when the time budget expires: prefixes
    /// that kept changing right up to the end mean the network is
    /// *oscillating*, not converging slowly.
    fn oscillation_verdict(&self) -> ConvergenceVerdict {
        let window = self.cfg.quiet_period.saturating_mul(4);
        let now = self.now;
        let mut churning: Vec<(&Prefix, &VecDeque<SimTime>)> = self
            .churn
            .iter()
            .filter(|(_, q)| {
                q.len() >= OSCILLATION_MIN_CHANGES
                    && q.back().map(|t| now.since(*t) <= window).unwrap_or(false)
            })
            .collect();
        if churning.is_empty() {
            return ConvergenceVerdict::TimedOut;
        }
        // Flap period: mean inter-change interval of the most-churning
        // prefix (ties broken by prefix order — deterministic).
        churning.sort_by_key(|(p, q)| (std::cmp::Reverse(q.len()), **p));
        let period = match churning.first() {
            Some((_, q)) => match (q.front(), q.back()) {
                (Some(first), Some(last)) => SimDuration::from_millis(
                    last.since(*first).as_millis() / (q.len() as u64 - 1).max(1),
                ),
                _ => SimDuration::ZERO,
            },
            None => SimDuration::ZERO,
        };
        let mut prefixes: Vec<Prefix> = churning.iter().map(|(p, _)| **p).collect();
        prefixes.sort();
        prefixes.truncate(ConvergenceVerdict::MAX_REPORTED_PREFIXES);
        ConvergenceVerdict::Oscillating { period, prefixes }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::PodReady(node) => {
                // Both lookups were populated at `new()` from the validated
                // topology; a miss means the event named an unknown node,
                // which is dropped rather than panicking mid-run.
                let (Some(spec), Some(parsed)) = (
                    self.topology.node(&node).cloned(),
                    self.parsed_configs.get(&node).cloned(),
                ) else {
                    return;
                };
                let profile = self
                    .cfg
                    .profile_overrides
                    .get(&node)
                    .cloned()
                    .unwrap_or_else(|| VendorProfile::for_vendor(spec.vendor));
                let router = VirtualRouter::new(node.clone(), profile, parsed.config);
                self.routers.insert(node.clone(), router);
                self.ready_at.insert(node.clone(), self.now);
                self.register_addresses(&node);
                self.last_activity = self.now;
                if self.ready_at.len() == self.topology.nodes.len()
                    && self.boot_complete_at.is_none()
                {
                    self.boot_complete_at = Some(self.now);
                    if self.cfg.inject_after_boot {
                        self.feeds_active = true;
                        for idx in 0..self.externals.len() {
                            self.schedule_ext_poll(idx, SimTime(self.now.0 + 1_000));
                        }
                    }
                }
                self.schedule_poll(&node, self.now);
            }
            EventKind::Poll(node) => {
                // Stale-poll suppression: only the earliest scheduled poll
                // for a node runs.
                match self.next_poll.get(&node) {
                    Some(t) if *t == self.now => {}
                    _ => return,
                }
                self.poll_router(&node);
            }
            EventKind::DeliverIsis {
                node,
                iface,
                payload,
            } => {
                if !self.link_is_up(&node, &iface) {
                    return;
                }
                let now = self.now;
                if let Some(router) = self.routers.get_mut(&node) {
                    router.push_isis(now, &iface, payload);
                    self.messages_delivered += 1;
                    self.schedule_poll(&node, SimTime(now.0 + 1));
                }
            }
            EventKind::DeliverBgp {
                node,
                src,
                dst,
                payload,
            } => {
                let now = self.now;
                if let Some(router) = self.routers.get_mut(&node) {
                    router.push_bgp(now, src, dst, payload);
                    self.messages_delivered += 1;
                    self.schedule_poll(&node, SimTime(now.0 + 1));
                }
            }
            EventKind::PollExternal(idx) => {
                if !self.feeds_active {
                    return;
                }
                // Stale-poll suppression, as for routers.
                match self.next_ext_poll.get(&idx) {
                    Some(t) if *t == self.now => {}
                    _ => return,
                }
                self.next_ext_poll.remove(&idx);
                let now = self.now;
                let Some(peer) = self.externals.get_mut(idx) else {
                    return;
                };
                let msgs = peer.poll(now);
                let wake = peer.next_wakeup(now);
                let src = peer.addr;
                for (dst, msg) in msgs {
                    let payload = msg.encode();
                    if let Some((Owner::Node, node)) = self.ip_owner.get(&dst).cloned() {
                        let jitter = self.rng.gen_range(0..3);
                        let mut at = now + SimDuration::from_millis(2 + jitter);
                        let clock = self
                            .bgp_flow_clock
                            .entry((src, dst))
                            .or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        self.push_event(
                            at,
                            EventKind::DeliverBgp {
                                node,
                                src,
                                dst,
                                payload,
                            },
                        );
                    }
                }
                self.schedule_ext_poll(idx, wake);
            }
            EventKind::DeliverToExternal { idx, payload } => {
                // An inactive feed is an unplugged device: segments vanish.
                if !self.feeds_active {
                    return;
                }
                let now = self.now;
                if let Some(peer) = self.externals.get_mut(idx) {
                    let mut buf = payload;
                    if let Ok(msg) = mfv_wire::bgp::BgpMsg::decode(&mut buf) {
                        peer.push_msg(now, msg);
                        self.messages_delivered += 1;
                    }
                    self.schedule_ext_poll(idx, SimTime(now.0 + 1));
                }
            }
            EventKind::RestartRouter(node) => {
                let now = self.now;
                self.pending_restarts = self.pending_restarts.saturating_sub(1);
                if let Some(router) = self.routers.get_mut(&node) {
                    if !router.is_running() {
                        router.restart(now);
                        self.last_activity = now;
                        self.schedule_poll(&node, SimTime(now.0 + 1));
                    }
                }
            }
            EventKind::ChaosLink { link, up } => {
                self.chaos_pending = self.chaos_pending.saturating_sub(1);
                // Unknown links are inert rather than phantom dataplane
                // entries.
                if self.link_up.contains_key(&link) {
                    self.set_link(&link, up);
                }
            }
            EventKind::ChaosKillRouter(node) => {
                self.chaos_pending = self.chaos_pending.saturating_sub(1);
                let now = self.now;
                if let Some(router) = self.routers.get_mut(&node) {
                    router.inject_crash("chaos: routing process killed");
                    self.last_activity = now;
                    self.schedule_poll(&node, SimTime(now.0 + 1));
                }
            }
            EventKind::ChaosFailMachine(name) => {
                self.chaos_pending = self.chaos_pending.saturating_sub(1);
                let now = self.now;
                let evicted = self.cluster.fail_machine(&name);
                for req in evicted {
                    let node = req.pod.clone();
                    // The pod (and its router) is gone; the scheduler
                    // resubmits it onto surviving machines, and the usual
                    // PodReady path boots a fresh instance.
                    self.routers.remove(&node);
                    self.ready_at.remove(&node);
                    self.next_poll.remove(&node);
                    self.last_activity = now;
                    let Some(spec) = self.topology.node(&node) else {
                        continue;
                    };
                    let profile = self
                        .cfg
                        .profile_overrides
                        .get(&node)
                        .cloned()
                        .unwrap_or_else(|| VendorProfile::for_vendor(spec.vendor));
                    match self
                        .cluster
                        .schedule(&req, now, profile.boot_time, &mut self.rng)
                    {
                        Ok(placement) => {
                            self.push_event(placement.ready_at, EventKind::PodReady(node));
                        }
                        Err(e) => {
                            self.unschedulable.push(e);
                        }
                    }
                }
            }
        }
    }

    fn injection_done(&self) -> bool {
        self.externals.iter().all(|p| p.done())
    }

    /// Runs the emulation until the dataplane is quiet (or the time cap),
    /// and renders the watchdog's [`ConvergenceVerdict`]: a quiet spell
    /// only counts once every scheduled fault has fired, and a run that
    /// exhausts its budget is post-mortemed for oscillation.
    pub fn run_until_converged(&mut self) -> RunReport {
        self.boot();
        let deadline = SimTime(self.cfg.max_sim_time.as_millis());
        let mut converged = false;
        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.time > deadline {
                break;
            }
            self.now = ev.time;
            self.handle(ev.kind);
            self.events_processed += 1;

            let all_ready =
                self.ready_at.len() == self.topology.nodes.len() - self.unschedulable.len();
            if all_ready
                && self.injection_done()
                && self.pending_restarts == 0
                && self.chaos_pending == 0
                && self.now.since(self.last_activity) >= self.cfg.quiet_period
            {
                converged = true;
                break;
            }
        }
        let verdict = if converged {
            ConvergenceVerdict::Converged
        } else {
            self.oscillation_verdict()
        };
        RunReport {
            converged,
            verdict,
            boot_complete_at: self.boot_complete_at,
            converged_at: self.last_activity,
            messages_delivered: self.messages_delivered,
            crashes: self.crashes,
            events_processed: self.events_processed,
            unschedulable: self.unschedulable.clone(),
        }
    }

    /// Applies a configuration change to a running node (config push) and
    /// returns immediately; call `run_until_converged` to settle.
    pub fn push_config(&mut self, node: &NodeId, text: &str) -> Result<(), String> {
        let spec = self
            .topology
            .nodes
            .iter_mut()
            .find(|n| &n.name == node)
            .ok_or_else(|| format!("unknown node {node}"))?;
        let vendor = spec.vendor;
        let parsed = mfv_config::parse(vendor, text).map_err(|e| e.to_string())?;
        spec.config_text = text.to_string();
        let now = self.now;
        if let Some(router) = self.routers.get_mut(node) {
            router.apply_config(parsed.config);
            self.register_addresses(node);
            self.last_activity = now;
            self.schedule_poll(node, SimTime(now.0 + 1));
        }
        Ok(())
    }

    /// Brings a link up or down (failure injection).
    pub fn set_link(&mut self, link: &LinkId, up: bool) {
        self.link_up.insert(link.clone(), up);
        let now = self.now;
        for (node, iface) in [
            (link.a.0.clone(), link.a.1.clone()),
            (link.b.0.clone(), link.b.1.clone()),
        ] {
            if let Some(router) = self.routers.get_mut(&node) {
                router.set_link(&iface, up);
                self.schedule_poll(&node, SimTime(now.0 + 1));
            }
        }
        self.last_activity = now;
    }

    /// Administratively shuts a BGP session on a node.
    pub fn shutdown_bgp(&mut self, node: &NodeId, peer: Ipv4Addr) {
        let now = self.now;
        if let Some(router) = self.routers.get_mut(node) {
            router.shutdown_bgp_session(peer, now);
            self.last_activity = now;
            self.schedule_poll(node, SimTime(now.0 + 1));
        }
    }

    /// Extracts the current dataplane snapshot (the AFT dump step).
    pub fn dataplane(&self) -> Dataplane {
        let mut dp = Dataplane::new();
        for (name, router) in &self.routers {
            dp.add_node(
                name.clone(),
                router.fib(),
                router.addresses(),
                router.is_running(),
            );
        }
        for (id, up) in &self.link_up {
            if *up {
                dp.add_link(id.clone());
            }
        }
        dp
    }

    /// Current cluster packing (pods per machine).
    pub fn cluster_packing(&self) -> Vec<(String, usize)> {
        self.cluster.packing()
    }
}
