//! The discrete-event emulation engine — the workspace's stand-in for KNE.
//!
//! Owns the virtual routers, the simulated cluster that boots them, the
//! links between them, and the external route-injection peers. Runs on
//! virtual time with seeded per-link jitter: a given `(topology, seed)` pair
//! replays identically, and different seeds reorder message arrivals — which
//! is exactly the non-determinism surface §6 of the paper discusses.
//!
//! # Sharded conservative-lookahead execution
//!
//! The topology is partitioned into [`Shard`]s (by default one per
//! simulated cluster machine — the paper's §5 deployment cut), each owning
//! its own event heap and wake sets. The coordinator advances the fleet in
//! conservative time windows: with `T_i` the earliest pending work in shard
//! `i` and `W` the minimum cross-shard link latency (capped by the 2 ms
//! BGP segment floor), shard `i` may safely process every event strictly
//! before `min_{j≠i}(T_j) + W`, because nothing another shard has yet to
//! do can produce an arrival earlier than that. Within a window shards run
//! independently — on one thread or many (`EmulationConfig::threads`) —
//! and cross-shard messages ride per-shard outboxes that the coordinator
//! drains at the window barrier.
//!
//! Determinism does not depend on the thread count: events carry
//! content-derived keys `(time, origin, origin_seq)` that are globally
//! unique, so draining outboxes in any order produces the same heap order;
//! RNG streams are per-entity, not per-thread; and everything cross-cutting
//! (chaos timeline, boot completion, feed activation, churn gating,
//! convergence) is applied by the coordinator at window boundaries cut to
//! exact sim instants. Same `(topology, seed, plan, shard layout)` ⇒
//! byte-identical dataplanes, AFT dumps, and obs exports at any thread
//! count, including 1.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Barrier, Mutex};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mfv_dataplane::Dataplane;
use mfv_obs::{Journal, Obs, SimPhases, WallSection, WallTimer};
use mfv_types::{LinkId, NodeId, NodeRef, Prefix, SimDuration, SimTime};
use mfv_vrouter::{VendorProfile, VirtualRouter};

use crate::chaos::{ChaosEvent, ChaosPlan, ConvergenceVerdict};
use crate::cluster::{Cluster, PodRequest, Unschedulable};
use crate::inject::{synthetic_prefixes, ExternalPeer};
use crate::pool::{effective_threads, lock_or_recover, panic_message, with_workers};
use crate::shard::{
    stream_seed, Ev, EvKey, EventKind, EventTally, ImpairWindow, Net, Owner, Shard, CHURN_HISTORY,
    CHURN_PREFIX_CAP, GLOBAL_ORIGIN,
};
use crate::topology::Topology;

/// How the topology is partitioned into shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardMode {
    /// One shard per simulated cluster machine that hosts at least one pod
    /// — the placement the paper's §5 deployment would give each k8s node.
    /// A single-machine cluster therefore runs exactly like the classic
    /// single-heap engine.
    Auto,
    /// Exactly `n` shards of contiguous, equally-sized node ranges (in
    /// interned name order). Used by benches to scale the thread matrix
    /// independently of the cluster model.
    Fixed(usize),
}

/// Emulation tuning knobs.
#[derive(Clone, Debug)]
pub struct EmulationConfig {
    /// Seed for boot jitter and link jitter.
    pub seed: u64,
    /// Dataplane quiescence window for convergence detection ("we detect
    /// convergence to be complete once we observe the dataplane to
    /// stabilize at all routers", §5).
    pub quiet_period: SimDuration,
    /// Hard stop for a run.
    pub max_sim_time: SimDuration,
    /// Restart crashed routing processes after their vendor restart delay.
    pub auto_restart_crashed: bool,
    /// Per-node vendor profile overrides (bug injection).
    pub profile_overrides: BTreeMap<NodeId, VendorProfile>,
    /// Start external route feeds only once every pod is Ready — the
    /// paper's E5 measurement applies configuration and injection to an
    /// already-booted replica.
    pub inject_after_boot: bool,
    /// Scheduled fault injection. The default (empty) plan is a fault-free
    /// run; see [`ChaosPlan`] for what can be scheduled. Events referencing
    /// unknown links/nodes/machines are inert.
    pub chaos: ChaosPlan,
    /// Worker threads for window execution. `1` (the default) runs shards
    /// sequentially with zero synchronization; `0` means "host
    /// parallelism". The thread count never affects results.
    pub threads: usize,
    /// Shard partitioning rule. The default reuses the cluster placement.
    pub shards: ShardMode,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            seed: 1,
            quiet_period: SimDuration::from_secs(12),
            max_sim_time: SimDuration::from_mins(60),
            auto_restart_crashed: true,
            profile_overrides: BTreeMap::new(),
            inject_after_boot: true,
            chaos: ChaosPlan::default(),
            threads: 1,
            shards: ShardMode::Auto,
        }
    }
}

/// Outcome of a convergence run.
///
/// `PartialEq` so determinism tests can compare whole reports: a replay of
/// the same `(topology, seed, plan)` must produce an identical one.
#[derive(Clone, PartialEq, Debug)]
pub struct RunReport {
    /// Whether the dataplane went quiet before `max_sim_time`.
    /// (Equivalent to `verdict.is_converged()`; kept for callers that only
    /// need the boolean.)
    pub converged: bool,
    /// The watchdog's full verdict: converged, oscillating (with the
    /// detected flap period and churning prefixes), or timed out.
    pub verdict: ConvergenceVerdict,
    /// When the last pod became Ready (emulation startup complete).
    pub boot_complete_at: Option<SimTime>,
    /// Time of the last dataplane change — the convergence instant.
    pub converged_at: SimTime,
    /// Control-plane messages delivered.
    pub messages_delivered: u64,
    /// Routing-process crashes observed.
    pub crashes: u64,
    /// Work items processed: heap events plus demand-driven wake polls.
    /// Link-flap notifications are replicated into both endpoint shards,
    /// so chaos-heavy runs count slightly more items than the single-heap
    /// engine did — identically so at every thread count.
    pub events_processed: u64,
    /// Events pushed onto the priority queues. Under demand-driven polling
    /// wake requests never enter a heap, so this counts only real work
    /// (deliveries, boot completions, restarts, chaos) — the engine's
    /// scheduling-cost metric tracked by the bench rig.
    pub events_scheduled: u64,
    /// Pods that could not be scheduled.
    pub unschedulable: Vec<Unschedulable>,
    /// Sim-time span per run phase (`boot`/`flood`/`converge`). Derived
    /// from sim state only, so replays compare equal; wall-clock twins live
    /// in the engine's [`Obs`] export, never here.
    pub phases: SimPhases,
}

/// Per-link canonical state plus the interned endpoints.
struct LinkRecord {
    id: LinkId,
    a: (NodeRef, mfv_types::IfaceRef),
    b: (NodeRef, mfv_types::IfaceRef),
    up: bool,
}

/// A coordinator-timeline entry: chaos that must fire at an exact global
/// instant, applied at a window boundary cut to that instant.
enum GlobalAction {
    Link { slot: Option<usize>, up: bool },
    Kill(Option<NodeRef>),
    FailMachine(String),
}

/// Changes a prefix needs within the recent window to count as oscillating.
const OSCILLATION_MIN_CHANGES: usize = 4;

/// Coordinator-owned mutable state: everything the barrier logic touches
/// that is not inside a [`Shard`] or the read-only [`Net`].
struct Global {
    cfg: EmulationConfig,
    cluster: Cluster,
    /// Dedicated stream for boot/reschedule jitter, independent of shard
    /// message jitter so placement is a pure function of `(seed, topology)`.
    cluster_rng: ChaCha8Rng,
    node_total: usize,
    ext_total: usize,
    links: Vec<LinkRecord>,
    link_index: BTreeMap<LinkId, usize>,
    /// Chaos instants, keyed `(time, insertion order)` so same-instant
    /// entries apply in plan order.
    timeline: BTreeMap<(SimTime, u64), GlobalAction>,
    timeline_ord: u64,
    /// Sequence counter for coordinator-originated events (origin 0).
    oseq: u64,
    chaos_pending: usize,
    /// Chaos replicas injected into shards; quiescence requires every one
    /// processed (`Σ shard.chaos_processed` catches up) — a fault applied
    /// to the canonical state but not yet felt by its shard is in flight.
    chaos_injected: u64,
    /// Scheduled-but-unfired PodReady instants per node (the coordinator
    /// schedules every one itself, so boot completion is detected at exact
    /// sim instants regardless of shard layout). A node evicted by a
    /// machine failure keeps any already-scheduled future instant — the
    /// stale event still boots a fresh router, as it did on one heap.
    pending_ready: BTreeMap<NodeRef, BTreeSet<SimTime>>,
    /// Mirror of the shards' ready marks.
    ready: BTreeSet<NodeRef>,
    now: SimTime,
    /// Latest processed event instant across all shards (the "how far did
    /// the run actually get" clock used by the oscillation post-mortem).
    t_max: SimTime,
    booted: bool,
    boot_complete_at: Option<SimTime>,
    feeds_done_at: Option<SimTime>,
    ext_done_count: usize,
    /// Instant the most recent external feed finished draining.
    last_ext_done: SimTime,
    /// Whether the steady-state churn gate has been announced to the
    /// shards. Once boot and feed flooding are both complete, each shard
    /// gets `churn_from` and folds its own change records inside its
    /// windows; the coordinator never gathers churn at a barrier again.
    churn_gate_set: bool,
    unschedulable: Vec<Unschedulable>,
    tally: EventTally,
    events_scheduled: u64,
    events_processed: u64,
    last_activity: SimTime,
    journal: Journal,
    phases: SimPhases,
    wall: WallSection,
    /// Conservative lookahead `W` in ms: min cross-shard link latency,
    /// capped at the 2 ms BGP floor. Latencies are clamped ≥ 1 at build.
    lookahead_ms: u64,
}

/// The running emulation.
pub struct Emulation {
    pub topology: Topology,
    net: Net,
    shards: Vec<Shard>,
    glob: Global,
}

/// What the coordinator decided at a barrier.
enum Plan {
    /// Run one window: per-shard exclusive end instants.
    Run(Vec<SimTime>),
    /// Quiescent for a full quiet period before anything else is due.
    Converged(SimTime),
    /// No work within the deadline (and not provably converged).
    Done,
}

/// Wall-clock phase-split tracking for `run_until_converged`.
struct WallProgress {
    timer: WallTimer,
    mark: u64,
    boot_done: bool,
    flood_done: bool,
}

impl Emulation {
    /// Prepares an emulation: validates the topology, parses every config
    /// in its vendor dialect (reporting config errors up front, as the real
    /// bring-up would), and builds the interned id space and link tables.
    pub fn new(
        topology: Topology,
        cluster: Cluster,
        cfg: EmulationConfig,
    ) -> Result<Emulation, String> {
        topology.validate()?;
        let mut interner = mfv_types::Interner::new();
        // Sorted interning: NodeRef order == name order, which keeps
        // ref-ordered iteration identical to the old BTreeMap<NodeId> walk.
        let mut names: Vec<&NodeId> = topology.nodes.iter().map(|n| &n.name).collect();
        names.sort();
        for name in names {
            interner.intern_node(name);
        }
        let mut parsed_configs: Vec<Option<mfv_config::Parsed>> =
            (0..interner.node_count()).map(|_| None).collect();
        for node in &topology.nodes {
            let parsed = node
                .parse_config()
                .map_err(|e| format!("config for {}: {e}", node.name))?;
            if let Some(r) = interner.resolve_node(&node.name) {
                if let Some(slot) = parsed_configs.get_mut(r.index()) {
                    *slot = Some(parsed);
                }
            }
        }
        let parsed_configs: Vec<mfv_config::Parsed> = parsed_configs
            .into_iter()
            .map(|p| p.ok_or_else(|| "node config missing after parse".to_string()))
            .collect::<Result<_, _>>()?;
        let mut ends = BTreeMap::new();
        let mut links = Vec::with_capacity(topology.links.len());
        let mut link_index = BTreeMap::new();
        for l in &topology.links {
            let an = interner.intern_node(&l.a_node);
            let ai = interner.intern_iface(&l.a_iface);
            let bn = interner.intern_node(&l.b_node);
            let bi = interner.intern_iface(&l.b_iface);
            let slot = links.len();
            // Latency clamp ≥ 1 ms: a zero-latency link would let one
            // shard's output land in another shard's current instant,
            // collapsing the conservative lookahead to zero.
            let latency_ms = l.latency_ms.max(1);
            ends.insert(
                (an, ai),
                crate::shard::EndInfo {
                    peer: bn,
                    peer_iface: bi,
                    latency_ms,
                    link_slot: slot,
                },
            );
            ends.insert(
                (bn, bi),
                crate::shard::EndInfo {
                    peer: an,
                    peer_iface: ai,
                    latency_ms,
                    link_slot: slot,
                },
            );
            link_index.insert(l.id(), slot);
            links.push(LinkRecord {
                id: l.id(),
                a: (an, ai),
                b: (bn, bi),
                up: true,
            });
        }
        // Vendor profiles with overrides pre-applied, and the static BGP
        // endpoint-address table. Addresses come from parsed configs (what
        // `VirtualRouter::addresses` reports after boot), so ownership
        // never depends on boot order; segments to a not-yet-booted node
        // are dropped at delivery instead of at send.
        let mut profiles = Vec::with_capacity(interner.node_count());
        let mut ip_owner: BTreeMap<Ipv4Addr, Owner> = BTreeMap::new();
        for r in interner.node_refs() {
            let name = interner.node(r).cloned();
            let vendor = name
                .as_ref()
                .and_then(|n| topology.node(n))
                .map(|s| s.vendor);
            let profile = name
                .as_ref()
                .and_then(|n| cfg.profile_overrides.get(n).cloned())
                .or_else(|| vendor.map(VendorProfile::for_vendor))
                .unwrap_or_else(|| VendorProfile::for_vendor(mfv_config::Vendor::Ceos));
            profiles.push(profile);
            if let Some(parsed) = parsed_configs.get(r.index()) {
                for iface in parsed.config.interfaces.iter().filter(|i| i.is_l3()) {
                    if let Some(a) = iface.addr {
                        ip_owner.insert(a.addr, Owner::Node(r));
                    }
                }
            }
        }
        let node_total = topology.nodes.len();
        let seed = cfg.seed;
        let cluster_rng = ChaCha8Rng::seed_from_u64(stream_seed(seed, 0x3000_0000));
        let net = Net {
            interner,
            profiles,
            parsed_configs,
            ends,
            link_ends: links.iter().map(|l| (l.a, l.b)).collect(),
            ip_owner,
            node_shard: Vec::new(),
            ext_shard: Vec::new(),
            seed,
            auto_restart: cfg.auto_restart_crashed,
            impairments: Vec::new(),
            link_impair: vec![Vec::new(); links.len()],
            pair_impair: BTreeMap::new(),
        };
        let glob = Global {
            cfg,
            cluster,
            cluster_rng,
            node_total,
            ext_total: 0,
            links,
            link_index,
            timeline: BTreeMap::new(),
            timeline_ord: 0,
            oseq: 0,
            chaos_pending: 0,
            chaos_injected: 0,
            pending_ready: BTreeMap::new(),
            ready: BTreeSet::new(),
            now: SimTime::ZERO,
            t_max: SimTime::ZERO,
            booted: false,
            boot_complete_at: None,
            feeds_done_at: None,
            ext_done_count: 0,
            last_ext_done: SimTime::ZERO,
            churn_gate_set: false,
            unschedulable: Vec::new(),
            tally: EventTally::default(),
            events_scheduled: 0,
            events_processed: 0,
            last_activity: SimTime::ZERO,
            journal: Journal::new(),
            phases: SimPhases::new(),
            wall: WallSection::new(),
            lookahead_ms: 2,
        };
        Ok(Emulation {
            topology,
            net,
            shards: Vec::new(),
            glob,
        })
    }

    pub fn now(&self) -> SimTime {
        self.glob.now
    }

    fn shard_of(&self, node: NodeRef) -> Option<usize> {
        self.net.node_shard.get(node.index()).copied()
    }

    pub fn router(&self, node: &NodeId) -> Option<&VirtualRouter> {
        let r = self.net.interner.resolve_node(node)?;
        let sid = self.shard_of(r)?;
        self.shards.get(sid)?.routers.get(r.index())?.as_ref()
    }

    /// Runs an operator CLI command on a node (SSH-to-the-emulated-router).
    pub fn cli(&self, node: &NodeId, command: &str) -> Option<String> {
        self.router(node)
            .map(|r| mfv_vrouter::cli::exec(r, command))
    }

    /// Submits all pods to the cluster, cuts the shard partition from the
    /// resulting placement, builds the shards, and wires external peers.
    /// Called implicitly by the run entry points.
    fn boot(&mut self) {
        if self.glob.booted {
            return;
        }
        self.glob.booted = true;
        let node_count = self.net.interner.node_count();
        // Schedule every pod; remember which machine each landed on.
        let mut machine_of: Vec<Option<String>> = vec![None; node_count];
        for i in 0..self.topology.nodes.len() {
            let name = self.topology.nodes[i].name.clone();
            let Some(node_ref) = self.net.interner.resolve_node(&name) else {
                continue;
            };
            let Some(profile) = self.net.profiles.get(node_ref.index()).cloned() else {
                continue;
            };
            let req = PodRequest {
                pod: name,
                cpu_millis: profile.cpu_millis,
                mem_mib: profile.mem_mib,
            };
            match self.glob.cluster.schedule(
                &req,
                self.glob.now,
                profile.boot_time,
                &mut self.glob.cluster_rng,
            ) {
                Ok(placement) => {
                    machine_of[node_ref.index()] = Some(placement.machine.clone());
                    self.glob
                        .pending_ready
                        .entry(node_ref)
                        .or_default()
                        .insert(placement.ready_at);
                }
                Err(e) => {
                    self.glob.unschedulable.push(e);
                }
            }
        }
        // Cut the partition.
        let node_shard: Vec<usize> = match self.glob.cfg.shards {
            ShardMode::Fixed(n) => {
                let n = n.clamp(1, node_count.max(1));
                let per = node_count.div_ceil(n).max(1);
                (0..node_count).map(|i| (i / per).min(n - 1)).collect()
            }
            ShardMode::Auto => {
                let mut shard_of_machine: BTreeMap<String, usize> = BTreeMap::new();
                for (name, pods) in self.glob.cluster.packing() {
                    if pods > 0 {
                        let next = shard_of_machine.len();
                        shard_of_machine.entry(name).or_insert(next);
                    }
                }
                (0..node_count)
                    .map(|i| {
                        machine_of[i]
                            .as_ref()
                            .and_then(|m| shard_of_machine.get(m))
                            .copied()
                            .unwrap_or(0)
                    })
                    .collect()
            }
        };
        let shard_count = node_shard.iter().copied().max().map(|m| m + 1).unwrap_or(1);
        self.net.node_shard = node_shard;
        // Lookahead: min latency over links whose endpoints live in
        // different shards, capped by the 2 ms BGP segment floor (iBGP
        // sessions may connect any two routers regardless of links).
        let mut lookahead = 2u64;
        for rec in &self.glob.links {
            let sa = self.net.node_shard.get(rec.a.0.index()).copied();
            let sb = self.net.node_shard.get(rec.b.0.index()).copied();
            if sa != sb {
                if let Some(end) = self.net.ends.get(&rec.a) {
                    lookahead = lookahead.min(end.latency_ms);
                }
            }
        }
        self.glob.lookahead_ms = lookahead.max(1);
        self.glob.ext_total = self.topology.external_peers.len();
        self.net.ext_shard = self
            .topology
            .external_peers
            .iter()
            .map(|spec| {
                self.net
                    .interner
                    .resolve_node(&spec.attach_to)
                    .and_then(|r| self.net.node_shard.get(r.index()))
                    .copied()
                    .unwrap_or(0)
            })
            .collect();
        // Build shards (each copies the canonical link state — operator
        // `set_link` calls may precede boot).
        let link_state: Vec<bool> = self.glob.links.iter().map(|l| l.up).collect();
        self.shards = (0..shard_count)
            .map(|id| Shard::new(id, &self.net, link_state.clone()))
            .collect();
        // Inject boot events.
        let pending: Vec<(NodeRef, SimTime)> = self
            .glob
            .pending_ready
            .iter()
            .flat_map(|(&n, etas)| etas.iter().map(move |&e| (n, e)))
            .collect();
        for (node, eta) in pending {
            self.inject_global(node, eta, EventKind::PodReady(node));
        }
        // External peers.
        for idx in 0..self.topology.external_peers.len() {
            let (addr, asn, attach_to, base_octet, route_count) = {
                let spec = &self.topology.external_peers[idx];
                (
                    spec.addr,
                    spec.asn,
                    spec.attach_to.clone(),
                    spec.base_octet,
                    spec.route_count,
                )
            };
            // The router-side address: the attach node's interface on the
            // peer's subnet. Resolved from the config parsed at `new()`.
            let router_addr = self
                .net
                .interner
                .resolve_node(&attach_to)
                .and_then(|r| self.net.parsed_configs.get(r.index()))
                .and_then(|parsed| {
                    parsed
                        .config
                        .interfaces
                        .iter()
                        .filter(|i| i.is_l3())
                        .filter_map(|i| i.addr)
                        .find(|a| a.subnet().contains(addr))
                        .map(|a| a.addr)
                })
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            let base = base_octet.unwrap_or(20 + idx as u8);
            let routes = synthetic_prefixes(base, route_count);
            let peer = ExternalPeer::new(addr, asn, router_addr, routes);
            // Router addresses win collisions, as they did when routers
            // re-registered over external entries at boot.
            self.net
                .ip_owner
                .entry(addr)
                .or_insert(Owner::External(idx));
            let sid = self.net.ext_shard.get(idx).copied().unwrap_or(0);
            if let Some(shard) = self.shards.get_mut(sid) {
                shard.install_external(idx, peer);
            }
        }
        // Feeds that were born drained count as done immediately.
        for shard in &mut self.shards {
            for (_idx, t) in shard.take_ext_done_transitions() {
                self.glob.ext_done_count += 1;
                self.glob.last_ext_done = self.glob.last_ext_done.max(t);
            }
        }
        if !self.glob.cfg.inject_after_boot {
            for shard in &mut self.shards {
                shard.activate_feeds(SimTime(1_000));
            }
        }
        // Chaos schedule: expand the plan into the coordinator timeline up
        // front so the whole fault timeline is part of the deterministic
        // window structure.
        let plan = self.glob.cfg.chaos.clone();
        expand_chaos(&mut self.glob, &mut self.net, plan);
    }

    /// Schedules a coordinator-originated event into a node's shard.
    fn inject_global(&mut self, node: NodeRef, at: SimTime, kind: EventKind) {
        let Some(sid) = self.net.node_shard.get(node.index()).copied() else {
            return;
        };
        self.glob.oseq += 1;
        self.glob.events_scheduled += 1;
        let ev = Ev {
            key: EvKey {
                time: at,
                origin: GLOBAL_ORIGIN,
                oseq: self.glob.oseq,
            },
            kind,
        };
        if let Some(shard) = self.shards.get_mut(sid) {
            shard.inject(ev);
        }
    }

    /// Injects a chaos schedule into a running emulation. Before boot the
    /// plan is folded into the configured one; after boot it expands into
    /// timeline entries immediately (instants already in the past fire at
    /// `now`). Used by the continuous-verification loop to start faulting
    /// only once the initial convergence is done.
    pub fn schedule_chaos(&mut self, plan: &ChaosPlan) {
        if !self.glob.booted {
            self.glob
                .cfg
                .chaos
                .events
                .extend(plan.events.iter().cloned());
            return;
        }
        expand_chaos(&mut self.glob, &mut self.net, plan.clone());
    }

    /// Advances virtual time to exactly `deadline`, processing every work
    /// item due on the way, with none of the convergence machinery: no
    /// quiet-period fast-forward, no watchdog, no phase bookkeeping. The
    /// continuous-verification tick loop drives the steady-state emulation
    /// with this — chaos events fire, routers reconverge, and the clock
    /// lands on `deadline` even when the network is idle (so telemetry
    /// stamps and backoff timers keep moving). Returns the number of work
    /// items processed during this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.boot();
        let before = self.total_processed();
        {
            let Emulation {
                ref net,
                ref mut shards,
                ref mut glob,
                ..
            } = *self;
            drive(glob, net, shards, deadline, false, None);
        }
        for shard in &mut self.shards {
            shard.advance_clock(deadline);
        }
        self.glob.now = self.glob.now.max(deadline);
        self.total_processed() - before
    }

    fn total_processed(&self) -> u64 {
        self.glob.events_processed + self.shards.iter().map(|s| s.events_processed).sum::<u64>()
    }

    /// Runs the emulation until the dataplane is quiet (or the time cap),
    /// and renders the watchdog's [`ConvergenceVerdict`]: a quiet spell
    /// only counts once every scheduled fault has fired, and a run that
    /// exhausts its budget is post-mortemed for oscillation.
    pub fn run_until_converged(&mut self) -> RunReport {
        // Wall-clock phase splits. The sim-time twins are derived from
        // `boot_complete_at`/`feeds_done_at` below; only these wall marks
        // touch the real clock, and they land in the quarantined wall
        // section of the obs export.
        let mut wp = WallProgress {
            timer: WallTimer::start(),
            mark: 0,
            boot_done: self.glob.boot_complete_at.is_some(),
            flood_done: self.glob.feeds_done_at.is_some(),
        };
        self.boot();
        let deadline = SimTime(self.glob.cfg.max_sim_time.as_millis());
        let converged = {
            let Emulation {
                ref net,
                ref mut shards,
                ref mut glob,
                ..
            } = *self;
            drive(glob, net, shards, deadline, true, Some(&mut wp))
        };
        self.glob.now = self.glob.now.max(self.glob.t_max);
        self.glob.wall.add_phase(
            "converge",
            wp.timer.elapsed_micros().saturating_sub(wp.mark),
        );
        let last_activity = self.fold_last_activity();
        let verdict = if converged {
            ConvergenceVerdict::Converged
        } else {
            oscillation_verdict(&self.glob, &self.shards)
        };
        // Sim-time spans mirror the wall splits, derived purely from sim
        // state so replays produce identical reports.
        if let Some(boot_at) = self.glob.boot_complete_at {
            self.glob.phases.record("boot", SimTime::ZERO, boot_at);
            let converge_from = match self.glob.feeds_done_at {
                Some(flood_at) => {
                    self.glob.phases.record("flood", boot_at, flood_at);
                    flood_at
                }
                None => boot_at,
            };
            self.glob
                .phases
                .record("converge", converge_from, last_activity.max(converge_from));
        }
        RunReport {
            converged,
            verdict,
            boot_complete_at: self.glob.boot_complete_at,
            converged_at: last_activity,
            messages_delivered: self.shards.iter().map(|s| s.messages_delivered).sum(),
            crashes: self.shards.iter().map(|s| s.crashes).sum(),
            events_processed: self.total_processed(),
            events_scheduled: self.glob.events_scheduled
                + self.shards.iter().map(|s| s.events_scheduled).sum::<u64>(),
            unschedulable: self.glob.unschedulable.clone(),
            phases: self.glob.phases.clone(),
        }
    }

    fn fold_last_activity(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.last_activity)
            .fold(self.glob.last_activity, |a, b| a.max(b))
    }

    /// Applies a configuration change to a running node (config push) and
    /// returns immediately; call `run_until_converged` to settle.
    pub fn push_config(&mut self, node: &NodeId, text: &str) -> Result<(), String> {
        let spec = self
            .topology
            .nodes
            .iter_mut()
            .find(|n| &n.name == node)
            .ok_or_else(|| format!("unknown node {node}"))?;
        let vendor = spec.vendor;
        let parsed = mfv_config::parse(vendor, text).map_err(|e| e.to_string())?;
        spec.config_text = text.to_string();
        let Some(node_ref) = self.net.interner.resolve_node(node) else {
            return Ok(());
        };
        let now = self.glob.now;
        let Some(sid) = self.net.node_shard.get(node_ref.index()).copied() else {
            return Ok(());
        };
        let Some(shard) = self.shards.get_mut(sid) else {
            return Ok(());
        };
        shard.advance_clock(now);
        if let Some(router) = shard
            .routers
            .get_mut(node_ref.index())
            .and_then(|s| s.as_mut())
        {
            router.apply_config(parsed.config);
            for addr in router.addresses() {
                self.net.ip_owner.insert(addr, Owner::Node(node_ref));
            }
            shard.last_activity = shard.last_activity.max(now);
            shard.schedule_poll(node_ref, SimTime(now.0 + 1));
            self.glob.last_activity = self.glob.last_activity.max(now);
        }
        Ok(())
    }

    /// Brings a link up or down (failure injection). Unknown links are
    /// ignored.
    pub fn set_link(&mut self, link: &LinkId, up: bool) {
        let Some(&slot) = self.glob.link_index.get(link) else {
            return;
        };
        let now = self.glob.now;
        let mut sids: Vec<usize> = Vec::new();
        if let Some(rec) = self.glob.links.get_mut(slot) {
            rec.up = up;
            for (node, _) in [rec.a, rec.b] {
                if let Some(&sid) = self.net.node_shard.get(node.index()) {
                    if !sids.contains(&sid) {
                        sids.push(sid);
                    }
                }
            }
        }
        for sid in sids {
            if let Some(shard) = self.shards.get_mut(sid) {
                shard.advance_clock(now);
                shard.apply_link(&self.net, slot, up);
            }
        }
        self.glob.last_activity = self.glob.last_activity.max(now);
    }

    /// Administratively shuts a BGP session on a node.
    pub fn shutdown_bgp(&mut self, node: &NodeId, peer: Ipv4Addr) {
        let Some(node_ref) = self.net.interner.resolve_node(node) else {
            return;
        };
        let Some(sid) = self.net.node_shard.get(node_ref.index()).copied() else {
            return;
        };
        let now = self.glob.now;
        let Some(shard) = self.shards.get_mut(sid) else {
            return;
        };
        shard.advance_clock(now);
        if let Some(router) = shard
            .routers
            .get_mut(node_ref.index())
            .and_then(|s| s.as_mut())
        {
            router.shutdown_bgp_session(peer, now);
            shard.last_activity = shard.last_activity.max(now);
            shard.schedule_poll(node_ref, SimTime(now.0 + 1));
            self.glob.last_activity = self.glob.last_activity.max(now);
        }
    }

    /// Extracts the current dataplane snapshot (the AFT dump step).
    /// `NodeRef` order is name order, so the walk matches the old
    /// string-keyed map's iteration byte for byte — at any shard layout.
    pub fn dataplane(&self) -> Dataplane {
        let mut dp = Dataplane::new();
        for r in self.net.interner.node_refs() {
            let Some(router) = self
                .shard_of(r)
                .and_then(|sid| self.shards.get(sid))
                .and_then(|s| s.routers.get(r.index()))
                .and_then(|slot| slot.as_ref())
            else {
                continue;
            };
            let Some(name) = self.net.interner.node(r) else {
                continue;
            };
            dp.add_node(
                name.clone(),
                router.fib(),
                router.addresses(),
                router.is_running(),
            );
        }
        for rec in &self.glob.links {
            if rec.up {
                dp.add_link(rec.id.clone());
            }
        }
        dp
    }

    /// The merged steady-state churn tracker: per prefix, the retained
    /// dataplane-change instants. The merge is order-independent, so this
    /// dump is byte-identical across thread counts for the same run —
    /// determinism tests digest it alongside the dataplane.
    pub fn churn_dump(&self) -> BTreeMap<Prefix, Vec<SimTime>> {
        merge_churn(self.shards.iter().map(|s| &s.churn))
            .into_iter()
            .map(|(p, q)| (p, q.into_iter().collect()))
            .collect()
    }

    /// Current cluster packing (pods per machine).
    pub fn cluster_packing(&self) -> Vec<(String, usize)> {
        self.glob.cluster.packing()
    }

    /// The number of shards the partition produced (0 before boot).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Flushes the engine's plain-field counters — plus per-router
    /// aggregates from every live [`VirtualRouter`] — into an [`Obs`]
    /// snapshot. Per-shard state merges in shard-index order (journals by
    /// `(time, shard, local order)`), so everything except the `wall`
    /// section is derived from sim state only and two same-seed runs export
    /// byte-identical `to_json(false)` dumps at any thread count.
    pub fn export_obs(&self) -> Obs {
        let mut obs = Obs::new();
        let mut tally = self.glob.tally;
        for s in &self.shards {
            tally.absorb(&s.tally);
        }
        let m = &mut obs.metrics;
        m.inc("engine.events.pod_ready", tally.pod_ready);
        m.inc("engine.events.deliver_isis", tally.deliver_isis);
        m.inc("engine.events.deliver_bgp", tally.deliver_bgp);
        m.inc("engine.events.deliver_external", tally.deliver_external);
        m.inc("engine.events.restart_router", tally.restart_router);
        m.inc("engine.events.chaos_link", tally.chaos_link);
        m.inc("engine.events.chaos_kill", tally.chaos_kill);
        m.inc("engine.events.chaos_fail_machine", tally.chaos_fail_machine);
        m.inc(
            "engine.events.scheduled",
            self.glob.events_scheduled
                + self.shards.iter().map(|s| s.events_scheduled).sum::<u64>(),
        );
        m.inc("engine.events.processed", self.total_processed());
        m.inc(
            "engine.messages.delivered",
            self.shards.iter().map(|s| s.messages_delivered).sum(),
        );
        m.inc(
            "engine.crashes",
            self.shards.iter().map(|s| s.crashes).sum(),
        );
        m.inc("engine.polls.router", tally.router_polls);
        m.inc("engine.polls.external", tally.ext_polls);
        m.inc("engine.impair.dropped", tally.impair_dropped);
        m.inc("engine.impair.duplicated", tally.impair_duplicated);
        m.inc("engine.encode_errors", tally.encode_errors);
        m.gauge("engine.nodes", self.topology.nodes.len() as i64);
        m.gauge("engine.links", self.glob.links.len() as i64);
        m.gauge("engine.unschedulable", self.glob.unschedulable.len() as i64);
        m.gauge("engine.shards", self.shards.len() as i64);
        for s in &self.shards {
            m.merge_hist("engine.wake_depth", &s.wake_depth);
        }

        // Per-router aggregates (routers evicted by machine failures or
        // not yet booted contribute nothing). Walk in NodeRef order.
        let mut decode_errors = 0u64;
        let mut encode_errors = 0u64;
        let mut rib_resyncs = 0u64;
        let mut full_refreshes = 0u64;
        let mut fib_patches = 0u64;
        let mut bgp_transitions = 0u64;
        let mut isis_transitions = 0u64;
        let mut running = 0i64;
        for r in self.net.interner.node_refs() {
            let Some(router) = self
                .shard_of(r)
                .and_then(|sid| self.shards.get(sid))
                .and_then(|s| s.routers.get(r.index()))
                .and_then(|slot| slot.as_ref())
            else {
                continue;
            };
            decode_errors += router.decode_errors;
            encode_errors += router.encode_errors;
            rib_resyncs += router.rib_resyncs;
            full_refreshes += router.full_fib_refreshes;
            fib_patches += router.fib_patches;
            bgp_transitions += router.bgp_session_transitions();
            isis_transitions += router.isis_adjacency_transitions();
            if router.is_running() {
                running += 1;
            }
        }
        m.inc("vrouter.decode_errors", decode_errors);
        m.inc("vrouter.encode_errors", encode_errors);
        m.inc("vrouter.rib.resyncs", rib_resyncs);
        m.inc("vrouter.fib.full_refreshes", full_refreshes);
        m.inc("vrouter.fib.patches", fib_patches);
        m.inc("vrouter.bgp.session_transitions", bgp_transitions);
        m.inc("vrouter.isis.adjacency_transitions", isis_transitions);
        m.gauge("vrouter.running", running);

        obs.phases = self.glob.phases.clone();
        obs.journal = self.merged_journal();
        obs.wall = self.glob.wall.clone();
        obs
    }

    /// Interleaves the coordinator journal and every shard journal into
    /// one ring, ordered by `(time, source rank, local order)` — the
    /// coordinator (chaos, boot milestones) ranks before shards at the
    /// same instant, matching heap order where coordinator-origin events
    /// sort first.
    fn merged_journal(&self) -> Journal {
        let mut entries: Vec<(SimTime, usize, usize, &mfv_obs::journal::Event)> = Vec::new();
        for (idx, e) in self.glob.journal.events().enumerate() {
            entries.push((e.at, 0, idx, e));
        }
        for (sid, s) in self.shards.iter().enumerate() {
            for (idx, e) in s.journal.events().enumerate() {
                entries.push((e.at, sid + 1, idx, e));
            }
        }
        entries.sort_by_key(|(at, rank, idx, _)| (*at, *rank, *idx));
        let mut out = Journal::new();
        for (_, _, _, e) in entries {
            out.push(e.at, e.kind, e.detail.clone());
        }
        out
    }
}

/// Expands a [`ChaosPlan`] into coordinator timeline entries and
/// impairment windows. Link/node targets resolve to slots/refs here, once.
fn expand_chaos(glob: &mut Global, net: &mut Net, plan: ChaosPlan) {
    let insert = |glob: &mut Global, at: SimTime, action: GlobalAction| {
        glob.timeline_ord += 1;
        let ord = glob.timeline_ord;
        glob.timeline.insert((at, ord), action);
    };
    for ev in plan.events {
        match ev {
            ChaosEvent::LinkFlap {
                link,
                at,
                down_for,
                repeats,
                every,
            } => {
                let slot = glob.link_index.get(&link).copied();
                for k in 0..repeats as u64 {
                    // `.max(now)` keeps late-scheduled plans legal: an
                    // instant already in the past fires immediately
                    // instead of rewinding the clock. At boot `now` is
                    // zero, so pre-run plans expand exactly as authored.
                    let down_at = (at + every.saturating_mul(k)).max(glob.now);
                    glob.chaos_pending += 2;
                    insert(glob, down_at, GlobalAction::Link { slot, up: false });
                    insert(
                        glob,
                        down_at + down_for,
                        GlobalAction::Link { slot, up: true },
                    );
                }
            }
            ChaosEvent::KillRouting { node, at } => {
                glob.chaos_pending += 1;
                let target = net.interner.resolve_node(&node);
                insert(glob, at.max(glob.now), GlobalAction::Kill(target));
            }
            ChaosEvent::FailMachine { machine, at } => {
                glob.chaos_pending += 1;
                insert(glob, at.max(glob.now), GlobalAction::FailMachine(machine));
            }
            ChaosEvent::Impair {
                link,
                from,
                until,
                spec,
            } => {
                let w = net.impairments.len();
                if let Some(&slot) = glob.link_index.get(&link) {
                    if let Some(v) = net.link_impair.get_mut(slot) {
                        v.push(w);
                    }
                }
                // BGP impairment matches by node pair even when the
                // LinkId's interfaces don't name a physical link.
                if let (Some(a), Some(b)) = (
                    net.interner.resolve_node(&link.a.0),
                    net.interner.resolve_node(&link.b.0),
                ) {
                    let key = if a <= b { (a, b) } else { (b, a) };
                    net.pair_impair.entry(key).or_default().push(w);
                }
                net.impairments.push(ImpairWindow { from, until, spec });
            }
        }
    }
}

/// The watchdog's post-mortem when the time budget expires: prefixes that
/// kept changing right up to the end mean the network is *oscillating*,
/// not converging slowly.
fn oscillation_verdict(glob: &Global, shards: &[Shard]) -> ConvergenceVerdict {
    let window = glob.cfg.quiet_period.saturating_mul(4);
    let now = glob.now;
    let churn = merge_churn(shards.iter().map(|s| &s.churn));
    let mut churning: Vec<(&Prefix, &VecDeque<SimTime>)> = churn
        .iter()
        .filter(|(_, q)| {
            q.len() >= OSCILLATION_MIN_CHANGES
                && q.back().map(|t| now.since(*t) <= window).unwrap_or(false)
        })
        .collect();
    if churning.is_empty() {
        return ConvergenceVerdict::TimedOut;
    }
    // Flap period: mean inter-change interval of the most-churning prefix
    // (ties broken by prefix order — deterministic).
    churning.sort_by_key(|(p, q)| (std::cmp::Reverse(q.len()), **p));
    let period = match churning.first() {
        Some((_, q)) => match (q.front(), q.back()) {
            (Some(first), Some(last)) => SimDuration::from_millis(
                last.since(*first).as_millis() / (q.len() as u64 - 1).max(1),
            ),
            _ => SimDuration::ZERO,
        },
        None => SimDuration::ZERO,
    };
    let mut prefixes: Vec<Prefix> = churning.iter().map(|(p, _)| **p).collect();
    prefixes.sort();
    prefixes.truncate(ConvergenceVerdict::MAX_REPORTED_PREFIXES);
    ConvergenceVerdict::Oscillating { period, prefixes }
}

/// Worker commands for the persistent window pool.
#[derive(Clone, Copy)]
enum Cmd {
    Window,
    Stop,
}

/// Runs the window loop to `deadline`. Returns whether the run converged
/// (always `false` when `converge` is off — `run_until` has no watchdog).
fn drive(
    glob: &mut Global,
    net: &Net,
    shards: &mut [Shard],
    deadline: SimTime,
    converge: bool,
    mut wall: Option<&mut WallProgress>,
) -> bool {
    if shards.is_empty() {
        return false;
    }
    let threads = effective_threads(glob.cfg.threads, shards.len());
    let cells: Vec<Mutex<&mut Shard>> = shards.iter_mut().map(Mutex::new).collect();
    if threads <= 1 {
        loop {
            match plan(glob, net, &cells, deadline, converge) {
                Plan::Run(ends) => {
                    for (i, cell) in cells.iter().enumerate() {
                        let end = ends.get(i).copied().unwrap_or(SimTime::ZERO);
                        lock_or_recover(cell).run_window(net, end);
                    }
                    settle(glob, net, &cells, &ends, deadline);
                    if let Some(wp) = wall.as_deref_mut() {
                        mark_wall(glob, wp);
                    }
                }
                Plan::Converged(at) => {
                    glob.now = glob.now.max(at);
                    return true;
                }
                Plan::Done => return false,
            }
        }
    }
    // Persistent worker pool: one command + two barriers per dispatched
    // window. Workers take shards round-robin by index; shard state lives
    // behind per-shard mutexes that are only ever locked by one side of a
    // barrier at a time.
    let cmd: Mutex<Cmd> = Mutex::new(Cmd::Window);
    let ends_shared: Mutex<Vec<SimTime>> = Mutex::new(Vec::new());
    let start = Barrier::new(threads + 1);
    let finish = Barrier::new(threads + 1);
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let cells_ref = &cells;
    with_workers(
        threads,
        |w| loop {
            start.wait();
            let c = *lock_or_recover(&cmd);
            match c {
                Cmd::Stop => break,
                Cmd::Window => {
                    let ends: Vec<SimTime> = lock_or_recover(&ends_shared).clone();
                    // A panic is confined to this window and reported at
                    // the barrier — the worker must always reach it, or
                    // the coordinator would deadlock.
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        for i in (w..cells_ref.len()).step_by(threads) {
                            let end = ends.get(i).copied().unwrap_or(SimTime::ZERO);
                            lock_or_recover(&cells_ref[i]).run_window(net, end);
                        }
                    }));
                    if let Err(p) = r {
                        lock_or_recover(&panics).push((w, panic_message(p)));
                    }
                    finish.wait();
                }
            }
        },
        || {
            let lead = catch_unwind(AssertUnwindSafe(|| loop {
                match plan(glob, net, cells_ref, deadline, converge) {
                    Plan::Run(ends) => {
                        // Fast path: when only one shard has due work in
                        // this window, run it inline — no barrier round
                        // trip for the whole pool.
                        let mut active = 0usize;
                        let mut only = 0usize;
                        for (i, cell) in cells_ref.iter().enumerate() {
                            let due = lock_or_recover(cell).next_due();
                            let end = ends.get(i).copied().unwrap_or(SimTime::ZERO);
                            if due.map(|d| d < end).unwrap_or(false) {
                                active += 1;
                                only = i;
                            }
                        }
                        if active <= 1 {
                            if active == 1 {
                                let end = ends.get(only).copied().unwrap_or(SimTime::ZERO);
                                lock_or_recover(&cells_ref[only]).run_window(net, end);
                            }
                        } else {
                            *lock_or_recover(&ends_shared) = ends.clone();
                            *lock_or_recover(&cmd) = Cmd::Window;
                            start.wait();
                            finish.wait();
                            let mut p = std::mem::take(&mut *lock_or_recover(&panics));
                            if !p.is_empty() {
                                p.sort_by_key(|e| e.0);
                                let msg: Vec<String> =
                                    p.iter().map(|(w, m)| format!("[worker {w}] {m}")).collect();
                                panic!("shard window panicked: {}", msg.join("; "));
                            }
                        }
                        settle(glob, net, cells_ref, &ends, deadline);
                        if let Some(wp) = wall.as_deref_mut() {
                            mark_wall(glob, wp);
                        }
                    }
                    Plan::Converged(at) => {
                        glob.now = glob.now.max(at);
                        break true;
                    }
                    Plan::Done => break false,
                }
            }));
            // Release the pool no matter how the loop ended; a lead panic
            // must not leave workers parked on the start barrier.
            *lock_or_recover(&cmd) = Cmd::Stop;
            start.wait();
            match lead {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            }
        },
    )
}

/// One coordinator barrier: fire due timeline actions, decide convergence,
/// or plan the next window's per-shard end instants.
fn plan(
    glob: &mut Global,
    net: &Net,
    cells: &[Mutex<&mut Shard>],
    deadline: SimTime,
    converge: bool,
) -> Plan {
    loop {
        let mut dues: Vec<Option<SimTime>> = Vec::with_capacity(cells.len());
        let mut last_act = glob.last_activity;
        let mut pending_restarts = 0usize;
        let mut chaos_done = 0u64;
        for cell in cells {
            let s = lock_or_recover(cell);
            dues.push(s.next_due());
            last_act = last_act.max(s.last_activity);
            pending_restarts += s.pending_restarts;
            chaos_done += s.chaos_processed;
        }
        let shard_due = dues.iter().flatten().min().copied();
        let glob_due = glob.timeline.keys().next().map(|&(t, _)| t);
        let t = [shard_due, glob_due].into_iter().flatten().min();
        if converge {
            // The quiet rule is a pure function of processed content
            // (activity times, readiness, feed/chaos state) and the next
            // due instant — never of the window structure — so every
            // layout and thread count reaches the same verdict.
            let quiescent = glob.ready.len()
                == glob.node_total.saturating_sub(glob.unschedulable.len())
                && glob.ext_done_count == glob.ext_total
                && pending_restarts == 0
                && glob.chaos_pending == 0
                && glob.chaos_injected == chaos_done;
            let quiet_at = last_act + glob.cfg.quiet_period;
            if quiescent && quiet_at <= deadline && t.map(|t| quiet_at < t).unwrap_or(true) {
                return Plan::Converged(quiet_at);
            }
        }
        let Some(t) = t else {
            return Plan::Done;
        };
        if t > deadline {
            return Plan::Done;
        }
        if glob_due == Some(t) {
            // Fire every timeline action at exactly `t` (in plan order)
            // before any shard event at `t` — coordinator-origin events
            // sort first within the heaps, so replicas injected here still
            // precede same-instant traffic.
            for cell in cells {
                lock_or_recover(cell).advance_clock(t);
            }
            while let Some((&(ti, ord), _)) = glob.timeline.iter().next() {
                if ti != t {
                    break;
                }
                if let Some(action) = glob.timeline.remove(&(ti, ord)) {
                    apply_global(glob, net, cells, t, action);
                }
            }
            glob.t_max = glob.t_max.max(t);
            continue; // injections/evictions changed the due picture
        }
        // Window ends. Shard i may run while every event it could receive
        // is still in the future: arrivals from shard j happen no earlier
        // than due_j + W.
        let w = glob.lookahead_ms;
        let next_glob = glob_due.map(|g| g.0).unwrap_or(u64::MAX);
        let boot_cut = if glob.boot_complete_at.is_none() {
            glob.pending_ready
                .values()
                .filter_map(|etas| etas.iter().next())
                .min()
                .map(|e| e.0.saturating_add(1))
                .unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        // In converge mode, stop at the earliest possible convergence
        // instant so a converged run doesn't burn sim-time to the cap.
        let quiet_cut = if converge {
            (last_act + glob.cfg.quiet_period).0.saturating_add(1)
        } else {
            u64::MAX
        };
        let hard = deadline
            .0
            .saturating_add(1)
            .min(next_glob)
            .min(boot_cut)
            .min(quiet_cut)
            .max(t.0.saturating_add(1)); // always admit the due instant
        let single = cells.len() == 1;
        let ends: Vec<SimTime> = (0..cells.len())
            .map(|i| {
                let others = dues
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .filter_map(|(_, d)| *d)
                    .min();
                let e = if single {
                    u64::MAX
                } else {
                    others.map(|o| o.0.saturating_add(w)).unwrap_or(u64::MAX)
                };
                SimTime(e.min(hard))
            })
            .collect();
        return Plan::Run(ends);
    }
}

/// Applies one timeline action at instant `t` (every shard clock is
/// already advanced to `t`).
fn apply_global(
    glob: &mut Global,
    net: &Net,
    cells: &[Mutex<&mut Shard>],
    t: SimTime,
    action: GlobalAction,
) {
    glob.events_processed += 1;
    let inject = |glob: &mut Global, sid: usize, at: SimTime, kind: EventKind| {
        glob.oseq += 1;
        glob.events_scheduled += 1;
        let ev = Ev {
            key: EvKey {
                time: at,
                origin: GLOBAL_ORIGIN,
                oseq: glob.oseq,
            },
            kind,
        };
        if let Some(cell) = cells.get(sid) {
            lock_or_recover(cell).inject(ev);
        }
    };
    match action {
        GlobalAction::Link { slot, up } => {
            glob.tally.chaos_link += 1;
            glob.chaos_pending = glob.chaos_pending.saturating_sub(1);
            // Unknown links (slot None) are inert.
            let Some(slot) = slot else { return };
            let kind = if up {
                "chaos.link_up"
            } else {
                "chaos.link_down"
            };
            let detail = glob
                .links
                .get(slot)
                .map(|r| r.id.to_string())
                .unwrap_or_default();
            glob.journal.push(t, kind, detail);
            let mut sids: Vec<usize> = Vec::new();
            if let Some(rec) = glob.links.get_mut(slot) {
                rec.up = up;
                for (node, _) in [rec.a, rec.b] {
                    if let Some(&sid) = net.node_shard.get(node.index()) {
                        if !sids.contains(&sid) {
                            sids.push(sid);
                        }
                    }
                }
            }
            // Replicate to the endpoint shards: each updates its local
            // link-state copy and pokes its local endpoint router(s).
            for sid in sids {
                glob.chaos_injected += 1;
                inject(glob, sid, t, EventKind::ChaosLink { slot, up });
            }
        }
        GlobalAction::Kill(node) => {
            glob.chaos_pending = glob.chaos_pending.saturating_sub(1);
            match node {
                // Unknown node: inert, but still tallied as fired.
                None => glob.tally.chaos_kill += 1,
                Some(node) => {
                    if let Some(&sid) = net.node_shard.get(node.index()) {
                        glob.chaos_injected += 1;
                        inject(glob, sid, t, EventKind::ChaosKillRouter(node));
                    } else {
                        glob.tally.chaos_kill += 1;
                    }
                }
            }
        }
        GlobalAction::FailMachine(name) => {
            glob.tally.chaos_fail_machine += 1;
            glob.chaos_pending = glob.chaos_pending.saturating_sub(1);
            let evicted = glob.cluster.fail_machine(&name);
            glob.journal.push(
                t,
                "chaos.fail_machine",
                format!("{name}: {} pods evicted", evicted.len()),
            );
            for req in evicted {
                // The pod (and its router) is gone; the scheduler
                // resubmits it onto surviving machines, and the usual
                // PodReady path boots a fresh instance — in the node's
                // original shard (the partition is a simulation artifact
                // cut once at boot).
                let Some(node) = net.interner.resolve_node(&req.pod) else {
                    continue;
                };
                let Some(&sid) = net.node_shard.get(node.index()) else {
                    continue;
                };
                if let Some(cell) = cells.get(sid) {
                    lock_or_recover(cell).evict_node(node, t);
                }
                glob.ready.remove(&node);
                glob.last_activity = glob.last_activity.max(t);
                let Some(profile) = net.profiles.get(node.index()).cloned() else {
                    continue;
                };
                match glob
                    .cluster
                    .schedule(&req, t, profile.boot_time, &mut glob.cluster_rng)
                {
                    Ok(placement) => {
                        glob.pending_ready
                            .entry(node)
                            .or_default()
                            .insert(placement.ready_at);
                        inject(glob, sid, placement.ready_at, EventKind::PodReady(node));
                    }
                    Err(e) => {
                        glob.unschedulable.push(e);
                    }
                }
            }
        }
    }
}

/// Post-window barrier work: route cross-shard traffic, fold shard-local
/// facts (activity, churn, feed completion, boot readiness) into the
/// coordinator's content-determined global view.
fn settle(
    glob: &mut Global,
    net: &Net,
    cells: &[Mutex<&mut Shard>],
    ends: &[SimTime],
    deadline: SimTime,
) {
    let mut inbox: Vec<(usize, Ev)> = Vec::new();
    let mut transitions: Vec<(usize, SimTime)> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let mut s = lock_or_recover(cell);
        glob.t_max = glob.t_max.max(s.now());
        glob.last_activity = glob.last_activity.max(s.last_activity);
        inbox.append(&mut s.outbox);
        transitions.extend(s.take_ext_done_transitions());
        let end = ends.get(i).copied().unwrap_or(SimTime::ZERO);
        s.advance_clock(SimTime(end.0.min(deadline.0)));
    }
    // Cross-shard deliveries: injection order is irrelevant — event keys
    // are globally unique, so each destination heap reaches the same total
    // order no matter which thread produced what first.
    for (dest, ev) in inbox {
        if let Some(cell) = cells.get(dest) {
            lock_or_recover(cell).inject(ev);
        }
    }
    transitions.sort();
    for (_idx, done_at) in transitions {
        glob.ext_done_count += 1;
        glob.last_ext_done = glob.last_ext_done.max(done_at);
    }
    // Boot readiness: every scheduled PodReady instant inside its shard's
    // processed horizon has fired. Mark in (instant, node) order so boot
    // completion lands on the exact completing instant.
    let mut fired: Vec<(SimTime, NodeRef)> = Vec::new();
    for (&node, etas) in glob.pending_ready.iter_mut() {
        let sid = net.node_shard.get(node.index()).copied().unwrap_or(0);
        let end = ends.get(sid).copied().unwrap_or(SimTime::ZERO);
        let (done, still): (BTreeSet<SimTime>, BTreeSet<SimTime>) =
            etas.iter().partition(|e| **e < end);
        for e in done {
            fired.push((e, node));
        }
        *etas = still;
    }
    glob.pending_ready.retain(|_, etas| !etas.is_empty());
    fired.sort();
    for (eta, node) in fired {
        glob.ready.insert(node);
        if glob.ready.len() == glob.node_total && glob.boot_complete_at.is_none() {
            glob.boot_complete_at = Some(eta);
            glob.journal.push(
                eta,
                "engine.boot_complete",
                format!("{} pods ready", glob.ready.len()),
            );
            if glob.cfg.inject_after_boot {
                let at = SimTime(eta.0 + 1_000);
                for cell in cells {
                    lock_or_recover(cell).activate_feeds(at);
                }
            }
        }
    }
    // Flood completion: the exact instant the last feed drained (clamped
    // to boot completion, which gates activation in the first place).
    if glob.boot_complete_at.is_some()
        && glob.feeds_done_at.is_none()
        && glob.ext_total > 0
        && glob.ext_done_count == glob.ext_total
    {
        if let Some(boot_at) = glob.boot_complete_at {
            let at = boot_at.max(glob.last_ext_done);
            glob.feeds_done_at = Some(at);
            glob.journal
                .push(at, "engine.flood_complete", "external feeds drained");
        }
    }
    // Steady-state churn gate. Until boot and feed flooding both complete,
    // buffered change records are pre-convergence noise — dropped here, as
    // before. The barrier that first knows the steady instant announces it
    // to every shard and folds the detection window's records (which may
    // already contain steady-state changes); from then on each shard folds
    // its own records in parallel at its window end, and this barrier does
    // no per-window churn work at all.
    if !glob.churn_gate_set {
        match glob.boot_complete_at {
            Some(boot_at) if glob.ext_done_count == glob.ext_total => {
                let steady = boot_at.max(glob.last_ext_done);
                glob.churn_gate_set = true;
                for cell in cells {
                    let mut s = lock_or_recover(cell);
                    s.churn_from = Some(steady);
                    s.fold_churn();
                }
            }
            _ => {
                for cell in cells {
                    lock_or_recover(cell).churn_buf.clear();
                }
            }
        }
    }
}

/// Merges the per-shard bounded churn trackers into one global view at the
/// post-mortem. Order-independent by construction: every record carries its
/// `(instant, node)` stamp, all records for a prefix are re-sorted and
/// re-capped to the last [`CHURN_HISTORY`], and the prefix cap keeps the
/// first [`CHURN_PREFIX_CAP`] prefixes in address order — so shard
/// iteration order (and therefore layout and thread count) cannot affect
/// the result. Per-shard truncation composes exactly: a record a shard
/// dropped had ≥ `CHURN_HISTORY` newer records in that shard alone, so it
/// could never survive the merged cap either.
fn merge_churn<'a>(
    shards: impl IntoIterator<Item = &'a BTreeMap<Prefix, VecDeque<(SimTime, u32)>>>,
) -> BTreeMap<Prefix, VecDeque<SimTime>> {
    let mut gathered: BTreeMap<Prefix, Vec<(SimTime, u32)>> = BTreeMap::new();
    for churn in shards {
        for (p, q) in churn {
            gathered.entry(*p).or_default().extend(q.iter().copied());
        }
    }
    gathered
        .into_iter()
        .take(CHURN_PREFIX_CAP)
        .map(|(p, mut recs)| {
            recs.sort_unstable();
            let skip = recs.len().saturating_sub(CHURN_HISTORY);
            (p, recs.into_iter().skip(skip).map(|(at, _)| at).collect())
        })
        .collect()
}

/// Wall-clock phase splits for `run_until_converged`, checked after each
/// barrier (the only reader of the real clock; lands in the quarantined
/// `wall` obs section).
fn mark_wall(glob: &mut Global, wp: &mut WallProgress) {
    if !wp.boot_done && glob.boot_complete_at.is_some() {
        wp.boot_done = true;
        let us = wp.timer.elapsed_micros();
        glob.wall.add_phase("boot", us.saturating_sub(wp.mark));
        wp.mark = us;
    }
    if wp.boot_done && !wp.flood_done && glob.feeds_done_at.is_some() {
        wp.flood_done = true;
        let us = wp.timer.elapsed_micros();
        glob.wall.add_phase("flood", us.saturating_sub(wp.mark));
        wp.mark = us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, node: u32) -> (SimTime, u32) {
        (SimTime(ms), node)
    }

    /// The post-mortem merge must be a pure function of the per-shard
    /// tracker *contents*: shard order, record interleaving, and how the
    /// records were split across shards cannot change the result.
    #[test]
    fn churn_merge_is_order_independent() {
        let p1 = Prefix::from_bits(u32::from(std::net::Ipv4Addr::new(10, 0, 0, 0)), 24);
        let p2 = Prefix::from_bits(u32::from(std::net::Ipv4Addr::new(10, 0, 1, 0)), 24);
        let mut a: BTreeMap<Prefix, VecDeque<(SimTime, u32)>> = BTreeMap::new();
        a.entry(p1).or_default().extend([rec(100, 0), rec(300, 0)]);
        a.entry(p2).or_default().extend([rec(150, 1)]);
        let mut b: BTreeMap<Prefix, VecDeque<(SimTime, u32)>> = BTreeMap::new();
        b.entry(p1).or_default().extend([rec(200, 2), rec(400, 2)]);

        let fwd = merge_churn([&a, &b]);
        let rev = merge_churn([&b, &a]);
        assert_eq!(fwd, rev);
        assert_eq!(
            fwd.get(&p1).map(|q| q.iter().copied().collect::<Vec<_>>()),
            Some(vec![SimTime(100), SimTime(200), SimTime(300), SimTime(400)]),
            "records interleave by instant across shards"
        );

        // Per-shard history truncation composes with the merged cap: a
        // record a shard dropped can never reappear in the merged last-N.
        let mut big: BTreeMap<Prefix, VecDeque<(SimTime, u32)>> = BTreeMap::new();
        let q = big.entry(p1).or_default();
        for i in 0..CHURN_HISTORY as u64 {
            q.push_back(rec(1_000 + i, 3));
        }
        let merged = merge_churn([&a, &b, &big]);
        let kept = merged.get(&p1).map(|q| q.len()).unwrap_or(0);
        assert_eq!(kept, CHURN_HISTORY);
        assert_eq!(
            merged.get(&p1).and_then(|q| q.front().copied()),
            Some(SimTime(1_000)),
            "oldest survivors are the globally newest CHURN_HISTORY records"
        );
    }
}
