//! The discrete-event emulation engine — the workspace's stand-in for KNE.
//!
//! Owns the virtual routers, the simulated cluster that boots them, the
//! links between them, and the external route-injection peers. Runs on
//! virtual time with seeded per-link jitter: a given `(topology, seed)` pair
//! replays identically, and different seeds reorder message arrivals — which
//! is exactly the non-determinism surface §6 of the paper discusses.
//!
//! # Hot-path layout
//!
//! All per-message state is keyed on interned `Copy` handles
//! ([`NodeRef`]/[`IfaceRef`], built once from the topology at
//! [`Emulation::new`]) rather than string `NodeId`/`IfaceId` pairs, so
//! dispatching an event clones no strings. Polling is *demand-driven*:
//! routers are woken only when a delivery lands, a protocol timer expires,
//! or an operator/chaos action touches them. Wake requests live in ordered
//! sets (`wake`/`ext_wake`) with one canonical entry per entity — never on
//! the event heap — so the heap carries only real work (deliveries, boot
//! completions, chaos) and total scheduled events drop from
//! O(nodes × sim-time) to O(messages + timers).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::net::Ipv4Addr;

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mfv_dataplane::Dataplane;
use mfv_obs::{Hist, Journal, Obs, SimPhases, WallSection, WallTimer};
use mfv_types::{IfaceRef, Interner, LinkId, NodeId, NodeRef, Prefix, SimDuration, SimTime};
use mfv_vrouter::{RouterEvent, VendorProfile, VirtualRouter};

use crate::chaos::{ChaosEvent, ChaosPlan, ConvergenceVerdict, ImpairSpec};
use crate::cluster::{Cluster, PodRequest, Unschedulable};
use crate::inject::{synthetic_prefixes, ExternalPeer};
use crate::topology::Topology;

/// Emulation tuning knobs.
#[derive(Clone, Debug)]
pub struct EmulationConfig {
    /// Seed for boot jitter and link jitter.
    pub seed: u64,
    /// Dataplane quiescence window for convergence detection ("we detect
    /// convergence to be complete once we observe the dataplane to
    /// stabilize at all routers", §5).
    pub quiet_period: SimDuration,
    /// Hard stop for a run.
    pub max_sim_time: SimDuration,
    /// Restart crashed routing processes after their vendor restart delay.
    pub auto_restart_crashed: bool,
    /// Per-node vendor profile overrides (bug injection).
    pub profile_overrides: BTreeMap<NodeId, VendorProfile>,
    /// Start external route feeds only once every pod is Ready — the
    /// paper's E5 measurement applies configuration and injection to an
    /// already-booted replica.
    pub inject_after_boot: bool,
    /// Scheduled fault injection. The default (empty) plan is a fault-free
    /// run; see [`ChaosPlan`] for what can be scheduled. Events referencing
    /// unknown links/nodes/machines are inert.
    pub chaos: ChaosPlan,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            seed: 1,
            quiet_period: SimDuration::from_secs(12),
            max_sim_time: SimDuration::from_mins(60),
            auto_restart_crashed: true,
            profile_overrides: BTreeMap::new(),
            inject_after_boot: true,
            chaos: ChaosPlan::default(),
        }
    }
}

/// Outcome of a convergence run.
///
/// `PartialEq` so determinism tests can compare whole reports: a replay of
/// the same `(topology, seed, plan)` must produce an identical one.
#[derive(Clone, PartialEq, Debug)]
pub struct RunReport {
    /// Whether the dataplane went quiet before `max_sim_time`.
    /// (Equivalent to `verdict.is_converged()`; kept for callers that only
    /// need the boolean.)
    pub converged: bool,
    /// The watchdog's full verdict: converged, oscillating (with the
    /// detected flap period and churning prefixes), or timed out.
    pub verdict: ConvergenceVerdict,
    /// When the last pod became Ready (emulation startup complete).
    pub boot_complete_at: Option<SimTime>,
    /// Time of the last dataplane change — the convergence instant.
    pub converged_at: SimTime,
    /// Control-plane messages delivered.
    pub messages_delivered: u64,
    /// Routing-process crashes observed.
    pub crashes: u64,
    /// Work items processed: heap events plus demand-driven wake polls.
    pub events_processed: u64,
    /// Events pushed onto the priority queue. Under demand-driven polling
    /// wake requests never enter the heap, so this counts only real work
    /// (deliveries, boot completions, restarts, chaos) — the engine's
    /// scheduling-cost metric tracked by the bench rig.
    pub events_scheduled: u64,
    /// Pods that could not be scheduled.
    pub unschedulable: Vec<Unschedulable>,
    /// Sim-time span per run phase (`boot`/`flood`/`converge`). Derived
    /// from sim state only, so replays compare equal; wall-clock twins live
    /// in the engine's [`Obs`] export, never here.
    pub phases: SimPhases,
}

#[derive(Debug)]
enum EventKind {
    PodReady(NodeRef),
    DeliverIsis {
        node: NodeRef,
        iface: IfaceRef,
        payload: Bytes,
    },
    DeliverBgp {
        node: NodeRef,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Bytes,
    },
    DeliverToExternal {
        idx: usize,
        payload: Bytes,
    },
    RestartRouter(NodeRef),
    /// `slot` is the pre-resolved link index; `None` (unknown link) is
    /// inert but still consumes its `chaos_pending` slot.
    ChaosLink {
        slot: Option<usize>,
        up: bool,
    },
    ChaosKillRouter(Option<NodeRef>),
    ChaosFailMachine(String),
}

struct Ev {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// What a single scheduler step did.
enum StepOutcome {
    /// One work item was processed; the clock sits on its instant.
    Stepped,
    /// All three queues are empty — nothing will ever happen again.
    Idle,
    /// The earliest pending item is past the deadline; nothing was done.
    Deferred,
}

/// Who owns a BGP endpoint address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Owner {
    Node(NodeRef),
    External(usize),
}

/// One directed end of a link: everything delivery needs, resolved once.
#[derive(Clone, Copy, Debug)]
struct EndInfo {
    peer: NodeRef,
    peer_iface: IfaceRef,
    latency_ms: u64,
    link_slot: usize,
}

/// Per-link state plus the interned endpoints (for router notification).
struct LinkRecord {
    id: LinkId,
    a: (NodeRef, IfaceRef),
    b: (NodeRef, IfaceRef),
    up: bool,
}

/// One chaos message-impairment window.
struct ImpairWindow {
    from: SimTime,
    until: SimTime,
    spec: ImpairSpec,
}

/// Plain-field execution counters, one per [`EventKind`] plus the
/// impairment and poll tallies — bumped on the hot path, flushed into the
/// metrics registry only at [`Emulation::export_obs`].
#[derive(Clone, Copy, Default, Debug)]
struct EventTally {
    pod_ready: u64,
    deliver_isis: u64,
    deliver_bgp: u64,
    deliver_external: u64,
    restart_router: u64,
    chaos_link: u64,
    chaos_kill: u64,
    chaos_fail_machine: u64,
    router_polls: u64,
    ext_polls: u64,
    impair_dropped: u64,
    impair_duplicated: u64,
    encode_errors: u64,
}

/// The running emulation.
pub struct Emulation {
    pub topology: Topology,
    cfg: EmulationConfig,
    cluster: Cluster,
    /// Topology names → dense `Copy` refs. Nodes are interned in sorted
    /// order, so iterating `NodeRef`s visits nodes in name order — public
    /// snapshots stay byte-identical to the string-keyed engine.
    interner: Interner,
    /// Indexed by `NodeRef`; `None` until the pod boots (or after its
    /// machine fails).
    routers: Vec<Option<VirtualRouter>>,
    ready_at: Vec<Option<SimTime>>,
    ready_count: usize,
    externals: Vec<ExternalPeer>,
    events: BinaryHeap<Reverse<Ev>>,
    /// Demand-driven router wake requests: at most one `(time, node)` entry
    /// per node, mirrored in `next_poll`. Never on the heap.
    wake: BTreeSet<(SimTime, NodeRef)>,
    next_poll: Vec<Option<SimTime>>,
    /// Same scheme for external peers.
    ext_wake: BTreeSet<(SimTime, usize)>,
    ext_next: Vec<Option<SimTime>>,
    now: SimTime,
    seq: u64,
    rng: ChaCha8Rng,
    /// addr → owning entity, for BGP segment delivery.
    ip_owner: BTreeMap<Ipv4Addr, Owner>,
    /// Directed link ends, pre-resolved at `new()`.
    ends: BTreeMap<(NodeRef, IfaceRef), EndInfo>,
    links: Vec<LinkRecord>,
    link_index: BTreeMap<LinkId, usize>,
    last_activity: SimTime,
    boot_complete_at: Option<SimTime>,
    messages_delivered: u64,
    crashes: u64,
    events_processed: u64,
    events_scheduled: u64,
    unschedulable: Vec<Unschedulable>,
    booted: bool,
    pending_restarts: usize,
    /// External feeds are inert until activated (at boot completion when
    /// `inject_after_boot`, else immediately).
    feeds_active: bool,
    /// FIFO clocks: jitter may delay but never reorder messages between the
    /// same endpoints (BGP runs over TCP; IS-IS links preserve order).
    /// Cross-flow ordering still varies by seed — the non-determinism §6
    /// actually has.
    bgp_flow_clock: BTreeMap<(Ipv4Addr, Ipv4Addr), SimTime>,
    isis_link_clock: BTreeMap<(NodeRef, IfaceRef), SimTime>,
    /// Chaos events scheduled but not yet handled; convergence must wait
    /// for zero, or a quiet spell before a scheduled fault would be
    /// declared final.
    chaos_pending: usize,
    /// Active message-impairment windows from the chaos plan, with indexes
    /// by link slot and by (normalized) node pair so the per-message lookup
    /// scans only the windows that can possibly apply.
    impairments: Vec<ImpairWindow>,
    link_impair: Vec<Vec<usize>>,
    pair_impair: BTreeMap<(NodeRef, NodeRef), Vec<usize>>,
    /// Recent per-prefix dataplane-change timestamps (recorded once boot
    /// and injection are done), bounded in both axes. The watchdog reads
    /// this at the deadline to distinguish oscillation from slow progress.
    churn: BTreeMap<Prefix, VecDeque<SimTime>>,
    /// Per-node configs parsed once at [`Emulation::new`] (indexed by
    /// `NodeRef`); every later consumer (boot wiring, pod bring-up,
    /// crash-restart) reads from here instead of re-parsing.
    parsed_configs: Vec<mfv_config::Parsed>,
    /// Per-event-kind execution counters (observability).
    tally: EventTally,
    /// Wake-set depth sampled once per main-loop iteration.
    wake_depth: Hist,
    /// Low-frequency structured events: chaos injections, crashes,
    /// restarts, phase boundaries — never per-message.
    journal: Journal,
    /// When all external feeds finished injecting (flood-phase end).
    feeds_done_at: Option<SimTime>,
    /// Sim-time phase spans, rebuilt at the end of each run.
    phases: SimPhases,
    /// Wall-clock phase splits (quarantined from the deterministic dump).
    wall: WallSection,
}

/// Most prefixes tracked by the churn watchdog; arrivals past the cap are
/// ignored (deterministically) to bound memory at production-feed scale.
const CHURN_PREFIX_CAP: usize = 4096;
/// Change timestamps retained per prefix.
const CHURN_HISTORY: usize = 8;
/// Changes a prefix needs within the recent window to count as oscillating.
const OSCILLATION_MIN_CHANGES: usize = 4;

impl Emulation {
    /// Prepares an emulation: validates the topology, parses every config
    /// in its vendor dialect (reporting config errors up front, as the real
    /// bring-up would), and builds the interned id space and link tables.
    pub fn new(
        topology: Topology,
        cluster: Cluster,
        cfg: EmulationConfig,
    ) -> Result<Emulation, String> {
        topology.validate()?;
        let mut interner = Interner::new();
        // Sorted interning: NodeRef order == name order, which keeps
        // ref-ordered iteration identical to the old BTreeMap<NodeId> walk.
        let mut names: Vec<&NodeId> = topology.nodes.iter().map(|n| &n.name).collect();
        names.sort();
        for name in names {
            interner.intern_node(name);
        }
        let mut parsed_configs: Vec<Option<mfv_config::Parsed>> =
            (0..interner.node_count()).map(|_| None).collect();
        for node in &topology.nodes {
            let parsed = node
                .parse_config()
                .map_err(|e| format!("config for {}: {e}", node.name))?;
            if let Some(r) = interner.resolve_node(&node.name) {
                if let Some(slot) = parsed_configs.get_mut(r.index()) {
                    *slot = Some(parsed);
                }
            }
        }
        let parsed_configs: Vec<mfv_config::Parsed> = parsed_configs
            .into_iter()
            .map(|p| p.ok_or_else(|| "node config missing after parse".to_string()))
            .collect::<Result<_, _>>()?;
        let mut ends = BTreeMap::new();
        let mut links = Vec::with_capacity(topology.links.len());
        let mut link_index = BTreeMap::new();
        for l in &topology.links {
            let an = interner.intern_node(&l.a_node);
            let ai = interner.intern_iface(&l.a_iface);
            let bn = interner.intern_node(&l.b_node);
            let bi = interner.intern_iface(&l.b_iface);
            let slot = links.len();
            ends.insert(
                (an, ai),
                EndInfo {
                    peer: bn,
                    peer_iface: bi,
                    latency_ms: l.latency_ms,
                    link_slot: slot,
                },
            );
            ends.insert(
                (bn, bi),
                EndInfo {
                    peer: an,
                    peer_iface: ai,
                    latency_ms: l.latency_ms,
                    link_slot: slot,
                },
            );
            link_index.insert(l.id(), slot);
            links.push(LinkRecord {
                id: l.id(),
                a: (an, ai),
                b: (bn, bi),
                up: true,
            });
        }
        let node_count = interner.node_count();
        let link_count = links.len();
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let feeds_active = !cfg.inject_after_boot;
        Ok(Emulation {
            topology,
            cfg,
            cluster,
            interner,
            routers: (0..node_count).map(|_| None).collect(),
            ready_at: vec![None; node_count],
            ready_count: 0,
            externals: Vec::new(),
            events: BinaryHeap::new(),
            wake: BTreeSet::new(),
            next_poll: vec![None; node_count],
            ext_wake: BTreeSet::new(),
            ext_next: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng,
            ip_owner: BTreeMap::new(),
            ends,
            links,
            link_index,
            last_activity: SimTime::ZERO,
            boot_complete_at: None,
            messages_delivered: 0,
            crashes: 0,
            events_processed: 0,
            events_scheduled: 0,
            unschedulable: Vec::new(),
            booted: false,
            pending_restarts: 0,
            feeds_active,
            bgp_flow_clock: BTreeMap::new(),
            isis_link_clock: BTreeMap::new(),
            chaos_pending: 0,
            impairments: Vec::new(),
            link_impair: vec![Vec::new(); link_count],
            pair_impair: BTreeMap::new(),
            churn: BTreeMap::new(),
            parsed_configs,
            tally: EventTally::default(),
            wake_depth: Hist::new(),
            journal: Journal::new(),
            feeds_done_at: None,
            phases: SimPhases::new(),
            wall: WallSection::new(),
        })
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn router(&self, node: &NodeId) -> Option<&VirtualRouter> {
        let r = self.interner.resolve_node(node)?;
        self.routers.get(r.index())?.as_ref()
    }

    /// Runs an operator CLI command on a node (SSH-to-the-emulated-router).
    pub fn cli(&self, node: &NodeId, command: &str) -> Option<String> {
        self.router(node)
            .map(|r| mfv_vrouter::cli::exec(r, command))
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events_scheduled += 1;
        self.events.push(Reverse(Ev {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// Requests a router wake at `at` (or keeps an earlier pending one).
    /// The wake set holds exactly one entry per node, so there are no stale
    /// poll events to suppress and nothing enters the heap.
    fn schedule_poll(&mut self, node: NodeRef, at: SimTime) {
        let at = at.max(self.now);
        match self.next_poll.get(node.index()).copied().flatten() {
            Some(t) if t <= at => return,
            Some(t) => {
                self.wake.remove(&(t, node));
            }
            None => {}
        }
        if let Some(slot) = self.next_poll.get_mut(node.index()) {
            *slot = Some(at);
            self.wake.insert((at, node));
        }
    }

    /// Drops any pending wake for `node` (eviction).
    fn clear_poll(&mut self, node: NodeRef) {
        if let Some(t) = self.next_poll.get_mut(node.index()).and_then(|s| s.take()) {
            self.wake.remove(&(t, node));
        }
    }

    /// Like `schedule_poll`, for external peers.
    fn schedule_ext_poll(&mut self, idx: usize, at: SimTime) {
        let at = at.max(self.now);
        match self.ext_next.get(idx).copied().flatten() {
            Some(t) if t <= at => return,
            Some(t) => {
                self.ext_wake.remove(&(t, idx));
            }
            None => {}
        }
        if let Some(slot) = self.ext_next.get_mut(idx) {
            *slot = Some(at);
            self.ext_wake.insert((at, idx));
        }
    }

    /// Submits all pods to the cluster and wires external peers. Called
    /// implicitly by `run_until_converged`.
    fn boot(&mut self) {
        if self.booted {
            return;
        }
        self.booted = true;
        for i in 0..self.topology.nodes.len() {
            let (name, vendor) = {
                let node = &self.topology.nodes[i];
                (node.name.clone(), node.vendor)
            };
            let Some(node_ref) = self.interner.resolve_node(&name) else {
                continue;
            };
            let profile = self
                .cfg
                .profile_overrides
                .get(&name)
                .cloned()
                .unwrap_or_else(|| VendorProfile::for_vendor(vendor));
            let req = PodRequest {
                pod: name,
                cpu_millis: profile.cpu_millis,
                mem_mib: profile.mem_mib,
            };
            match self
                .cluster
                .schedule(&req, self.now, profile.boot_time, &mut self.rng)
            {
                Ok(placement) => {
                    self.push_event(placement.ready_at, EventKind::PodReady(node_ref));
                }
                Err(e) => {
                    self.unschedulable.push(e);
                }
            }
        }
        for idx in 0..self.topology.external_peers.len() {
            let (addr, asn, attach_to, base_octet, route_count) = {
                let spec = &self.topology.external_peers[idx];
                (
                    spec.addr,
                    spec.asn,
                    spec.attach_to.clone(),
                    spec.base_octet,
                    spec.route_count,
                )
            };
            // The router-side address: the attach node's interface on the
            // peer's subnet. Resolved from the config parsed at `new()`.
            let router_addr = self
                .interner
                .resolve_node(&attach_to)
                .and_then(|r| self.parsed_configs.get(r.index()))
                .and_then(|parsed| {
                    parsed
                        .config
                        .interfaces
                        .iter()
                        .filter(|i| i.is_l3())
                        .filter_map(|i| i.addr)
                        .find(|a| a.subnet().contains(addr))
                        .map(|a| a.addr)
                })
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            let base = base_octet.unwrap_or(20 + idx as u8);
            let routes = synthetic_prefixes(base, route_count);
            let peer = ExternalPeer::new(addr, asn, router_addr, routes);
            self.ip_owner.insert(addr, Owner::External(idx));
            self.externals.push(peer);
            self.ext_next.push(None);
            if !self.cfg.inject_after_boot {
                self.schedule_ext_poll(idx, SimTime(self.now.0 + 1_000));
            }
        }
        // Chaos schedule: expand the plan into engine events up front so the
        // whole fault timeline is part of the deterministic event order.
        let plan = self.cfg.chaos.clone();
        self.expand_chaos(plan);
    }

    /// Injects a chaos schedule into a running emulation. Before boot the
    /// plan is folded into the configured one; after boot it expands into
    /// engine events immediately (instants already in the past fire at
    /// `now`). Used by the continuous-verification loop to start faulting
    /// only once the initial convergence is done.
    pub fn schedule_chaos(&mut self, plan: &ChaosPlan) {
        if !self.booted {
            self.cfg.chaos.events.extend(plan.events.iter().cloned());
            return;
        }
        self.expand_chaos(plan.clone());
    }

    /// Expands a [`ChaosPlan`] into heap events and impairment windows.
    /// Link/node targets resolve to slots/refs here, once.
    fn expand_chaos(&mut self, plan: ChaosPlan) {
        for ev in plan.events {
            match ev {
                ChaosEvent::LinkFlap {
                    link,
                    at,
                    down_for,
                    repeats,
                    every,
                } => {
                    let slot = self.link_index.get(&link).copied();
                    for k in 0..repeats as u64 {
                        // `.max(self.now)` keeps late-scheduled plans legal:
                        // an instant already in the past fires immediately
                        // instead of rewinding the clock. At boot `now` is
                        // zero, so pre-run plans expand exactly as authored.
                        let down_at = (at + every.saturating_mul(k)).max(self.now);
                        self.chaos_pending += 2;
                        self.push_event(down_at, EventKind::ChaosLink { slot, up: false });
                        self.push_event(
                            down_at + down_for,
                            EventKind::ChaosLink { slot, up: true },
                        );
                    }
                }
                ChaosEvent::KillRouting { node, at } => {
                    self.chaos_pending += 1;
                    let target = self.interner.resolve_node(&node);
                    self.push_event(at.max(self.now), EventKind::ChaosKillRouter(target));
                }
                ChaosEvent::FailMachine { machine, at } => {
                    self.chaos_pending += 1;
                    self.push_event(at.max(self.now), EventKind::ChaosFailMachine(machine));
                }
                ChaosEvent::Impair {
                    link,
                    from,
                    until,
                    spec,
                } => {
                    let w = self.impairments.len();
                    if let Some(&slot) = self.link_index.get(&link) {
                        if let Some(v) = self.link_impair.get_mut(slot) {
                            v.push(w);
                        }
                    }
                    // BGP impairment matches by node pair even when the
                    // LinkId's interfaces don't name a physical link.
                    if let (Some(a), Some(b)) = (
                        self.interner.resolve_node(&link.a.0),
                        self.interner.resolve_node(&link.b.0),
                    ) {
                        let key = if a <= b { (a, b) } else { (b, a) };
                        self.pair_impair.entry(key).or_default().push(w);
                    }
                    self.impairments.push(ImpairWindow { from, until, spec });
                }
            }
        }
    }

    fn register_addresses(&mut self, node: NodeRef) {
        if let Some(router) = self.routers.get(node.index()).and_then(|s| s.as_ref()) {
            for addr in router.addresses() {
                self.ip_owner.insert(addr, Owner::Node(node));
            }
        }
    }

    fn link_is_up(&self, node: NodeRef, iface: IfaceRef) -> bool {
        self.ends
            .get(&(node, iface))
            .and_then(|e| self.links.get(e.link_slot))
            .map(|l| l.up)
            .unwrap_or(false)
    }

    /// The active impairment window covering link `slot` right now, if any.
    /// Consults only the windows indexed to that link.
    fn impairment_for(&self, slot: usize) -> Option<ImpairSpec> {
        let now = self.now;
        self.link_impair
            .get(slot)?
            .iter()
            .filter_map(|&i| self.impairments.get(i))
            .find(|w| now >= w.from && now < w.until)
            .map(|w| w.spec)
    }

    /// Impairment for BGP traffic between two nodes: matched when an
    /// impaired link directly connects them (eBGP single-hop, or iBGP
    /// between adjacent routers). Multi-hop sessions crossing an impaired
    /// transit link are not modelled — impairment targets links, and we
    /// route no per-message paths here.
    fn bgp_impairment_for(&self, a: NodeRef, b: NodeRef) -> Option<ImpairSpec> {
        let now = self.now;
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_impair
            .get(&key)?
            .iter()
            .filter_map(|&i| self.impairments.get(i))
            .find(|w| now >= w.from && now < w.until)
            .map(|w| w.spec)
    }

    /// Applies an impairment's drop/duplicate draws; returns how many
    /// copies to deliver (0 = dropped). Draws come from the engine RNG, so
    /// impairment outcomes are part of the seed-deterministic replay.
    fn impaired_copies(&mut self, spec: Option<ImpairSpec>) -> u32 {
        let Some(spec) = spec else { return 1 };
        if spec.drop_pct > 0 && self.rng.gen_range(0..100u32) < spec.drop_pct as u32 {
            self.tally.impair_dropped += 1;
            return 0;
        }
        if spec.duplicate_pct > 0 && self.rng.gen_range(0..100u32) < spec.duplicate_pct as u32 {
            self.tally.impair_duplicated += 1;
            return 2;
        }
        1
    }

    /// Handles one router's output events.
    fn dispatch_router_events(&mut self, node: NodeRef, events: Vec<RouterEvent>) {
        for ev in events {
            match ev {
                RouterEvent::IsisFrame { iface, payload } => {
                    let Some(iface_ref) = self.interner.resolve_iface(&iface) else {
                        continue;
                    };
                    let key = (node, iface_ref);
                    let Some(end) = self.ends.get(&key).copied() else {
                        continue;
                    };
                    if !self.links.get(end.link_slot).map(|l| l.up).unwrap_or(false) {
                        continue;
                    }
                    let impair = self.impairment_for(end.link_slot);
                    let copies = self.impaired_copies(impair);
                    let extra = impair.map(|s| s.extra_delay_ms).unwrap_or(0);
                    for _ in 0..copies {
                        let jitter = self.rng.gen_range(0..3);
                        let mut at =
                            self.now + SimDuration::from_millis(end.latency_ms + jitter + extra);
                        let clock = self.isis_link_clock.entry(key).or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        self.push_event(
                            at,
                            EventKind::DeliverIsis {
                                node: end.peer,
                                iface: end.peer_iface,
                                payload: payload.clone(),
                            },
                        );
                    }
                }
                RouterEvent::BgpSegment { src, dst, payload } => {
                    let Some(&owner) = self.ip_owner.get(&dst) else {
                        continue; // addressed to nobody we know
                    };
                    let impair = match owner {
                        Owner::Node(peer) => self.bgp_impairment_for(node, peer),
                        Owner::External(_) => None,
                    };
                    let copies = self.impaired_copies(impair);
                    let extra = impair.map(|s| s.extra_delay_ms).unwrap_or(0);
                    for _ in 0..copies {
                        let jitter = self.rng.gen_range(0..3);
                        let mut at = self.now + SimDuration::from_millis(2 + jitter + extra);
                        let clock = self
                            .bgp_flow_clock
                            .entry((src, dst))
                            .or_insert(SimTime::ZERO);
                        at = at.max(SimTime(clock.0 + 1));
                        *clock = at;
                        match owner {
                            Owner::Node(peer) => self.push_event(
                                at,
                                EventKind::DeliverBgp {
                                    node: peer,
                                    src,
                                    dst,
                                    payload: payload.clone(),
                                },
                            ),
                            Owner::External(idx) => self.push_event(
                                at,
                                EventKind::DeliverToExternal {
                                    idx,
                                    payload: payload.clone(),
                                },
                            ),
                        }
                    }
                }
                RouterEvent::Crashed { reason } => {
                    self.crashes += 1;
                    self.last_activity = self.now;
                    let detail = match self.interner.node(node) {
                        Some(name) => format!("{name}: {reason}"),
                        None => reason,
                    };
                    self.journal.push(self.now, "engine.crash", detail);
                    if self.cfg.auto_restart_crashed {
                        let delay = self
                            .routers
                            .get(node.index())
                            .and_then(|s| s.as_ref())
                            .map(|r| r.profile().restart_delay)
                            .unwrap_or(SimDuration::from_secs(60));
                        self.pending_restarts += 1;
                        self.push_event(self.now + delay, EventKind::RestartRouter(node));
                    }
                }
            }
        }
    }

    fn poll_router(&mut self, node: NodeRef) {
        let now = self.now;
        self.tally.router_polls += 1;
        let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) else {
            return;
        };
        let v_before = router.fib_version();
        let events = router.poll(now);
        let v_after = router.fib_version();
        let wakeup = router.next_wakeup(now);
        let changed = router.take_changed_prefixes();
        if v_after != v_before {
            self.last_activity = now;
        }
        self.dispatch_router_events(node, events);
        if let Some(at) = wakeup {
            self.schedule_poll(node, at);
        }
        if !changed.is_empty() {
            self.record_churn(now, changed);
        }
    }

    fn poll_external(&mut self, idx: usize) {
        if !self.feeds_active {
            return;
        }
        let now = self.now;
        self.tally.ext_polls += 1;
        let Some(peer) = self.externals.get_mut(idx) else {
            return;
        };
        let msgs = peer.poll(now);
        let wakeup = peer.next_wakeup(now);
        let src = peer.addr;
        for (dst, msg) in msgs {
            // A message that exceeds a wire length field is dropped (and
            // counted) instead of truncated into a corrupt frame.
            let payload = match msg.encode() {
                Ok(p) => p,
                Err(_) => {
                    self.tally.encode_errors += 1;
                    continue;
                }
            };
            if let Some(&Owner::Node(node)) = self.ip_owner.get(&dst) {
                let jitter = self.rng.gen_range(0..3);
                let mut at = now + SimDuration::from_millis(2 + jitter);
                let clock = self
                    .bgp_flow_clock
                    .entry((src, dst))
                    .or_insert(SimTime::ZERO);
                at = at.max(SimTime(clock.0 + 1));
                *clock = at;
                self.push_event(
                    at,
                    EventKind::DeliverBgp {
                        node,
                        src,
                        dst,
                        payload,
                    },
                );
            }
        }
        self.schedule_ext_poll(idx, wakeup);
    }

    /// Records per-prefix change timestamps for the oscillation watchdog.
    /// Only steady-state churn matters (boot and feed injection legitimately
    /// touch every prefix), and both axes are capped so production-scale
    /// tables cannot blow up the tracker.
    fn record_churn(&mut self, now: SimTime, prefixes: BTreeSet<Prefix>) {
        if self.boot_complete_at.is_none() || !self.injection_done() {
            return;
        }
        for p in prefixes {
            if !self.churn.contains_key(&p) && self.churn.len() >= CHURN_PREFIX_CAP {
                continue;
            }
            let q = self.churn.entry(p).or_default();
            q.push_back(now);
            if q.len() > CHURN_HISTORY {
                q.pop_front();
            }
        }
    }

    /// The watchdog's post-mortem when the time budget expires: prefixes
    /// that kept changing right up to the end mean the network is
    /// *oscillating*, not converging slowly.
    fn oscillation_verdict(&self) -> ConvergenceVerdict {
        let window = self.cfg.quiet_period.saturating_mul(4);
        let now = self.now;
        let mut churning: Vec<(&Prefix, &VecDeque<SimTime>)> = self
            .churn
            .iter()
            .filter(|(_, q)| {
                q.len() >= OSCILLATION_MIN_CHANGES
                    && q.back().map(|t| now.since(*t) <= window).unwrap_or(false)
            })
            .collect();
        if churning.is_empty() {
            return ConvergenceVerdict::TimedOut;
        }
        // Flap period: mean inter-change interval of the most-churning
        // prefix (ties broken by prefix order — deterministic).
        churning.sort_by_key(|(p, q)| (std::cmp::Reverse(q.len()), **p));
        let period = match churning.first() {
            Some((_, q)) => match (q.front(), q.back()) {
                (Some(first), Some(last)) => SimDuration::from_millis(
                    last.since(*first).as_millis() / (q.len() as u64 - 1).max(1),
                ),
                _ => SimDuration::ZERO,
            },
            None => SimDuration::ZERO,
        };
        let mut prefixes: Vec<Prefix> = churning.iter().map(|(p, _)| **p).collect();
        prefixes.sort();
        prefixes.truncate(ConvergenceVerdict::MAX_REPORTED_PREFIXES);
        ConvergenceVerdict::Oscillating { period, prefixes }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::PodReady(node) => {
                self.tally.pod_ready += 1;
                // All lookups were populated at `new()` from the validated
                // topology; a miss means the event named an unknown node,
                // which is dropped rather than panicking mid-run.
                let Some(name) = self.interner.node(node).cloned() else {
                    return;
                };
                let Some(vendor) = self.topology.node(&name).map(|s| s.vendor) else {
                    return;
                };
                let Some(parsed) = self.parsed_configs.get(node.index()).cloned() else {
                    return;
                };
                let profile = self
                    .cfg
                    .profile_overrides
                    .get(&name)
                    .cloned()
                    .unwrap_or_else(|| VendorProfile::for_vendor(vendor));
                self.journal
                    .push(self.now, "engine.pod_ready", name.to_string());
                let router = VirtualRouter::new(name, profile, parsed.config);
                if let Some(slot) = self.routers.get_mut(node.index()) {
                    *slot = Some(router);
                }
                if let Some(slot) = self.ready_at.get_mut(node.index()) {
                    if slot.replace(self.now).is_none() {
                        self.ready_count += 1;
                    }
                }
                self.register_addresses(node);
                self.last_activity = self.now;
                if self.ready_count == self.topology.nodes.len() && self.boot_complete_at.is_none()
                {
                    self.boot_complete_at = Some(self.now);
                    self.journal.push(
                        self.now,
                        "engine.boot_complete",
                        format!("{} pods ready", self.ready_count),
                    );
                    if self.cfg.inject_after_boot {
                        self.feeds_active = true;
                        for idx in 0..self.externals.len() {
                            self.schedule_ext_poll(idx, SimTime(self.now.0 + 1_000));
                        }
                    }
                }
                self.schedule_poll(node, self.now);
            }
            EventKind::DeliverIsis {
                node,
                iface,
                payload,
            } => {
                self.tally.deliver_isis += 1;
                if !self.link_is_up(node, iface) {
                    return;
                }
                let now = self.now;
                let Some(iface_name) = self.interner.iface(iface) else {
                    return;
                };
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    router.push_isis(now, iface_name, payload);
                    self.messages_delivered += 1;
                    self.schedule_poll(node, SimTime(now.0 + 1));
                }
            }
            EventKind::DeliverBgp {
                node,
                src,
                dst,
                payload,
            } => {
                self.tally.deliver_bgp += 1;
                let now = self.now;
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    router.push_bgp(now, src, dst, payload);
                    self.messages_delivered += 1;
                    self.schedule_poll(node, SimTime(now.0 + 1));
                }
            }
            EventKind::DeliverToExternal { idx, payload } => {
                self.tally.deliver_external += 1;
                // An inactive feed is an unplugged device: segments vanish.
                if !self.feeds_active {
                    return;
                }
                let now = self.now;
                if let Some(peer) = self.externals.get_mut(idx) {
                    let mut buf = payload;
                    if let Ok(msg) = mfv_wire::bgp::BgpMsg::decode(&mut buf) {
                        peer.push_msg(now, msg);
                        self.messages_delivered += 1;
                    }
                    self.schedule_ext_poll(idx, SimTime(now.0 + 1));
                }
            }
            EventKind::RestartRouter(node) => {
                self.tally.restart_router += 1;
                let now = self.now;
                self.pending_restarts = self.pending_restarts.saturating_sub(1);
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    if !router.is_running() {
                        router.restart(now);
                        self.last_activity = now;
                        self.schedule_poll(node, SimTime(now.0 + 1));
                        if let Some(name) = self.interner.node(node) {
                            self.journal.push(now, "engine.restart", name.to_string());
                        }
                    }
                }
            }
            EventKind::ChaosLink { slot, up } => {
                self.tally.chaos_link += 1;
                self.chaos_pending = self.chaos_pending.saturating_sub(1);
                // Unknown links (slot None) are inert.
                if let Some(slot) = slot {
                    let kind = if up {
                        "chaos.link_up"
                    } else {
                        "chaos.link_down"
                    };
                    let detail = self
                        .links
                        .get(slot)
                        .map(|r| r.id.to_string())
                        .unwrap_or_default();
                    self.journal.push(self.now, kind, detail);
                    self.set_link_slot(slot, up);
                }
            }
            EventKind::ChaosKillRouter(node) => {
                self.tally.chaos_kill += 1;
                self.chaos_pending = self.chaos_pending.saturating_sub(1);
                let now = self.now;
                let Some(node) = node else { return };
                if let Some(name) = self.interner.node(node) {
                    self.journal
                        .push(now, "chaos.kill_routing", name.to_string());
                }
                if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                    router.inject_crash("chaos: routing process killed");
                    self.last_activity = now;
                    self.schedule_poll(node, SimTime(now.0 + 1));
                }
            }
            EventKind::ChaosFailMachine(name) => {
                self.tally.chaos_fail_machine += 1;
                self.chaos_pending = self.chaos_pending.saturating_sub(1);
                let now = self.now;
                let evicted = self.cluster.fail_machine(&name);
                self.journal.push(
                    now,
                    "chaos.fail_machine",
                    format!("{name}: {} pods evicted", evicted.len()),
                );
                for req in evicted {
                    // The pod (and its router) is gone; the scheduler
                    // resubmits it onto surviving machines, and the usual
                    // PodReady path boots a fresh instance.
                    let Some(node) = self.interner.resolve_node(&req.pod) else {
                        continue;
                    };
                    if let Some(slot) = self.routers.get_mut(node.index()) {
                        *slot = None;
                    }
                    if let Some(slot) = self.ready_at.get_mut(node.index()) {
                        if slot.take().is_some() {
                            self.ready_count = self.ready_count.saturating_sub(1);
                        }
                    }
                    self.clear_poll(node);
                    self.last_activity = now;
                    let Some(vendor) = self.topology.node(&req.pod).map(|s| s.vendor) else {
                        continue;
                    };
                    let profile = self
                        .cfg
                        .profile_overrides
                        .get(&req.pod)
                        .cloned()
                        .unwrap_or_else(|| VendorProfile::for_vendor(vendor));
                    match self
                        .cluster
                        .schedule(&req, now, profile.boot_time, &mut self.rng)
                    {
                        Ok(placement) => {
                            self.push_event(placement.ready_at, EventKind::PodReady(node));
                        }
                        Err(e) => {
                            self.unschedulable.push(e);
                        }
                    }
                }
            }
        }
    }

    fn injection_done(&self) -> bool {
        self.externals.iter().all(|p| p.done())
    }

    fn all_ready(&self) -> bool {
        self.ready_count
            == self
                .topology
                .nodes
                .len()
                .saturating_sub(self.unschedulable.len())
    }

    fn quiescent(&self) -> bool {
        self.all_ready()
            && self.injection_done()
            && self.pending_restarts == 0
            && self.chaos_pending == 0
    }

    /// Processes the single earliest due work item across the three queues
    /// — heap events, router wakes, external-peer wakes — if its instant is
    /// `<= deadline`. The heap wins ties, so a delivery lands before the
    /// poll it provoked. Both run loops (`run_until_converged`,
    /// `run_until`) are thin drivers over this.
    fn step_due(&mut self, deadline: SimTime) -> StepOutcome {
        let heap_t = self.events.peek().map(|Reverse(ev)| ev.time);
        let wake_t = self.wake.iter().next().map(|&(t, _)| t);
        let ext_t = self.ext_wake.iter().next().map(|&(t, _)| t);
        let Some(t) = [heap_t, wake_t, ext_t].into_iter().flatten().min() else {
            return StepOutcome::Idle;
        };
        if t > deadline {
            return StepOutcome::Deferred;
        }
        self.now = t;
        if heap_t == Some(t) {
            if let Some(Reverse(ev)) = self.events.pop() {
                self.handle(ev.kind);
            }
        } else if wake_t == Some(t) {
            if let Some(&(wt, node)) = self.wake.iter().next() {
                self.wake.remove(&(wt, node));
                if let Some(slot) = self.next_poll.get_mut(node.index()) {
                    *slot = None;
                }
                self.poll_router(node);
            }
        } else if let Some(&(wt, idx)) = self.ext_wake.iter().next() {
            self.ext_wake.remove(&(wt, idx));
            if let Some(slot) = self.ext_next.get_mut(idx) {
                *slot = None;
            }
            self.poll_external(idx);
        }
        self.events_processed += 1;
        self.wake_depth
            .record((self.wake.len() + self.ext_wake.len()) as u64);
        StepOutcome::Stepped
    }

    /// Advances virtual time to exactly `deadline`, processing every work
    /// item due on the way, with none of the convergence machinery: no
    /// quiet-period fast-forward, no watchdog, no phase bookkeeping. The
    /// continuous-verification tick loop drives the steady-state emulation
    /// with this — chaos events fire, routers reconverge, and the clock
    /// lands on `deadline` even when the network is idle (so telemetry
    /// stamps and backoff timers keep moving). Returns the number of work
    /// items processed during this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.boot();
        let before = self.events_processed;
        while matches!(self.step_due(deadline), StepOutcome::Stepped) {}
        self.now = self.now.max(deadline);
        self.events_processed - before
    }

    /// Runs the emulation until the dataplane is quiet (or the time cap),
    /// and renders the watchdog's [`ConvergenceVerdict`]: a quiet spell
    /// only counts once every scheduled fault has fired, and a run that
    /// exhausts its budget is post-mortemed for oscillation.
    pub fn run_until_converged(&mut self) -> RunReport {
        // Wall-clock phase splits. The sim-time twins are derived from
        // `boot_complete_at`/`feeds_done_at` below; only these wall marks
        // touch the real clock, and they land in the quarantined wall
        // section of the obs export.
        let wall = WallTimer::start();
        let mut wall_mark = 0u64;
        let mut boot_wall_done = self.boot_complete_at.is_some();
        let mut flood_wall_done = self.feeds_done_at.is_some();
        self.boot();
        let deadline = SimTime(self.cfg.max_sim_time.as_millis());
        let mut converged = false;
        loop {
            match self.step_due(deadline) {
                StepOutcome::Stepped => {}
                StepOutcome::Idle => {
                    // Every queue is empty: nothing will ever happen again.
                    // If the run is otherwise quiescent, fast-forward
                    // through the quiet period and declare convergence —
                    // this is where an idle network costs zero events
                    // instead of a poll per node per interval.
                    if self.quiescent() {
                        let quiet_at = self.last_activity + self.cfg.quiet_period;
                        if quiet_at <= deadline {
                            self.now = quiet_at;
                            converged = true;
                        }
                    }
                    break;
                }
                StepOutcome::Deferred => break,
            }

            // Phase boundaries. Boot end is set by the PodReady handler;
            // flood ends when every external feed has drained.
            if !boot_wall_done && self.boot_complete_at.is_some() {
                boot_wall_done = true;
                let us = wall.elapsed_micros();
                self.wall.add_phase("boot", us.saturating_sub(wall_mark));
                wall_mark = us;
            }
            if boot_wall_done
                && self.feeds_done_at.is_none()
                && !self.externals.is_empty()
                && self.injection_done()
            {
                self.feeds_done_at = Some(self.now);
                self.journal
                    .push(self.now, "engine.flood_complete", "external feeds drained");
            }
            if boot_wall_done && !flood_wall_done && self.feeds_done_at.is_some() {
                flood_wall_done = true;
                let us = wall.elapsed_micros();
                self.wall.add_phase("flood", us.saturating_sub(wall_mark));
                wall_mark = us;
            }

            if self.quiescent() && self.now.since(self.last_activity) >= self.cfg.quiet_period {
                converged = true;
                break;
            }
        }
        self.wall
            .add_phase("converge", wall.elapsed_micros().saturating_sub(wall_mark));
        let verdict = if converged {
            ConvergenceVerdict::Converged
        } else {
            self.oscillation_verdict()
        };
        // Sim-time spans mirror the wall splits, derived purely from sim
        // state so replays produce identical reports.
        if let Some(boot_at) = self.boot_complete_at {
            self.phases.record("boot", SimTime::ZERO, boot_at);
            let converge_from = match self.feeds_done_at {
                Some(flood_at) => {
                    self.phases.record("flood", boot_at, flood_at);
                    flood_at
                }
                None => boot_at,
            };
            self.phases.record(
                "converge",
                converge_from,
                self.last_activity.max(converge_from),
            );
        }
        RunReport {
            converged,
            verdict,
            boot_complete_at: self.boot_complete_at,
            converged_at: self.last_activity,
            messages_delivered: self.messages_delivered,
            crashes: self.crashes,
            events_processed: self.events_processed,
            events_scheduled: self.events_scheduled,
            unschedulable: self.unschedulable.clone(),
            phases: self.phases.clone(),
        }
    }

    /// Applies a configuration change to a running node (config push) and
    /// returns immediately; call `run_until_converged` to settle.
    pub fn push_config(&mut self, node: &NodeId, text: &str) -> Result<(), String> {
        let spec = self
            .topology
            .nodes
            .iter_mut()
            .find(|n| &n.name == node)
            .ok_or_else(|| format!("unknown node {node}"))?;
        let vendor = spec.vendor;
        let parsed = mfv_config::parse(vendor, text).map_err(|e| e.to_string())?;
        spec.config_text = text.to_string();
        let Some(node_ref) = self.interner.resolve_node(node) else {
            return Ok(());
        };
        let now = self.now;
        if let Some(router) = self
            .routers
            .get_mut(node_ref.index())
            .and_then(|s| s.as_mut())
        {
            router.apply_config(parsed.config);
            self.register_addresses(node_ref);
            self.last_activity = now;
            self.schedule_poll(node_ref, SimTime(now.0 + 1));
        }
        Ok(())
    }

    /// Brings a link up or down (failure injection). Unknown links are
    /// ignored.
    pub fn set_link(&mut self, link: &LinkId, up: bool) {
        if let Some(&slot) = self.link_index.get(link) {
            self.set_link_slot(slot, up);
        }
    }

    fn set_link_slot(&mut self, slot: usize, up: bool) {
        let Some(rec) = self.links.get_mut(slot) else {
            return;
        };
        rec.up = up;
        let endpoints = [rec.a, rec.b];
        let now = self.now;
        for (node, iface) in endpoints {
            let Some(iface_name) = self.interner.iface(iface) else {
                continue;
            };
            if let Some(router) = self.routers.get_mut(node.index()).and_then(|s| s.as_mut()) {
                router.set_link(iface_name, up);
                self.schedule_poll(node, SimTime(now.0 + 1));
            }
        }
        self.last_activity = now;
    }

    /// Administratively shuts a BGP session on a node.
    pub fn shutdown_bgp(&mut self, node: &NodeId, peer: Ipv4Addr) {
        let Some(node_ref) = self.interner.resolve_node(node) else {
            return;
        };
        let now = self.now;
        if let Some(router) = self
            .routers
            .get_mut(node_ref.index())
            .and_then(|s| s.as_mut())
        {
            router.shutdown_bgp_session(peer, now);
            self.last_activity = now;
            self.schedule_poll(node_ref, SimTime(now.0 + 1));
        }
    }

    /// Extracts the current dataplane snapshot (the AFT dump step).
    /// `NodeRef` order is name order, so the walk matches the old
    /// string-keyed map's iteration byte for byte.
    pub fn dataplane(&self) -> Dataplane {
        let mut dp = Dataplane::new();
        for r in self.interner.node_refs() {
            let Some(router) = self.routers.get(r.index()).and_then(|s| s.as_ref()) else {
                continue;
            };
            let Some(name) = self.interner.node(r) else {
                continue;
            };
            dp.add_node(
                name.clone(),
                router.fib(),
                router.addresses(),
                router.is_running(),
            );
        }
        for rec in &self.links {
            if rec.up {
                dp.add_link(rec.id.clone());
            }
        }
        dp
    }

    /// Current cluster packing (pods per machine).
    pub fn cluster_packing(&self) -> Vec<(String, usize)> {
        self.cluster.packing()
    }

    /// Flushes the engine's plain-field counters — plus per-router
    /// aggregates from every live [`VirtualRouter`] — into an [`Obs`]
    /// snapshot. Everything except the `wall` section is derived from sim
    /// state only, so two same-seed runs export byte-identical
    /// `to_json(false)` dumps.
    pub fn export_obs(&self) -> Obs {
        let mut obs = Obs::new();
        let m = &mut obs.metrics;
        m.inc("engine.events.pod_ready", self.tally.pod_ready);
        m.inc("engine.events.deliver_isis", self.tally.deliver_isis);
        m.inc("engine.events.deliver_bgp", self.tally.deliver_bgp);
        m.inc(
            "engine.events.deliver_external",
            self.tally.deliver_external,
        );
        m.inc("engine.events.restart_router", self.tally.restart_router);
        m.inc("engine.events.chaos_link", self.tally.chaos_link);
        m.inc("engine.events.chaos_kill", self.tally.chaos_kill);
        m.inc(
            "engine.events.chaos_fail_machine",
            self.tally.chaos_fail_machine,
        );
        m.inc("engine.events.scheduled", self.events_scheduled);
        m.inc("engine.events.processed", self.events_processed);
        m.inc("engine.messages.delivered", self.messages_delivered);
        m.inc("engine.crashes", self.crashes);
        m.inc("engine.polls.router", self.tally.router_polls);
        m.inc("engine.polls.external", self.tally.ext_polls);
        m.inc("engine.impair.dropped", self.tally.impair_dropped);
        m.inc("engine.impair.duplicated", self.tally.impair_duplicated);
        m.inc("engine.encode_errors", self.tally.encode_errors);
        m.gauge("engine.nodes", self.topology.nodes.len() as i64);
        m.gauge("engine.links", self.links.len() as i64);
        m.gauge("engine.unschedulable", self.unschedulable.len() as i64);
        m.merge_hist("engine.wake_depth", &self.wake_depth);

        // Per-router aggregates (routers evicted by machine failures or
        // not yet booted contribute nothing).
        let mut decode_errors = 0u64;
        let mut encode_errors = 0u64;
        let mut rib_resyncs = 0u64;
        let mut full_refreshes = 0u64;
        let mut fib_patches = 0u64;
        let mut bgp_transitions = 0u64;
        let mut isis_transitions = 0u64;
        let mut running = 0i64;
        for router in self.routers.iter().flatten() {
            decode_errors += router.decode_errors;
            encode_errors += router.encode_errors;
            rib_resyncs += router.rib_resyncs;
            full_refreshes += router.full_fib_refreshes;
            fib_patches += router.fib_patches;
            bgp_transitions += router.bgp_session_transitions();
            isis_transitions += router.isis_adjacency_transitions();
            if router.is_running() {
                running += 1;
            }
        }
        m.inc("vrouter.decode_errors", decode_errors);
        m.inc("vrouter.encode_errors", encode_errors);
        m.inc("vrouter.rib.resyncs", rib_resyncs);
        m.inc("vrouter.fib.full_refreshes", full_refreshes);
        m.inc("vrouter.fib.patches", fib_patches);
        m.inc("vrouter.bgp.session_transitions", bgp_transitions);
        m.inc("vrouter.isis.adjacency_transitions", isis_transitions);
        m.gauge("vrouter.running", running);

        obs.phases = self.phases.clone();
        obs.journal = self.journal.clone();
        obs.wall = self.wall.clone();
        obs
    }
}
