//! Topology specification: the emulator's equivalent of a KNE topology file.
//!
//! A [`Topology`] names the devices (each with a vendor and a configuration
//! in that vendor's dialect), the point-to-point links between interfaces,
//! and optional external BGP peers used for production-route injection.
//! Serialises to JSON for on-disk topology files.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use mfv_config::{DeviceConfig, Vendor};
use mfv_types::{AsNum, IfaceId, LinkId, NodeId};

/// One emulated device.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSpec {
    pub name: NodeId,
    pub vendor: Vendor,
    /// Raw configuration text in the vendor's dialect.
    pub config_text: String,
}

impl NodeSpec {
    /// Builds a node spec from an IR config (rendering it to text — the
    /// emulator always ingests text, as the real system ingests files).
    pub fn from_config(name: impl Into<NodeId>, config: &DeviceConfig) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            vendor: config.vendor,
            config_text: mfv_config::render(config),
        }
    }

    /// Parses the config text in the node's dialect.
    pub fn parse_config(&self) -> Result<mfv_config::Parsed, mfv_config::ParseError> {
        mfv_config::parse(self.vendor, &self.config_text)
    }
}

/// A point-to-point link with emulated latency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopoLink {
    pub a_node: NodeId,
    pub a_iface: IfaceId,
    pub b_node: NodeId,
    pub b_iface: IfaceId,
    /// One-way latency in milliseconds (default 1).
    #[serde(default = "default_latency")]
    pub latency_ms: u64,
}

fn default_latency() -> u64 {
    1
}

impl TopoLink {
    pub fn id(&self) -> LinkId {
        LinkId::new(
            (self.a_node.clone(), self.a_iface.clone()),
            (self.b_node.clone(), self.b_iface.clone()),
        )
    }
}

/// An external BGP peer (route injector): the emulator's stand-in for
/// production route feeds ("inject production-recorded routes — millions
/// from each BGP peer", §5).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExternalPeerSpec {
    /// The peer's own address (must be on a subnet of the attached node).
    pub addr: Ipv4Addr,
    pub asn: AsNum,
    /// Which emulated node it peers with (that node must configure a
    /// neighbor statement for `addr`).
    pub attach_to: NodeId,
    /// Number of synthetic routes to announce.
    pub route_count: usize,
    /// Base prefix pool for generated routes, e.g. `20.0.0.0/8` is carved
    /// into /24s. Defaults used when `None`.
    pub base_octet: Option<u8>,
}

/// The full emulation input: configs + topology (+ context), exactly the
/// paper's input set.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct Topology {
    pub name: String,
    pub nodes: Vec<NodeSpec>,
    pub links: Vec<TopoLink>,
    #[serde(default)]
    pub external_peers: Vec<ExternalPeerSpec>,
}

impl Topology {
    pub fn new(name: impl Into<String>) -> Topology {
        Topology {
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn node(&self, name: &NodeId) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| &n.name == name)
    }

    pub fn add_node(&mut self, spec: NodeSpec) -> &mut Self {
        self.nodes.push(spec);
        self
    }

    /// Links two node interfaces with default latency.
    pub fn add_link(
        &mut self,
        a: (impl Into<NodeId>, impl Into<IfaceId>),
        b: (impl Into<NodeId>, impl Into<IfaceId>),
    ) -> &mut Self {
        self.links.push(TopoLink {
            a_node: a.0.into(),
            a_iface: a.1.into(),
            b_node: b.0.into(),
            b_iface: b.1.into(),
            latency_ms: 1,
        });
        self
    }

    /// Structural validation: link endpoints must name existing nodes, and
    /// no interface may appear in two links.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_eps: Vec<(NodeId, IfaceId)> = Vec::new();
        for l in &self.links {
            for (node, iface) in [(&l.a_node, &l.a_iface), (&l.b_node, &l.b_iface)] {
                if self.node(node).is_none() {
                    return Err(format!("link references unknown node {node}"));
                }
                let ep = (node.clone(), iface.clone());
                if seen_eps.contains(&ep) {
                    return Err(format!("interface {node}:{iface} used by two links"));
                }
                seen_eps.push(ep);
            }
        }
        let mut names: Vec<&NodeId> = self.nodes.iter().map(|n| &n.name).collect();
        names.sort();
        names.dedup();
        if names.len() != self.nodes.len() {
            return Err("duplicate node names".into());
        }
        for p in &self.external_peers {
            if self.node(&p.attach_to).is_none() {
                return Err(format!(
                    "external peer attaches to unknown node {}",
                    p.attach_to
                ));
            }
        }
        Ok(())
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serialises")
    }

    pub fn from_json(s: &str) -> Result<Topology, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::RouterSpec;

    fn small_topo() -> Topology {
        let mut t = Topology::new("pair");
        let r1 = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1)).build();
        let r2 = RouterSpec::new("r2", AsNum(65002), Ipv4Addr::new(2, 2, 2, 2)).build();
        t.add_node(NodeSpec::from_config("r1", &r1));
        t.add_node(NodeSpec::from_config("r2", &r2));
        t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
        t
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(small_topo().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unknown_node() {
        let mut t = small_topo();
        t.add_link(("r1", "Ethernet2"), ("ghost", "Ethernet1"));
        assert!(t.validate().unwrap_err().contains("unknown node"));
    }

    #[test]
    fn validate_rejects_reused_interface() {
        let mut t = small_topo();
        let r3 = RouterSpec::new("r3", AsNum(65003), Ipv4Addr::new(2, 2, 2, 3)).build();
        t.add_node(NodeSpec::from_config("r3", &r3));
        t.add_link(("r1", "Ethernet1"), ("r3", "Ethernet1"));
        assert!(t.validate().unwrap_err().contains("two links"));
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let mut t = small_topo();
        let dup = RouterSpec::new("r1", AsNum(65009), Ipv4Addr::new(2, 2, 2, 9)).build();
        t.add_node(NodeSpec::from_config("r1", &dup));
        assert!(t.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn json_roundtrip() {
        let t = small_topo();
        let js = t.to_json();
        let back = Topology::from_json(&js).unwrap();
        assert_eq!(back.nodes.len(), 2);
        assert_eq!(back.links.len(), 1);
        assert_eq!(back.links[0].latency_ms, 1);
        assert_eq!(back.name, "pair");
    }

    #[test]
    fn node_config_parses_in_dialect() {
        let t = small_topo();
        let parsed = t.node(&"r1".into()).unwrap().parse_config().unwrap();
        assert_eq!(parsed.config.hostname, "r1");
    }
}
