//! Dataplane backends: the two ways to get from configuration to a
//! verifiable dataplane.
//!
//! [`EmulationBackend`] is the paper's contribution — boot real vendor
//! control planes, converge, extract AFTs over the management plane, and
//! hand the result to verification. [`ModelBackend`] is the traditional
//! path — parse with a reference model and compute the dataplane from it.
//! Both produce the same [`Dataplane`] type, so every verification query
//! runs unchanged against either (the "drop-in backend" property of §4).

use std::collections::BTreeMap;
use std::fmt;

use mfv_dataplane::Dataplane;
use mfv_emulator::{ChaosPlan, Cluster, ConvergenceVerdict, Emulation, EmulationConfig};
use mfv_mgmt::Collector;
use mfv_model::CoverageReport;
use mfv_types::{ExtractionStatus, NodeId, SimDuration};
use mfv_vrouter::VendorProfile;

use crate::extract::extract_snapshot_observed;
use crate::snapshot::Snapshot;

/// Why a backend could not produce a dataplane.
#[derive(Clone, Debug)]
pub struct BackendError(pub String);

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "backend error: {}", self.0)
    }
}

impl std::error::Error for BackendError {}

/// How the emulation backend treats the conflint static pass before
/// booting (the cheap tier of tiered verification: catch cross-device
/// config contradictions in milliseconds instead of emulating them).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflintGate {
    /// Skip the static pass entirely.
    Off,
    /// Run it and record the summary, but boot regardless. The default:
    /// some scenarios (chaos studies, deliberately broken fixtures) emulate
    /// known-bad configs on purpose.
    #[default]
    Warn,
    /// Refuse to boot when the static pass reports errors.
    Deny,
}

/// Counts from the pre-emulation conflint pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ConflintSummary {
    pub errors: usize,
    pub warnings: usize,
}

/// Metadata about how the dataplane was produced.
#[derive(Clone, Debug, Default)]
pub struct BackendMeta {
    /// Did the backend reach a stable state?
    pub converged: bool,
    /// Emulation: infrastructure startup (pod scheduling + container boot).
    pub boot_time: Option<SimDuration>,
    /// Emulation: time from startup-complete to dataplane quiescence.
    pub convergence_time: Option<SimDuration>,
    /// Emulation: control-plane messages exchanged.
    pub messages: u64,
    /// Emulation: routing-process crashes observed.
    pub crashes: u64,
    /// Model: per-config coverage reports (unrecognised lines — E2).
    pub coverage: Vec<CoverageReport>,
    /// Emulation: how the run ended (converged / oscillating / timed out).
    pub verdict: Option<ConvergenceVerdict>,
    /// Emulation: fraction of nodes whose AFTs were actually extracted.
    pub extraction_coverage: Option<f64>,
    /// Emulation: per-node extraction provenance.
    pub extraction_status: BTreeMap<NodeId, ExtractionStatus>,
    /// Emulation: result of the pre-boot conflint pass (None = gate off,
    /// or the model backend, which has no such tier).
    pub conflint: Option<ConflintSummary>,
}

/// A produced dataplane plus its provenance.
#[derive(Clone, Debug)]
pub struct BackendResult {
    pub dataplane: Dataplane,
    pub meta: BackendMeta,
}

/// Anything that can turn a snapshot into a dataplane.
pub trait Backend {
    fn name(&self) -> &'static str;
    fn compute(&self, snapshot: &Snapshot) -> Result<BackendResult, BackendError>;
}

/// The model-free backend: control-plane emulation + AFT extraction.
#[derive(Clone, Debug)]
pub struct EmulationBackend {
    /// Cluster machines (e2-standard-32 each).
    pub cluster_machines: usize,
    /// Emulation seed (ordering jitter).
    pub seed: u64,
    /// Per-node vendor profile overrides (bug injection).
    pub profiles: BTreeMap<NodeId, VendorProfile>,
    /// Dataplane quiescence window.
    pub quiet_period: SimDuration,
    /// Simulated-time budget.
    pub max_sim_time: SimDuration,
    /// Restart crashed routing processes (watchdog). Disable to freeze the
    /// post-crash state for inspection.
    pub auto_restart: bool,
    /// Fault-injection schedule replayed during the run (empty = none).
    pub chaos: ChaosPlan,
    /// Management-plane collector (retry policy + simulated RPC failures).
    pub collector: Collector,
    /// Pre-boot static-analysis gate (tiered verification).
    pub conflint: ConflintGate,
    /// Worker threads for the sharded engine (`0` = host parallelism,
    /// `1` = sequential). Never affects results, only wall time.
    pub threads: usize,
}

impl Default for EmulationBackend {
    fn default() -> Self {
        EmulationBackend {
            cluster_machines: 1,
            seed: 1,
            profiles: BTreeMap::new(),
            quiet_period: SimDuration::from_secs(12),
            max_sim_time: SimDuration::from_mins(120),
            auto_restart: true,
            chaos: ChaosPlan::default(),
            collector: Collector::default(),
            conflint: ConflintGate::default(),
            threads: 1,
        }
    }
}

impl EmulationBackend {
    pub fn with_seed(seed: u64) -> EmulationBackend {
        EmulationBackend {
            seed,
            ..Default::default()
        }
    }

    /// Runs the emulation and returns it alongside the report, for callers
    /// that want to keep poking at the live network (CLI, what-if).
    pub fn run(&self, snapshot: &Snapshot) -> Result<(Emulation, BackendMeta), BackendError> {
        // Tier 1: cross-device static analysis, before any pod is scheduled.
        let conflint = match self.conflint {
            ConflintGate::Off => None,
            ConflintGate::Warn | ConflintGate::Deny => {
                let report = mfv_conflint::analyze(&snapshot.topology)
                    .map_err(|e| BackendError(format!("conflint: {e}")))?;
                let summary = ConflintSummary {
                    errors: report.errors(),
                    warnings: report.warnings(),
                };
                if self.conflint == ConflintGate::Deny && summary.errors > 0 {
                    return Err(BackendError(format!(
                        "conflint gate: {} error(s) in '{}' — fix or suppress \
                         before emulating:\n{}",
                        summary.errors,
                        snapshot.topology.name,
                        report.render()
                    )));
                }
                Some(summary)
            }
        };
        let cfg = EmulationConfig {
            seed: self.seed,
            quiet_period: self.quiet_period,
            max_sim_time: self.max_sim_time,
            auto_restart_crashed: self.auto_restart,
            profile_overrides: self.profiles.clone(),
            inject_after_boot: true,
            chaos: self.chaos.clone(),
            threads: self.threads,
            ..Default::default()
        };
        let mut emu = Emulation::new(
            snapshot.topology.clone(),
            Cluster::of_size(self.cluster_machines),
            cfg,
        )
        .map_err(BackendError)?;
        let report = emu.run_until_converged();
        if let Some(first) = report.unschedulable.first() {
            return Err(BackendError(format!(
                "{} pods unschedulable on a {}-machine cluster (first: {})",
                report.unschedulable.len(),
                self.cluster_machines,
                first,
            )));
        }
        let meta = BackendMeta {
            converged: report.converged,
            boot_time: report
                .boot_complete_at
                .map(|t| t - mfv_types::SimTime::ZERO),
            convergence_time: report
                .boot_complete_at
                .map(|boot| report.converged_at.since(boot)),
            messages: report.messages_delivered,
            crashes: report.crashes,
            coverage: Vec::new(),
            verdict: Some(report.verdict.clone()),
            extraction_coverage: None,
            extraction_status: BTreeMap::new(),
            conflint,
        };
        Ok((emu, meta))
    }
}

impl Backend for EmulationBackend {
    fn name(&self) -> &'static str {
        "model-free (emulation)"
    }

    fn compute(&self, snapshot: &Snapshot) -> Result<BackendResult, BackendError> {
        self.compute_observed(snapshot, &mut mfv_obs::Obs::new())
    }
}

impl EmulationBackend {
    /// Like [`Backend::compute`], but folds the run's observability into
    /// `obs`: the engine's metrics/phases/journal ([`Emulation::export_obs`])
    /// plus the extraction sweep's `mgmt.*` tallies and `extract` span.
    pub fn compute_observed(
        &self,
        snapshot: &Snapshot,
        obs: &mut mfv_obs::Obs,
    ) -> Result<BackendResult, BackendError> {
        let (emu, mut meta) = self.run(snapshot)?;
        obs.merge(emu.export_obs());
        // The extraction step of §4.1: dump per-device AFTs through the
        // management plane and rebuild the network dataplane from them —
        // we deliberately do NOT shortcut via the emulator's internal state.
        let extracted = extract_snapshot_observed(&emu, &self.collector, obs);
        if self.collector.failures.is_noop() && extracted.is_complete() {
            debug_assert_eq!(
                extracted.dataplane.digest(),
                emu.dataplane().digest(),
                "AFT round-trip must be lossless"
            );
        }
        meta.extraction_coverage = Some(extracted.coverage);
        meta.extraction_status = extracted.status;
        Ok(BackendResult {
            dataplane: extracted.dataplane,
            meta,
        })
    }
}

/// The traditional backend: parse with the reference model, compute the
/// dataplane from the model.
#[derive(Clone, Debug, Default)]
pub struct ModelBackend;

impl Backend for ModelBackend {
    fn name(&self) -> &'static str {
        "model-based (baseline)"
    }

    fn compute(&self, snapshot: &Snapshot) -> Result<BackendResult, BackendError> {
        for node in &snapshot.topology.nodes {
            if node.vendor != mfv_config::Vendor::Ceos {
                return Err(BackendError(format!(
                    "the reference model has no parser for vendor '{}' (node {})",
                    node.vendor, node.name
                )));
            }
        }
        let configs: Vec<(NodeId, String)> = snapshot
            .topology
            .nodes
            .iter()
            .map(|n| (n.name.clone(), n.config_text.clone()))
            .collect();
        let (dataplane, coverage) =
            mfv_model::model_dataplane(&configs).map_err(|e| BackendError(e.to_string()))?;
        Ok(BackendResult {
            dataplane,
            meta: BackendMeta {
                converged: true,
                coverage,
                ..Default::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use mfv_config::{inject_misconfig, SeededMisconfig};

    #[test]
    fn conflint_gate_warn_records_clean_summary_and_boots() {
        let be = EmulationBackend::with_seed(3);
        let (_emu, meta) = be.run(&scenarios::conflint_base()).unwrap();
        let s = meta.conflint.expect("Warn gate must run the static pass");
        assert_eq!((s.errors, s.warnings), (0, 0));
    }

    #[test]
    fn conflint_gate_deny_refuses_contradictory_configs() {
        let mut configs = scenarios::conflint_base_configs();
        inject_misconfig(SeededMisconfig::EbgpAsnMismatch, &mut configs, 0).unwrap();
        let snap = crate::snapshot::Snapshot::new(
            "gate-deny".to_string(),
            scenarios::conflint_base_topology("gate-deny", &configs),
        );
        let mut be = EmulationBackend::with_seed(3);
        be.conflint = ConflintGate::Deny;
        let err = match be.run(&snap) {
            Err(e) => e,
            Ok(_) => panic!("Deny gate must refuse to boot"),
        };
        assert!(err.0.contains("conflint gate"), "{err}");
        assert!(err.0.contains("C1"), "{err}");

        // The same snapshot still boots under Warn (chaos studies emulate
        // known-bad configs on purpose) — with the findings on record.
        be.conflint = ConflintGate::Warn;
        let (_emu, meta) = be.run(&snap).unwrap();
        assert!(meta.conflint.unwrap().errors > 0);
    }

    #[test]
    fn conflint_gate_off_skips_the_pass() {
        let mut be = EmulationBackend::with_seed(3);
        be.conflint = ConflintGate::Off;
        let (_emu, meta) = be.run(&scenarios::conflint_base()).unwrap();
        assert!(meta.conflint.is_none());
    }
}
