//! Continuous verification: drive a live emulation, a fault-tolerant
//! telemetry watcher, and the standing-query engine as one loop.
//!
//! The one-shot pipeline (`EmulationBackend::compute`) answers "is the
//! network correct *now*?". This module answers "does the network *stay*
//! correct?" — it converges the emulation once, then keeps verifying while
//! a [`ChaosPlan`] injects faults:
//!
//! ```text
//!   emulation ──(gNMI Subscribe deltas, lossy)──▶ Watcher mirrors
//!        │                                            │ changed nodes +
//!        ▼                                            ▼ coverage
//!   chaos plan                                  StandingQueries
//!   (flaps, kills,                              (incremental re-evaluation
//!    machine failures)                           through a ClassCache)
//! ```
//!
//! Every piece is seeded and sim-timed, so a run's verdict journal and
//! observability dump are byte-identical across same-seed replays — the
//! property that makes continuous-verification regressions diffable.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use mfv_emulator::ChaosPlan;
use mfv_mgmt::{WatchStats, Watcher};
use mfv_types::{NodeId, SimDuration, SimTime};
use mfv_verify::standing::{StandingQueries, VerdictUpdate};
use mfv_verify::Coverage;

use crate::backend::{BackendError, EmulationBackend};
use crate::snapshot::Snapshot;

/// Configuration for a continuous-verification run.
#[derive(Clone, Debug)]
pub struct WatchRunConfig {
    /// Converges the network before watching starts; its own `chaos` field
    /// (if any) plays during convergence, not during the watch window.
    pub backend: EmulationBackend,
    /// Stream behaviour: heartbeat cadence, fault model, resync backoff.
    pub watch: mfv_mgmt::WatchConfig,
    /// Faults injected during the watch window. Times are relative to the
    /// start of the window (t=0 is the converged state), shifted onto the
    /// emulation clock internally.
    pub chaos: ChaosPlan,
    /// Watcher poll cadence.
    pub tick: SimDuration,
    /// Length of the watch window.
    pub duration: SimDuration,
}

impl Default for WatchRunConfig {
    fn default() -> WatchRunConfig {
        WatchRunConfig {
            backend: EmulationBackend::default(),
            watch: mfv_mgmt::WatchConfig::default(),
            chaos: ChaosPlan::default(),
            tick: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(60),
        }
    }
}

/// Outcome of a continuous-verification run.
#[derive(Clone, Debug)]
pub struct WatchReport {
    /// Did the pre-watch convergence run succeed?
    pub converged: bool,
    /// Emulation clock when the watch window opened / closed.
    pub started_at: SimTime,
    pub ended_at: SimTime,
    /// Every verdict transition, in emission order.
    pub verdict_updates: Vec<VerdictUpdate>,
    /// Rendered verdict journal: one line per transition, newline-separated.
    /// Byte-identical across same-seed runs.
    pub journal_text: String,
    /// Stream-level counters from the watcher.
    pub stats: WatchStats,
    /// Sim-time latency from the earliest device-side change in a batch to
    /// the verdict evaluation that consumed it, one sample per evaluation
    /// triggered by deltas. Raw (not bucketed) so callers can take exact
    /// percentiles.
    pub verdict_latencies_ms: Vec<u64>,
    /// Standing-query evaluations performed.
    pub evaluations: u64,
    /// `(evaluated, reused)` pair-level work units of the standing
    /// queries: a (src, dst) reachability pair or a per-source
    /// loop/black-hole walk. Re-evaluation work stays proportional to
    /// changed nodes, so `evaluated` grows sub-quadratically in N after
    /// the first full pass.
    pub pair_stats: (u64, u64),
    /// `(hits, misses)` of the standing queries' class cache.
    pub cache_stats: (usize, usize),
    /// Coverage at the end of the window.
    pub final_coverage: Coverage,
}

/// The coverage partition that matters for re-evaluation: which nodes are
/// fresh / stale / missing. Ages and reasons are deliberately excluded —
/// a stale node aging one more tick is not a coverage *transition*.
fn coverage_class(cov: &Coverage) -> (BTreeSet<NodeId>, BTreeSet<NodeId>, BTreeSet<NodeId>) {
    (
        cov.fresh.clone(),
        cov.stale.keys().cloned().collect(),
        cov.missing.keys().cloned().collect(),
    )
}

/// Runs the continuous-verification loop and folds its observability
/// (engine, watcher, standing queries, verdict latency) into `obs`.
///
/// The loop per tick: advance the emulation, tick the watcher against the
/// live routers, and — only when some node's mirror changed or the
/// coverage partition moved — rebuild the observed dataplane and
/// re-evaluate the standing queries. Quiet ticks cost nothing but the
/// poll.
pub fn run_watch(
    snapshot: &Snapshot,
    cfg: &WatchRunConfig,
    obs: &mut mfv_obs::Obs,
) -> Result<WatchReport, BackendError> {
    let (mut emu, meta) = cfg.backend.run(snapshot)?;
    let started_at = emu.now();
    if !cfg.chaos.is_empty() {
        emu.schedule_chaos(&cfg.chaos.shifted(started_at - SimTime::ZERO));
    }

    let nodes: Vec<NodeId> = snapshot
        .topology
        .nodes
        .iter()
        .map(|n| n.name.clone())
        .collect();
    let mut watcher = Watcher::new(cfg.watch.clone(), nodes.iter().cloned());
    let mut standing = StandingQueries::new();

    let mut journal_text = String::new();
    let mut verdict_updates = Vec::new();
    let mut verdict_latencies_ms = Vec::new();
    let mut last_class: Option<(BTreeSet<NodeId>, BTreeSet<NodeId>, BTreeSet<NodeId>)> = None;

    let end = started_at + cfg.duration;
    let tick = if cfg.tick == SimDuration::ZERO {
        SimDuration::from_secs(1)
    } else {
        cfg.tick
    };
    let mut now = started_at;
    let mut coverage = Coverage::default();
    while now < end {
        let next = now + tick;
        now = if next < end { next } else { end };
        emu.run_until(now);
        let report = watcher.tick(now, nodes.iter().map(|n| (n.clone(), emu.router(n))));

        let status = watcher.status(now);
        coverage = Coverage::from_status(&status);
        let class = coverage_class(&coverage);
        let coverage_moved = last_class.as_ref() != Some(&class);
        if report.changed.is_empty() && !coverage_moved {
            continue;
        }
        last_class = Some(class);

        let dp = watcher.dataplane(now, &emu.dataplane());
        let updates = standing.evaluate(now, &dp, &coverage);
        if let Some(first) = report.changed.values().min() {
            let lat = now.since(*first).as_millis();
            verdict_latencies_ms.push(lat);
            obs.metrics.record("watch.verdict_latency_ms", lat);
        }
        for u in updates {
            let _ = writeln!(journal_text, "{u}");
            verdict_updates.push(u);
        }
    }

    watcher.observe_into(obs);
    standing.observe_into(obs);
    obs.metrics
        .inc("watch.verdict_updates", verdict_updates.len() as u64);
    obs.merge(emu.export_obs());

    Ok(WatchReport {
        converged: meta.converged,
        started_at,
        ended_at: now,
        verdict_updates,
        journal_text,
        stats: watcher.stats().clone(),
        verdict_latencies_ms,
        evaluations: standing.evaluations(),
        pair_stats: standing.pair_stats(),
        cache_stats: standing.cache_stats(),
        final_coverage: coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use mfv_mgmt::StreamFaultModel;

    fn small_cfg(seed: u64) -> WatchRunConfig {
        WatchRunConfig {
            backend: EmulationBackend::with_seed(seed),
            watch: mfv_mgmt::WatchConfig {
                seed,
                ..Default::default()
            },
            duration: SimDuration::from_secs(30),
            ..Default::default()
        }
    }

    #[test]
    fn quiet_network_settles_to_three_holding_verdicts() {
        let snap = scenarios::isis_line(4);
        let mut obs = mfv_obs::Obs::new();
        let report = run_watch(&snap, &small_cfg(7), &mut obs).unwrap();
        assert!(report.converged);
        // Initial sync produces the three standing verdicts, then quiet.
        assert_eq!(report.verdict_updates.len(), 3, "{}", report.journal_text);
        assert!(report.verdict_updates.iter().all(|u| u.verdict.holds));
        assert!(report.final_coverage.is_complete());
        assert_eq!(report.stats.gaps, 0);
        // Latency samples are recorded and bounded by one poll interval
        // (resync stamps land on the tick itself, hence the 0 floor).
        assert!(!report.verdict_latencies_ms.is_empty());
        assert!(report.verdict_latencies_ms.iter().all(|&l| l <= 1_000));
        // A quiet network pays exactly one full standing pass: N(N-1)
        // reachability pairs + N loop walks + N black-hole walks, and
        // never re-evaluates a pair after that.
        let full = (4 * 3 + 2 * 4) as u64 * report.evaluations;
        let (evaluated, reused) = report.pair_stats;
        assert_eq!(evaluated + reused, full);
        assert_eq!(evaluated, 4 * 3 + 2 * 4, "quiet ticks must reuse pairs");
    }

    #[test]
    fn link_kill_flips_reachability_and_journal_replays() {
        let snap = scenarios::isis_line(4);
        let link = snap.topology.links[0].clone();
        let mk = || {
            let mut cfg = small_cfg(9);
            cfg.chaos =
                ChaosPlan::new().link_flap(link.id(), SimTime(5_000), SimDuration::from_secs(10));
            cfg.duration = SimDuration::from_secs(40);
            cfg
        };
        let mut obs_a = mfv_obs::Obs::new();
        let a = run_watch(&snap, &mk(), &mut obs_a).unwrap();
        // The flap must actually surface as verdict churn past the initial
        // three, and the network must re-verify clean after recovery.
        assert!(a.verdict_updates.len() > 3, "{}", a.journal_text);
        let last = a
            .verdict_updates
            .iter()
            .filter(|u| u.query == "reachability")
            .next_back()
            .unwrap();
        assert!(last.verdict.holds, "{}", a.journal_text);

        let mut obs_b = mfv_obs::Obs::new();
        let b = run_watch(&snap, &mk(), &mut obs_b).unwrap();
        assert_eq!(a.journal_text, b.journal_text);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.verdict_latencies_ms, b.verdict_latencies_ms);
        assert_eq!(obs_a.to_json(false), obs_b.to_json(false));

        // Sub-quadratic standing work on a chaos run: all 4 nodes stay
        // covered (link flaps don't drop streams), so every evaluation
        // considers the same N(N-1)+2N work units — but only the ticks
        // where routes actually moved re-evaluate any of them.
        let per_eval = (4 * 3 + 2 * 4) as u64;
        let (evaluated, reused) = a.pair_stats;
        assert_eq!(evaluated + reused, a.evaluations * per_eval);
        assert!(
            evaluated < a.evaluations * per_eval,
            "chaos run must still reuse unaffected pairs \
             (evaluated={evaluated} of {})",
            a.evaluations * per_eval
        );
    }

    #[test]
    fn lossy_stream_degrades_coverage_and_recovers() {
        let snap = scenarios::isis_line(4);
        let mut cfg = small_cfg(21);
        cfg.watch.faults = StreamFaultModel {
            drop_pct: 35,
            session_loss_pct: 10,
        };
        cfg.duration = SimDuration::from_secs(90);
        let mut obs = mfv_obs::Obs::new();
        let report = run_watch(&snap, &cfg, &mut obs).unwrap();
        // Faults fired and every one was healed by resync.
        assert!(report.stats.gaps + report.stats.session_losses > 0);
        assert!(report.stats.resyncs > 0);
        assert!(
            report.final_coverage.is_complete(),
            "{:?}",
            report.final_coverage
        );
        // Incremental property: far more class reuse than rebuilds.
        let (hits, misses) = report.cache_stats;
        assert!(hits > misses, "hits={hits} misses={misses}");
    }
}
