//! What-if exploration over scenario contexts.
//!
//! §6 of the paper: checking invariants "in the face of any single link cut"
//! means one emulation per context; `any k link cuts` grows combinatorially.
//! This module enumerates cut contexts, runs the backend per context (in
//! parallel across OS threads), and reports the differential impact of each
//! context against the baseline snapshot.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use mfv_types::{IpSet, LinkId};
use mfv_verify::{
    deliverability_changes, differential_reachability_with, ClassCache, DiffFinding,
    ForwardingAnalysis,
};

use crate::backend::{Backend, BackendError, EmulationBackend};
use crate::snapshot::Snapshot;

/// All `k`-subsets of the snapshot's links — the context space for a
/// "tolerates any k cuts" question. Its size is C(#links, k); the
/// combinatorial growth is exactly the cost §6 warns about.
pub fn link_cut_contexts(snapshot: &Snapshot, k: usize) -> Vec<Vec<LinkId>> {
    let links = snapshot.link_ids();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        links: &[LinkId],
        start: usize,
        k: usize,
        current: &mut Vec<LinkId>,
        out: &mut Vec<Vec<LinkId>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for (i, link) in links.iter().enumerate().skip(start) {
            current.push(link.clone());
            rec(links, i + 1, k, current, out);
            current.pop();
        }
    }
    rec(&links, 0, k, &mut current, &mut out);
    out
}

/// Number of contexts for a k-cut sweep without materialising them.
pub fn link_cut_context_count(n_links: usize, k: usize) -> u128 {
    if k > n_links {
        return 0;
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n_links - i) as u128 / (i + 1) as u128;
    }
    acc
}

/// The verdict for one cut context.
#[derive(Clone, Debug)]
pub struct CutVerdict {
    pub cuts: Vec<LinkId>,
    /// Differential findings against the baseline (path changes included).
    pub findings: Vec<DiffFinding>,
    /// Findings where deliverability changed — the outage signal.
    pub lost_reachability: usize,
}

impl CutVerdict {
    /// Did the network keep full reachability under this cut set?
    pub fn survives(&self) -> bool {
        self.lost_reachability == 0
    }
}

/// Why one context of a sweep failed. A failure is confined to its context;
/// the rest of the sweep still completes.
#[derive(Clone, Debug)]
pub enum SweepError {
    /// The backend could not produce a dataplane for this context.
    Backend(BackendError),
    /// The worker panicked while processing this context.
    Panic(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Backend(e) => write!(f, "{e}"),
            SweepError::Panic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Outcome of a full cut sweep: one verdict (or confined failure) per
/// context, in context order, plus class-cache effectiveness counters.
#[derive(Debug)]
pub struct SweepReport {
    pub verdicts: Vec<Result<CutVerdict, SweepError>>,
    /// `(hits, misses)` of the shared [`ClassCache`] across the baseline
    /// and every variant analysis. Variants differ from the baseline at
    /// only the nodes adjacent to the cuts, so hits dominate.
    pub class_cache: (usize, usize),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Runs one emulation per cut context and diffs each against the baseline
/// dataplane. Contexts fan out across OS threads, as the paper proposes
/// ("running emulation for each new context in parallel").
///
/// The baseline [`ForwardingAnalysis`] is built once and shared by every
/// context, and a [`ClassCache`] keyed on per-node FIB digests lets each
/// variant reuse the match classes of nodes its cuts did not touch. One
/// failing or panicking context does not abort the sweep.
pub fn verify_link_cuts_detailed(
    snapshot: &Snapshot,
    backend: &EmulationBackend,
    contexts: Vec<Vec<LinkId>>,
    scope: Option<&IpSet>,
) -> Result<SweepReport, BackendError> {
    let baseline = backend.compute(snapshot)?;
    let cache = ClassCache::new();
    let fa_baseline = ForwardingAnalysis::with_cache(&baseline.dataplane, &cache);

    let n = contexts.len();
    let mut results: Vec<Option<Result<CutVerdict, SweepError>>> = Vec::new();
    results.resize_with(n, || None);

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            handles.push(s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let Some(cuts) = contexts.get(i) else { break };
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let variant = snapshot.without_links(cuts);
                        backend.compute(&variant).map(|result| {
                            let fa_after =
                                ForwardingAnalysis::with_cache(&result.dataplane, &cache);
                            let findings =
                                differential_reachability_with(&fa_baseline, &fa_after, scope);
                            let lost = deliverability_changes(&findings)
                                .into_iter()
                                .filter(|f| f.before.is_delivered())
                                .count();
                            CutVerdict {
                                cuts: cuts.clone(),
                                findings,
                                lost_reachability: lost,
                            }
                        })
                    }));
                    local.push((
                        i,
                        match outcome {
                            Ok(Ok(v)) => Ok(v),
                            Ok(Err(e)) => Err(SweepError::Backend(e)),
                            Err(payload) => Err(SweepError::Panic(panic_message(payload))),
                        },
                    ));
                }
                local
            }));
        }
        for h in handles {
            // Workers catch per-task panics, so join only fails on a panic
            // outside catch_unwind (e.g. in the scheduler itself). Even
            // then the sweep degrades: the lost worker's contexts stay
            // `None` and are reported as per-context failures below.
            if let Ok(local) = h.join() {
                for (i, verdict) in local {
                    if let Some(slot) = results.get_mut(i) {
                        *slot = Some(verdict);
                    }
                }
            }
        }
    });

    Ok(SweepReport {
        verdicts: results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    Err(SweepError::Panic(
                        "worker thread lost before reporting this context".to_string(),
                    ))
                })
            })
            .collect(),
        class_cache: cache.stats(),
    })
}

/// [`verify_link_cuts_detailed`] with the original all-or-nothing shape:
/// the first failed context aborts the result.
pub fn verify_link_cuts(
    snapshot: &Snapshot,
    backend: &EmulationBackend,
    contexts: Vec<Vec<LinkId>>,
    scope: Option<&IpSet>,
) -> Result<Vec<CutVerdict>, BackendError> {
    verify_link_cuts_detailed(snapshot, backend, contexts, scope)?
        .verdicts
        .into_iter()
        .map(|r| {
            r.map_err(|e| match e {
                SweepError::Backend(b) => b,
                SweepError::Panic(msg) => BackendError(format!("worker panicked: {msg}")),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn context_enumeration_counts() {
        let s = scenarios::six_node(); // 5 links
        assert_eq!(link_cut_contexts(&s, 1).len(), 5);
        assert_eq!(link_cut_contexts(&s, 2).len(), 10);
        assert_eq!(link_cut_contexts(&s, 0).len(), 1);
        assert_eq!(link_cut_context_count(5, 1), 5);
        assert_eq!(link_cut_context_count(5, 2), 10);
        assert_eq!(link_cut_context_count(5, 5), 1);
        assert_eq!(link_cut_context_count(5, 6), 0);
        // The exponential wall the paper worries about:
        assert_eq!(link_cut_context_count(200, 3), 1_313_400);
    }

    #[test]
    fn contexts_are_distinct_subsets() {
        let s = scenarios::six_node();
        let contexts = link_cut_contexts(&s, 2);
        let mut seen = std::collections::BTreeSet::new();
        for c in &contexts {
            assert_eq!(c.len(), 2);
            assert!(seen.insert(c.clone()), "duplicate context {c:?}");
        }
    }

    #[test]
    fn detailed_sweep_matches_plain_sweep() {
        let s = scenarios::six_node();
        let backend = EmulationBackend::default();
        let contexts = link_cut_contexts(&s, 1);
        let plain = verify_link_cuts(&s, &backend, contexts.clone(), None).unwrap();
        let detailed = verify_link_cuts_detailed(&s, &backend, contexts, None).unwrap();
        assert_eq!(plain.len(), detailed.verdicts.len());
        for (p, d) in plain.iter().zip(&detailed.verdicts) {
            let d = d.as_ref().expect("context verified");
            assert_eq!(p.cuts, d.cuts);
            assert_eq!(p.findings, d.findings);
            assert_eq!(p.lost_reachability, d.lost_reachability);
        }
    }

    /// Regression: the point of the class cache is that a 1-link-cut sweep
    /// reuses the per-node classes of nodes a cut did not perturb, instead
    /// of recomputing every node from scratch. The six-node chain is a
    /// worst case — a single cut reconverges most downstream FIBs — yet the
    /// sweep must still recover at least a full baseline's worth of node
    /// analyses from the cache (measured: 12 hits / 24 misses across the
    /// 5-context sweep, i.e. every baseline class reused twice on average).
    #[test]
    fn single_cut_sweep_reuses_baseline_classes() {
        let s = scenarios::six_node();
        let backend = EmulationBackend::default();
        let contexts = link_cut_contexts(&s, 1);
        let n_contexts = contexts.len();
        let n_nodes = backend.compute(&s).unwrap().dataplane.nodes.len();
        let report = verify_link_cuts_detailed(&s, &backend, contexts, None).unwrap();
        assert!(report.verdicts.iter().all(|r| r.is_ok()));
        let (hits, misses) = report.class_cache;
        let total = (n_contexts + 1) * n_nodes;
        assert_eq!(hits + misses, total, "every node analysed exactly once");
        assert!(
            hits >= n_nodes,
            "sweep must reuse at least the baseline's node classes \
             (hits {hits}, misses {misses})"
        );
    }
}
