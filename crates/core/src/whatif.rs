//! What-if exploration over scenario contexts.
//!
//! §6 of the paper: checking invariants "in the face of any single link cut"
//! means one emulation per context; `any k link cuts` grows combinatorially.
//! This module enumerates cut contexts, runs the backend per context (in
//! parallel across OS threads), and reports the differential impact of each
//! context against the baseline snapshot.

use mfv_types::{IpSet, LinkId};
use mfv_verify::{deliverability_changes, differential_reachability, DiffFinding};

use crate::backend::{Backend, BackendError, EmulationBackend};
use crate::snapshot::Snapshot;

/// All `k`-subsets of the snapshot's links — the context space for a
/// "tolerates any k cuts" question. Its size is C(#links, k); the
/// combinatorial growth is exactly the cost §6 warns about.
pub fn link_cut_contexts(snapshot: &Snapshot, k: usize) -> Vec<Vec<LinkId>> {
    let links = snapshot.link_ids();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(
        links: &[LinkId],
        start: usize,
        k: usize,
        current: &mut Vec<LinkId>,
        out: &mut Vec<Vec<LinkId>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..links.len() {
            current.push(links[i].clone());
            rec(links, i + 1, k, current, out);
            current.pop();
        }
    }
    rec(&links, 0, k, &mut current, &mut out);
    out
}

/// Number of contexts for a k-cut sweep without materialising them.
pub fn link_cut_context_count(n_links: usize, k: usize) -> u128 {
    if k > n_links {
        return 0;
    }
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n_links - i) as u128 / (i + 1) as u128;
    }
    acc
}

/// The verdict for one cut context.
#[derive(Clone, Debug)]
pub struct CutVerdict {
    pub cuts: Vec<LinkId>,
    /// Differential findings against the baseline (path changes included).
    pub findings: Vec<DiffFinding>,
    /// Findings where deliverability changed — the outage signal.
    pub lost_reachability: usize,
}

impl CutVerdict {
    /// Did the network keep full reachability under this cut set?
    pub fn survives(&self) -> bool {
        self.lost_reachability == 0
    }
}

/// Runs one emulation per cut context and diffs each against the baseline
/// dataplane. Contexts fan out across OS threads, as the paper proposes
/// ("running emulation for each new context in parallel").
pub fn verify_link_cuts(
    snapshot: &Snapshot,
    backend: &EmulationBackend,
    contexts: Vec<Vec<LinkId>>,
    scope: Option<&IpSet>,
) -> Result<Vec<CutVerdict>, BackendError> {
    let baseline = backend.compute(snapshot)?;

    let mut results: Vec<Option<Result<CutVerdict, BackendError>>> = Vec::new();
    results.resize_with(contexts.len(), || None);

    crossbeam::thread::scope(|scope_| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(contexts.len().max(1));
        let (tx_work, rx_work) = crossbeam::channel::unbounded::<(usize, Vec<LinkId>)>();
        for (i, ctx) in contexts.iter().enumerate() {
            tx_work.send((i, ctx.clone())).unwrap();
        }
        drop(tx_work);
        let (tx_res, rx_res) =
            crossbeam::channel::unbounded::<(usize, Result<CutVerdict, BackendError>)>();

        for _ in 0..threads {
            let rx = rx_work.clone();
            let tx = tx_res.clone();
            let baseline_dp = baseline.dataplane.clone();
            let backend = backend.clone();
            let snapshot = snapshot.clone();
            scope_.spawn(move |_| {
                while let Ok((i, cuts)) = rx.recv() {
                    let variant = snapshot.without_links(&cuts);
                    let verdict = backend.compute(&variant).map(|result| {
                        let findings = differential_reachability(
                            &baseline_dp,
                            &result.dataplane,
                            scope,
                        );
                        let lost = deliverability_changes(&findings)
                            .into_iter()
                            .filter(|f| f.before.is_delivered())
                            .count();
                        CutVerdict { cuts, findings, lost_reachability: lost }
                    });
                    tx.send((i, verdict)).unwrap();
                }
            });
        }
        drop(tx_res);
        while let Ok((i, verdict)) = rx_res.recv() {
            results[i] = Some(verdict);
        }
    })
    .expect("no worker panics");

    results
        .into_iter()
        .map(|r| r.expect("all contexts completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn context_enumeration_counts() {
        let s = scenarios::six_node(); // 5 links
        assert_eq!(link_cut_contexts(&s, 1).len(), 5);
        assert_eq!(link_cut_contexts(&s, 2).len(), 10);
        assert_eq!(link_cut_contexts(&s, 0).len(), 1);
        assert_eq!(link_cut_context_count(5, 1), 5);
        assert_eq!(link_cut_context_count(5, 2), 10);
        assert_eq!(link_cut_context_count(5, 5), 1);
        assert_eq!(link_cut_context_count(5, 6), 0);
        // The exponential wall the paper worries about:
        assert_eq!(link_cut_context_count(200, 3), 1_313_400);
    }

    #[test]
    fn contexts_are_distinct_subsets() {
        let s = scenarios::six_node();
        let contexts = link_cut_contexts(&s, 2);
        let mut seen = std::collections::BTreeSet::new();
        for c in &contexts {
            assert_eq!(c.len(), 2);
            assert!(seen.insert(c.clone()), "duplicate context {c:?}");
        }
    }
}
