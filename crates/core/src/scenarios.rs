//! The scenario library: every topology used by the paper's evaluation,
//! plus parameterised generators for the scale studies.
//!
//! - [`six_node`] / [`six_node_broken`] — Fig. 2 (experiment E1)
//! - [`three_node_line_fig3`] — the Fig. 3 configs, verbatim ordering (E3)
//! - [`isis_line`], [`isis_grid`], [`production_wan`] — scale topologies
//!   (E4, E5)
//! - [`interplay_pair`] — a multi-vendor topology for the cross-vendor
//!   crash study (A3)

// mfv-lint: allow-file(P1, scenario builders parse/index compile-time literals only; a bad literal is a programming error caught by the scenario tests, and no runtime input reaches these paths)

use std::net::Ipv4Addr;

use mfv_config::{DeviceConfig, IfaceSpec, RouterSpec, Vendor};
use mfv_emulator::{ExternalPeerSpec, NodeSpec, Topology};
use mfv_types::{AsNum, NodeId};

use crate::snapshot::Snapshot;

/// Loopback address for router index `i` (1-based).
fn loopback(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 255, (i / 256) as u8, (i % 256) as u8)
}

/// The two addresses of point-to-point link number `k`.
fn p2p(k: usize) -> (Ipv4Addr, Ipv4Addr) {
    let base = (10u32 << 24) | (64 << 16) | (2 * k as u32);
    (Ipv4Addr::from(base), Ipv4Addr::from(base + 1))
}

/// The host part of an "addr/len" literal.
fn host(s: &str) -> Ipv4Addr {
    s.split('/').next().unwrap().parse().unwrap()
}

/// Interface name `idx` for a vendor.
fn ifname(vendor: Vendor, idx: usize) -> String {
    match vendor {
        Vendor::Ceos => format!("Ethernet{}", idx + 1),
        Vendor::Vjunos => format!("ge-0/0/{idx}"),
    }
}

// ---------------------------------------------------------------------------
// Fig. 2: the six-node network (E1)
// ---------------------------------------------------------------------------

/// The paper's Fig. 2 network: three two-router ASes in a chain
/// (AS3 — AS1 — AS2), IS-IS + iBGP inside each AS, eBGP between them.
/// Configurations carry production complexity (management daemons, MPLS/TE)
/// so the same snapshot serves experiment E2's coverage measurement.
/// A cabling list: ((node, port), (node, port)) per link.
type PortLinks = Vec<((String, String), (String, String))>;

pub fn six_node() -> Snapshot {
    six_node_inner(false)
}

/// Fig. 2 with the R2–R3 eBGP session administratively taken down — the
/// "buggy version of the configurations" of E1.
pub fn six_node_broken() -> Snapshot {
    six_node_inner(true)
}

fn six_node_inner(break_r2_r3: bool) -> Snapshot {
    let as1 = AsNum(65001);
    let as2 = AsNum(65002);
    let as3 = AsNum(65003);
    let lo = |i: usize| Ipv4Addr::new(2, 2, 2, i as u8);

    // Link subnets.
    let (r1r2_a, r1r2_b) = ("100.64.0.0/31", "100.64.0.1/31");
    let (r3r4_a, r3r4_b) = ("100.64.0.2/31", "100.64.0.3/31");
    let (r5r6_a, r5r6_b) = ("100.64.0.4/31", "100.64.0.5/31");
    let (r2r3_a, r2r3_b) = ("100.64.1.0/31", "100.64.1.1/31");
    let (r6r1_a, r6r1_b) = ("100.64.1.2/31", "100.64.1.3/31");

    // AS1: r1 (border to AS3), r2 (border to AS2).
    let r1 = RouterSpec::new("r1", as1, lo(1))
        .iface(
            IfaceSpec::new("Ethernet1", r1r2_a.parse().unwrap())
                .with_isis()
                .described("to r2"),
        )
        .iface(IfaceSpec::new("Ethernet2", r6r1_b.parse().unwrap()).described("to r6 (AS3)"))
        .ibgp(lo(2))
        .ebgp(host(r6r1_a), as3)
        .network("2.2.2.1/32".parse().unwrap())
        .redistribute_connected_policed("CONN-OUT")
        .route_map("CONN-OUT", RouterSpec::permit_all_route_map())
        .production();
    let r2 = RouterSpec::new("r2", as1, lo(2))
        .iface(
            IfaceSpec::new("Ethernet1", r1r2_b.parse().unwrap())
                .with_isis()
                .described("to r1"),
        )
        .iface(IfaceSpec::new("Ethernet2", r2r3_a.parse().unwrap()).described("to r3 (AS2)"))
        .ibgp(lo(1))
        .ebgp(host(r2r3_b), as2)
        .network("2.2.2.2/32".parse().unwrap())
        .redistribute_connected_policed("CONN-OUT")
        .route_map("CONN-OUT", RouterSpec::permit_all_route_map())
        .production();

    // AS2: r3 (border), r4.
    let r3 = RouterSpec::new("r3", as2, lo(3))
        .iface(
            IfaceSpec::new("Ethernet1", r3r4_a.parse().unwrap())
                .with_isis()
                .described("to r4"),
        )
        .iface(IfaceSpec::new("Ethernet2", r2r3_b.parse().unwrap()).described("to r2 (AS1)"))
        .ibgp(lo(4))
        .ebgp(host(r2r3_a), as1)
        .network("2.2.2.3/32".parse().unwrap())
        .redistribute_connected_policed("CONN-OUT")
        .route_map("CONN-OUT", RouterSpec::permit_all_route_map())
        .production();
    let r4 = RouterSpec::new("r4", as2, lo(4))
        .iface(
            IfaceSpec::new("Ethernet1", r3r4_b.parse().unwrap())
                .with_isis()
                .described("to r3"),
        )
        .ibgp(lo(3))
        .network("2.2.2.4/32".parse().unwrap())
        .production();

    // AS3: r6 (border), r5.
    let r5 = RouterSpec::new("r5", as3, lo(5))
        .iface(
            IfaceSpec::new("Ethernet1", r5r6_a.parse().unwrap())
                .with_isis()
                .described("to r6"),
        )
        .ibgp(lo(6))
        .network("2.2.2.5/32".parse().unwrap())
        .production();
    let r6 = RouterSpec::new("r6", as3, lo(6))
        .iface(
            IfaceSpec::new("Ethernet1", r5r6_b.parse().unwrap())
                .with_isis()
                .described("to r5"),
        )
        .iface(IfaceSpec::new("Ethernet2", r6r1_a.parse().unwrap()).described("to r1 (AS1)"))
        .ibgp(lo(5))
        .ebgp(host(r6r1_b), as1)
        .network("2.2.2.6/32".parse().unwrap())
        .redistribute_connected_policed("CONN-OUT")
        .route_map("CONN-OUT", RouterSpec::permit_all_route_map())
        .production();

    let mut t = Topology::new(if break_r2_r3 {
        "six-node-broken"
    } else {
        "six-node"
    });
    for spec in [&r1, &r2, &r3, &r4, &r5, &r6] {
        let mut cfg = spec.build();
        if break_r2_r3 && spec.name == "r2" {
            if let Some(bgp) = cfg.bgp.as_mut() {
                if let Some(nb) = bgp
                    .neighbors
                    .iter_mut()
                    .find(|n| n.peer == "100.64.1.1".parse::<Ipv4Addr>().unwrap())
                {
                    nb.shutdown = true;
                }
            }
        }
        t.add_node(NodeSpec::from_config(spec.name.clone(), &cfg));
    }
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    t.add_link(("r3", "Ethernet1"), ("r4", "Ethernet1"));
    t.add_link(("r5", "Ethernet1"), ("r6", "Ethernet1"));
    t.add_link(("r2", "Ethernet2"), ("r3", "Ethernet2"));
    t.add_link(("r6", "Ethernet2"), ("r1", "Ethernet2"));

    Snapshot::new(t.name.clone(), t)
}

/// Node names of each AS in the six-node scenario.
pub fn six_node_as_members() -> Vec<(AsNum, Vec<NodeId>)> {
    vec![
        (AsNum(65001), vec!["r1".into(), "r2".into()]),
        (AsNum(65002), vec!["r3".into(), "r4".into()]),
        (AsNum(65003), vec!["r5".into(), "r6".into()]),
    ]
}

// ---------------------------------------------------------------------------
// conflint cross-validation base (E7)
// ---------------------------------------------------------------------------

/// The E7 cross-validation network: two two-router ASes (IS-IS + iBGP
/// inside each, eBGP r2 <-> r3 between them), conflint-clean by
/// construction. The seeded-misconfig injector
/// (`mfv_config::inject_misconfig`) perturbs these configs one family at a
/// time; every family has at least one viable injection site here.
pub fn conflint_base_configs() -> Vec<DeviceConfig> {
    let as1 = AsNum(65101);
    let as2 = AsNum(65102);
    let lo = |i: usize| Ipv4Addr::new(3, 3, 3, i as u8);

    let r1 = RouterSpec::new("r1", as1, lo(1))
        .iface(
            IfaceSpec::new("Ethernet1", "100.66.0.0/31".parse().unwrap())
                .with_isis()
                .described("to r2"),
        )
        .ibgp(lo(2))
        .network("3.3.3.1/32".parse().unwrap());
    let r2 = RouterSpec::new("r2", as1, lo(2))
        .iface(
            IfaceSpec::new("Ethernet1", "100.66.0.1/31".parse().unwrap())
                .with_isis()
                .described("to r1"),
        )
        .iface(
            IfaceSpec::new("Ethernet2", "100.66.1.0/31".parse().unwrap())
                .described("to r3 (AS65102)"),
        )
        .ibgp(lo(1))
        .ebgp(host("100.66.1.1/31"), as2)
        .network("3.3.3.2/32".parse().unwrap());
    let r3 = RouterSpec::new("r3", as2, lo(3))
        .iface(
            IfaceSpec::new("Ethernet1", "100.66.0.2/31".parse().unwrap())
                .with_isis()
                .described("to r4"),
        )
        .iface(
            IfaceSpec::new("Ethernet2", "100.66.1.1/31".parse().unwrap())
                .described("to r2 (AS65101)"),
        )
        .ibgp(lo(4))
        .ebgp(host("100.66.1.0/31"), as1)
        .network("3.3.3.3/32".parse().unwrap());
    let r4 = RouterSpec::new("r4", as2, lo(4))
        .iface(
            IfaceSpec::new("Ethernet1", "100.66.0.3/31".parse().unwrap())
                .with_isis()
                .described("to r3"),
        )
        .ibgp(lo(3))
        .network("3.3.3.4/32".parse().unwrap());

    vec![r1.build(), r2.build(), r3.build(), r4.build()]
}

/// Wires [`conflint_base_configs`] — verbatim or after injection — into a
/// topology. The cabling is fixed; only the configs vary across E7 runs.
pub fn conflint_base_topology(name: &str, configs: &[DeviceConfig]) -> Topology {
    let mut t = Topology::new(name);
    for cfg in configs {
        t.add_node(NodeSpec::from_config(cfg.hostname.clone(), cfg));
    }
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    t.add_link(("r3", "Ethernet1"), ("r4", "Ethernet1"));
    t.add_link(("r2", "Ethernet2"), ("r3", "Ethernet2"));
    t
}

/// The unperturbed E7 network as a snapshot (conflint-clean).
pub fn conflint_base() -> Snapshot {
    let configs = conflint_base_configs();
    Snapshot::new(
        "conflint-base".to_string(),
        conflint_base_topology("conflint-base", &configs),
    )
}

// ---------------------------------------------------------------------------
// Fig. 3: the three-node line with the model-confusing ordering (E3)
// ---------------------------------------------------------------------------

/// The Fig. 3 experiment: a 3-node line (r1 — r2 — r3) running IS-IS only,
/// where r1's interface stanza puts `ip address` *before* `no switchport`
/// (perfectly valid on the device; silently mis-parsed by the model).
pub fn three_node_line_fig3() -> Snapshot {
    // r1's config reproduces the paper's Fig. 3 snippet verbatim (plus a
    // hostname line so the snapshot is self-describing).
    let r1 = "\
hostname r1
router isis default
   net 49.0001.1010.1040.1030.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive-interface default
!
interface Ethernet2
   ip address 100.64.0.1/31
   no switchport
   isis enable default
!
";
    let r2 = "\
hostname r2
router isis default
   net 49.0001.1010.1040.1031.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive-interface default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.0/31
   isis enable default
!
interface Ethernet2
   no switchport
   ip address 100.64.0.2/31
   isis enable default
!
";
    let r3 = "\
hostname r3
router isis default
   net 49.0001.1010.1040.1032.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.3/32
   isis enable default
   isis passive-interface default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.3/31
   isis enable default
!
";
    let mut t = Topology::new("three-node-line-fig3");
    for (name, text) in [("r1", r1), ("r2", r2), ("r3", r3)] {
        t.add_node(NodeSpec {
            name: name.into(),
            vendor: Vendor::Ceos,
            config_text: text.to_string(),
        });
    }
    t.add_link(("r1", "Ethernet2"), ("r2", "Ethernet1"));
    t.add_link(("r2", "Ethernet2"), ("r3", "Ethernet1"));
    Snapshot::new("three-node-line-fig3", t)
}

// ---------------------------------------------------------------------------
// Scale topologies (E4, E5)
// ---------------------------------------------------------------------------

/// A line of `n` IS-IS routers (scale bring-up workload).
pub fn isis_line(n: usize) -> Snapshot {
    assert!(n >= 2);
    let mut t = Topology::new(format!("isis-line-{n}"));
    let mut link_no = 0usize;
    let mut specs = Vec::with_capacity(n);
    for i in 1..=n {
        specs.push(RouterSpec::new(format!("r{i}"), AsNum(65000), loopback(i)));
    }
    for i in 0..n - 1 {
        let (a, b) = p2p(link_no);
        link_no += 1;
        specs[i] = std::mem::replace(
            &mut specs[i],
            RouterSpec::new("x", AsNum(0), Ipv4Addr::UNSPECIFIED),
        )
        .iface(
            IfaceSpec::new(
                ifname(Vendor::Ceos, 1), // "right" port
                mfv_types::IfaceAddr::new(a, 31),
            )
            .with_isis(),
        );
        specs[i + 1] = std::mem::replace(
            &mut specs[i + 1],
            RouterSpec::new("x", AsNum(0), Ipv4Addr::UNSPECIFIED),
        )
        .iface(
            IfaceSpec::new(
                ifname(Vendor::Ceos, 0), // "left" port
                mfv_types::IfaceAddr::new(b, 31),
            )
            .with_isis(),
        );
    }
    for spec in &specs {
        t.add_node(NodeSpec::from_config(spec.name.clone(), &spec.build()));
    }
    for i in 1..n {
        t.add_link(
            (format!("r{i}"), ifname(Vendor::Ceos, 1)),
            (format!("r{}", i + 1), ifname(Vendor::Ceos, 0)),
        );
    }
    Snapshot::new(t.name.clone(), t)
}

/// A `w`×`h` IS-IS grid (denser flooding/SPF workload).
pub fn isis_grid(w: usize, h: usize) -> Snapshot {
    assert!(w >= 1 && h >= 1 && w * h >= 2);
    let idx = |x: usize, y: usize| y * w + x + 1;
    let name = |x: usize, y: usize| format!("r{}", idx(x, y));
    let mut specs: Vec<RouterSpec> = (0..w * h)
        .map(|i| RouterSpec::new(format!("r{}", i + 1), AsNum(65000), loopback(i + 1)))
        .collect();
    let mut links: PortLinks = Vec::new();
    let mut link_no = 0usize;
    // Port numbering per node: sequential as links are attached.
    let mut port_count = vec![0usize; w * h];
    for y in 0..h {
        for x in 0..w {
            let me = idx(x, y) - 1;
            for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                if nx >= w || ny >= h {
                    continue;
                }
                let peer = idx(nx, ny) - 1;
                let (a, b) = p2p(link_no);
                link_no += 1;
                let my_port = ifname(Vendor::Ceos, port_count[me]);
                port_count[me] += 1;
                let peer_port = ifname(Vendor::Ceos, port_count[peer]);
                port_count[peer] += 1;
                specs[me] = specs[me].clone().iface(
                    IfaceSpec::new(my_port.clone(), mfv_types::IfaceAddr::new(a, 31)).with_isis(),
                );
                specs[peer] = specs[peer].clone().iface(
                    IfaceSpec::new(peer_port.clone(), mfv_types::IfaceAddr::new(b, 31)).with_isis(),
                );
                links.push(((name(x, y), my_port), (name(nx, ny), peer_port)));
            }
        }
    }
    let mut t = Topology::new(format!("isis-grid-{w}x{h}"));
    for spec in &specs {
        t.add_node(NodeSpec::from_config(spec.name.clone(), &spec.build()));
    }
    for ((an, ai), (bn, bi)) in links {
        t.add_link((an, ai), (bn, bi));
    }
    Snapshot::new(t.name.clone(), t)
}

/// A production-like WAN: a ring of `n` routers with chord links, IS-IS
/// everywhere, an iBGP full mesh with next-hop-self, production-complexity
/// configs, optionally alternating vendors, and optional external BGP route
/// feeds (the E5 workload).
pub fn production_wan(
    n: usize,
    chords: usize,
    multi_vendor: bool,
    routes_per_feed: usize,
) -> Snapshot {
    assert!(n >= 3);
    let asn = AsNum(65000);
    let vendor_of = |i: usize| {
        if multi_vendor && i % 3 == 2 {
            Vendor::Vjunos
        } else {
            Vendor::Ceos
        }
    };
    let mut specs: Vec<RouterSpec> = (1..=n)
        .map(|i| {
            let mut s = RouterSpec::new(format!("r{i}"), asn, loopback(i)).vendor(vendor_of(i - 1));
            // iBGP full mesh.
            for j in 1..=n {
                if j != i {
                    s = s.ibgp(loopback(j));
                }
            }
            s = s.network(mfv_types::Prefix::host(loopback(i)));
            if vendor_of(i - 1) == Vendor::Ceos {
                s = s.production();
            }
            s
        })
        .collect();

    let mut links: PortLinks = Vec::new();
    let mut port_count = vec![0usize; n];
    let mut link_no = 0usize;
    let mut connect = |specs: &mut Vec<RouterSpec>,
                       links: &mut PortLinks,
                       port_count: &mut Vec<usize>,
                       i: usize,
                       j: usize| {
        let (a, b) = p2p(link_no);
        link_no += 1;
        let vi = vendor_of(i);
        let vj = vendor_of(j);
        let pi = ifname(vi, port_count[i]);
        port_count[i] += 1;
        let pj = ifname(vj, port_count[j]);
        port_count[j] += 1;
        specs[i] = specs[i]
            .clone()
            .iface(IfaceSpec::new(pi.clone(), mfv_types::IfaceAddr::new(a, 31)).with_isis());
        specs[j] = specs[j]
            .clone()
            .iface(IfaceSpec::new(pj.clone(), mfv_types::IfaceAddr::new(b, 31)).with_isis());
        links.push(((format!("r{}", i + 1), pi), (format!("r{}", j + 1), pj)));
    };

    for i in 0..n {
        connect(&mut specs, &mut links, &mut port_count, i, (i + 1) % n);
    }
    // Deterministic chords spread around the ring.
    for c in 0..chords {
        let i = (c * 7) % n;
        let j = (i + n / 2 + c) % n;
        if i != j && (i + 1) % n != j && (j + 1) % n != i {
            connect(&mut specs, &mut links, &mut port_count, i, j);
        }
    }

    // External feeds on r1 and r(n/2): stub interfaces + eBGP neighbors.
    let mut feeds = Vec::new();
    if routes_per_feed > 0 {
        for (feed_no, node_idx) in [0usize, n / 2].into_iter().enumerate() {
            let peer_as = AsNum(64900 + feed_no as u32);
            let subnet_base = (100u32 << 24) | (127 << 16) | ((feed_no as u32) << 8);
            let router_side = Ipv4Addr::from(subnet_base);
            let peer_side = Ipv4Addr::from(subnet_base + 1);
            let vendor = vendor_of(node_idx);
            let port = ifname(vendor, port_count[node_idx]);
            port_count[node_idx] += 1;
            specs[node_idx] = specs[node_idx]
                .clone()
                .iface(IfaceSpec::new(
                    port,
                    mfv_types::IfaceAddr::new(router_side, 31),
                ))
                .ebgp(peer_side, peer_as);
            feeds.push(ExternalPeerSpec {
                addr: peer_side,
                asn: peer_as,
                attach_to: format!("r{}", node_idx + 1).into(),
                route_count: routes_per_feed,
                base_octet: Some(20 + (feed_no as u8) * 8),
            });
        }
    }

    let mut t = Topology::new(format!("production-wan-{n}"));
    for spec in &specs {
        t.add_node(NodeSpec::from_config(spec.name.clone(), &spec.build()));
    }
    for ((an, ai), (bn, bi)) in links {
        t.add_link((an, ai), (bn, bi));
    }
    t.external_peers = feeds;
    Snapshot::new(t.name.clone(), t)
}

// ---------------------------------------------------------------------------
// Cross-vendor interplay topology (A3)
// ---------------------------------------------------------------------------

/// A four-node multi-vendor chain for the interplay-crash study:
/// `victim (ceos) — transit (ceos) — transit2 (ceos) — emitter (vjunos)`.
/// The bug profiles (who emits the unusual attribute, whose parser dies) are
/// injected via [`crate::backend::EmulationBackend::profiles`].
pub fn interplay_chain() -> Snapshot {
    let asn = AsNum(65000);
    let lo = |i: usize| Ipv4Addr::new(2, 2, 2, i as u8);
    let names = ["victim", "transit", "transit2", "emitter"];
    let vendors = [Vendor::Ceos, Vendor::Ceos, Vendor::Ceos, Vendor::Vjunos];

    let mut specs: Vec<RouterSpec> = (0..4)
        .map(|i| {
            let mut s = RouterSpec::new(names[i], asn, lo(i + 1)).vendor(vendors[i]);
            for j in 0..4 {
                if j != i {
                    s = s.ibgp(lo(j + 1));
                }
            }
            s.network(mfv_types::Prefix::host(lo(i + 1)))
        })
        .collect();

    let mut links = Vec::new();
    let mut port_count = [0usize; 4];
    for i in 0..3 {
        let (a, b) = p2p(i);
        let pi = ifname(vendors[i], port_count[i]);
        port_count[i] += 1;
        let pj = ifname(vendors[i + 1], port_count[i + 1]);
        port_count[i + 1] += 1;
        specs[i] = specs[i]
            .clone()
            .iface(IfaceSpec::new(pi.clone(), mfv_types::IfaceAddr::new(a, 31)).with_isis());
        specs[i + 1] = specs[i + 1]
            .clone()
            .iface(IfaceSpec::new(pj.clone(), mfv_types::IfaceAddr::new(b, 31)).with_isis());
        links.push(((names[i].to_string(), pi), (names[i + 1].to_string(), pj)));
    }

    let mut t = Topology::new("interplay-chain");
    for spec in &specs {
        t.add_node(NodeSpec::from_config(spec.name.clone(), &spec.build()));
    }
    for ((an, ai), (bn, bi)) in links {
        t.add_link((an, ai), (bn, bi));
    }
    Snapshot::new("interplay-chain", t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_node_topology_is_wellformed() {
        let s = six_node();
        assert_eq!(s.topology.nodes.len(), 6);
        assert_eq!(s.topology.links.len(), 5);
        assert_eq!(s.topology.validate(), Ok(()));
        // All configs parse in their vendor dialect.
        for n in &s.topology.nodes {
            let parsed = n.parse_config().unwrap();
            assert!(
                parsed.warnings.is_empty(),
                "{}: {:?}",
                n.name,
                parsed.warnings
            );
        }
    }

    #[test]
    fn six_node_config_lengths_match_paper_band() {
        // Paper: "the number of lines in each configuration ranges from
        // 62-82".
        let s = six_node();
        for n in &s.topology.nodes {
            let lines = n
                .config_text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count();
            assert!((55..=95).contains(&lines), "{} has {lines} lines", n.name);
        }
    }

    #[test]
    fn six_node_broken_differs_only_in_r2_shutdown() {
        let a = six_node();
        let b = six_node_broken();
        for (na, nb) in a.topology.nodes.iter().zip(b.topology.nodes.iter()) {
            if na.name == NodeId::from("r2") {
                assert_ne!(na.config_text, nb.config_text);
                assert!(nb.config_text.contains("shutdown"));
            } else {
                assert_eq!(na.config_text, nb.config_text, "{}", na.name);
            }
        }
    }

    #[test]
    fn fig3_keeps_paper_statement_order() {
        let s = three_node_line_fig3();
        let r1 = &s.topology.node(&"r1".into()).unwrap().config_text;
        let addr_pos = r1.find("ip address 100.64.0.1/31").unwrap();
        let swp_pos = r1.find("no switchport").unwrap();
        assert!(addr_pos < swp_pos, "Fig. 3 ordering must be preserved");
        assert_eq!(s.topology.validate(), Ok(()));
    }

    #[test]
    fn isis_line_and_grid_validate() {
        for n in [2, 5, 10] {
            let s = isis_line(n);
            assert_eq!(s.topology.nodes.len(), n);
            assert_eq!(s.topology.links.len(), n - 1);
            assert_eq!(s.topology.validate(), Ok(()));
        }
        let g = isis_grid(3, 3);
        assert_eq!(g.topology.nodes.len(), 9);
        assert_eq!(g.topology.links.len(), 12);
        assert_eq!(g.topology.validate(), Ok(()));
    }

    #[test]
    fn production_wan_validates_and_mixes_vendors() {
        let s = production_wan(9, 2, true, 100);
        assert_eq!(s.topology.nodes.len(), 9);
        assert_eq!(s.topology.validate(), Ok(()));
        let vendors: std::collections::BTreeSet<_> =
            s.topology.nodes.iter().map(|n| n.vendor).collect();
        assert_eq!(vendors.len(), 2, "multi-vendor");
        assert_eq!(s.topology.external_peers.len(), 2);
        // Every config parses in its own dialect.
        for n in &s.topology.nodes {
            n.parse_config()
                .unwrap_or_else(|e| panic!("{}: {e}", n.name));
        }
    }

    #[test]
    fn interplay_chain_validates() {
        let s = interplay_chain();
        assert_eq!(s.topology.nodes.len(), 4);
        assert_eq!(s.topology.validate(), Ok(()));
        assert_eq!(
            s.topology.node(&"emitter".into()).unwrap().vendor,
            Vendor::Vjunos
        );
    }

    #[test]
    fn p2p_allocator_is_disjoint() {
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..1000 {
            let (a, b) = p2p(k);
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
    }
}

// ---------------------------------------------------------------------------
// Route-reflector cluster and Clos fabric (extension scenarios)
// ---------------------------------------------------------------------------

/// A route-reflector cluster: one RR in the middle, `clients` spokes. Each
/// client originates its loopback; clients never peer with each other —
/// reflection is the only way their routes can spread, exercising the iBGP
/// reflection rules end to end.
pub fn rr_cluster(clients: usize) -> Snapshot {
    assert!(clients >= 2);
    let asn = AsNum(65000);
    let rr_lo = loopback(1);
    let mut rr = RouterSpec::new("rr", asn, rr_lo);
    let mut t = Topology::new(format!("rr-cluster-{clients}"));
    let mut links = Vec::new();

    for c in 0..clients {
        let name = format!("c{}", c + 1);
        let c_lo = loopback(c + 2);
        let (a, b) = p2p(c);
        let rr_port = ifname(Vendor::Ceos, c);
        let client_port = ifname(Vendor::Ceos, 0);
        rr = rr
            .iface(IfaceSpec::new(rr_port.clone(), mfv_types::IfaceAddr::new(a, 31)).with_isis())
            .ibgp_rr_client(c_lo);
        let client = RouterSpec::new(name.clone(), asn, c_lo)
            .iface(
                IfaceSpec::new(client_port.clone(), mfv_types::IfaceAddr::new(b, 31)).with_isis(),
            )
            .ibgp(rr_lo)
            .network(mfv_types::Prefix::host(c_lo));
        t.add_node(NodeSpec::from_config(name.clone(), &client.build()));
        links.push((("rr".to_string(), rr_port), (name, client_port)));
    }
    rr = rr.network(mfv_types::Prefix::host(rr_lo));
    t.nodes.insert(0, NodeSpec::from_config("rr", &rr.build()));
    for ((an, ai), (bn, bi)) in links {
        t.add_link((an, ai), (bn, bi));
    }
    Snapshot::new(t.name.clone(), t)
}

/// A 2-tier Clos fabric: `spines` spine routers, `leaves` leaf routers,
/// full bipartite IS-IS links with equal metrics and `maximum-paths` wide
/// enough for full ECMP — the multipath-consistency workload.
pub fn clos(spines: usize, leaves: usize) -> Snapshot {
    assert!(spines >= 1 && leaves >= 2);
    let asn = AsNum(65000);
    let mut spine_specs: Vec<RouterSpec> = (0..spines)
        .map(|s| RouterSpec::new(format!("s{}", s + 1), asn, loopback(s + 1)))
        .collect();
    let mut leaf_specs: Vec<RouterSpec> = (0..leaves)
        .map(|l| RouterSpec::new(format!("l{}", l + 1), asn, loopback(100 + l)))
        .collect();
    let mut links = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for s in 0..spines {
        for l in 0..leaves {
            let (a, b) = p2p(s * leaves + l);
            let spine_port = ifname(Vendor::Ceos, l);
            let leaf_port = ifname(Vendor::Ceos, s);
            spine_specs[s] = spine_specs[s].clone().iface(
                IfaceSpec::new(spine_port.clone(), mfv_types::IfaceAddr::new(a, 31)).with_isis(),
            );
            leaf_specs[l] = leaf_specs[l].clone().iface(
                IfaceSpec::new(leaf_port.clone(), mfv_types::IfaceAddr::new(b, 31)).with_isis(),
            );
            links.push((
                (format!("s{}", s + 1), spine_port),
                (format!("l{}", l + 1), leaf_port),
            ));
        }
    }
    let mut t = Topology::new(format!("clos-{spines}x{leaves}"));
    for spec in spine_specs.iter().chain(leaf_specs.iter()) {
        t.add_node(NodeSpec::from_config(spec.name.clone(), &spec.build()));
    }
    for ((an, ai), (bn, bi)) in links {
        t.add_link((an, ai), (bn, bi));
    }
    Snapshot::new(t.name.clone(), t)
}

/// The 1,000-router scale scenario (the paper's §5 deployment target):
/// `regions` regional networks of `per_region` routers each. Inside a
/// region: an IS-IS line, a route reflector at `x00` with every other
/// router as its client (iBGP over loopbacks), and one customer prefix
/// (`198.18.<region>.0/24`) originated at the reflector. Between regions:
/// an eBGP ring — each region's last router (`x49`-style exit border)
/// peers with the next region's reflector over a dedicated non-IGP /31,
/// one private AS per region, and the exit border exports its region's
/// loopbacks by redistributing IS-IS into BGP through a prefix-list-policed
/// route-map. Every prefix therefore crosses reflection, redistribution,
/// policy, and eBGP propagation on its way around the ring.
///
/// `regional_wan(20, 50)` is the `cluster1000` bench topology: 1,000
/// routers, 1,000 links, ~1,000 globally-propagated prefixes.
pub fn regional_wan(regions: usize, per_region: usize) -> Snapshot {
    assert!(regions >= 2, "the eBGP ring needs at least two regions");
    assert!(per_region >= 3, "a region needs entry, middle, and exit");
    assert!(regions <= 200 && per_region <= 256, "address plan bounds");
    let region_as = |r: usize| AsNum(64512 + r as u32);
    let lo = |r: usize, i: usize| loopback(r * per_region + i + 1);
    let name = |r: usize, i: usize| format!("r{r:02}x{i:02}");
    let mut t = Topology::new(format!("regional-wan-{regions}x{per_region}"));
    let mut links: PortLinks = Vec::new();
    let mut p2p_ctr = 0usize;

    for r in 0..regions {
        let asn = region_as(r);
        let rr_lo = lo(r, 0);
        for i in 0..per_region {
            let mut spec = RouterSpec::new(name(r, i), asn, lo(r, i));
            // IS-IS line: Ethernet1 toward the lower neighbour, Ethernet2
            // toward the higher one.
            if i > 0 {
                let (_, b) = p2p(p2p_ctr - 1);
                spec = spec.iface(
                    IfaceSpec::new(ifname(Vendor::Ceos, 0), mfv_types::IfaceAddr::new(b, 31))
                        .with_isis(),
                );
            }
            if i + 1 < per_region {
                let (a, _) = p2p(p2p_ctr);
                p2p_ctr += 1;
                spec = spec.iface(
                    IfaceSpec::new(ifname(Vendor::Ceos, 1), mfv_types::IfaceAddr::new(a, 31))
                        .with_isis(),
                );
                links.push((
                    (name(r, i), ifname(Vendor::Ceos, 1)),
                    (name(r, i + 1), ifname(Vendor::Ceos, 0)),
                ));
            }
            if i == 0 {
                // Route reflector + regional customer prefix + ring entry.
                for c in 1..per_region {
                    spec = spec.ibgp_rr_client(lo(r, c));
                }
                let customer: mfv_types::Prefix = format!("198.18.{r}.0/24").parse().unwrap();
                spec = spec
                    .iface(IfaceSpec::new(
                        "Ethernet9",
                        format!("198.18.{r}.1/24").parse().unwrap(),
                    ))
                    .network(customer);
                let prev = (r + regions - 1) % regions;
                spec = spec
                    .iface(IfaceSpec::new(
                        "Ethernet8",
                        format!("172.16.{prev}.1/31").parse().unwrap(),
                    ))
                    .ebgp(format!("172.16.{prev}.0").parse().unwrap(), region_as(prev));
            } else {
                spec = spec.ibgp(rr_lo);
            }
            if i + 1 == per_region {
                // Exit border: eBGP to the next region's reflector, and the
                // region's loopbacks exported via policed redistribution.
                spec = spec
                    .iface(IfaceSpec::new(
                        "Ethernet8",
                        format!("172.16.{r}.0/31").parse().unwrap(),
                    ))
                    .ebgp(
                        format!("172.16.{r}.1").parse().unwrap(),
                        region_as((r + 1) % regions),
                    )
                    .redistribute_isis_policed("EXPORT-LOOPBACKS")
                    .route_map(
                        "EXPORT-LOOPBACKS",
                        mfv_config::RouteMap {
                            entries: vec![mfv_config::RouteMapEntry {
                                seq: 10,
                                action: mfv_config::PolicyAction::Permit,
                                matches: vec![mfv_config::MatchClause::PrefixList(
                                    "LOOPBACKS".into(),
                                )],
                                sets: Vec::new(),
                            }],
                        },
                    )
                    .prefix_list(
                        "LOOPBACKS",
                        mfv_config::PrefixList {
                            entries: vec![mfv_config::PrefixListEntry {
                                seq: 10,
                                action: mfv_config::PolicyAction::Permit,
                                prefix: "10.255.0.0/16".parse().unwrap(),
                                ge: None,
                                le: Some(32),
                            }],
                        },
                    );
            }
            t.add_node(NodeSpec::from_config(spec.name.clone(), &spec.build()));
        }
        links.push((
            (name(r, per_region - 1), "Ethernet8".to_string()),
            (name((r + 1) % regions, 0), "Ethernet8".to_string()),
        ));
    }
    for ((an, ai), (bn, bi)) in links {
        t.add_link((an, ai), (bn, bi));
    }
    Snapshot::new(t.name.clone(), t)
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn rr_cluster_validates() {
        let s = rr_cluster(4);
        assert_eq!(s.topology.nodes.len(), 5);
        assert_eq!(s.topology.links.len(), 4);
        assert_eq!(s.topology.validate(), Ok(()));
        // The hub's config carries route-reflector-client statements.
        let rr = s.topology.node(&"rr".into()).unwrap();
        assert!(
            rr.config_text.contains("route-reflector-client"),
            "{}",
            rr.config_text
        );
    }

    #[test]
    fn clos_validates_and_is_bipartite() {
        let s = clos(2, 4);
        assert_eq!(s.topology.nodes.len(), 6);
        assert_eq!(s.topology.links.len(), 8);
        assert_eq!(s.topology.validate(), Ok(()));
    }

    #[test]
    fn regional_wan_validates_and_converges_at_small_scale() {
        use mfv_emulator::{Cluster, Emulation, EmulationConfig};

        let s = regional_wan(3, 4);
        assert_eq!(s.topology.nodes.len(), 12);
        // Per region: 3 IS-IS line links; plus one ring link per region.
        assert_eq!(s.topology.links.len(), 12);
        assert_eq!(s.topology.validate(), Ok(()));

        let mut emu = Emulation::new(
            s.topology,
            Cluster::of_size(2),
            EmulationConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let report = emu.run_until_converged();
        assert!(report.converged, "{report:?}");
        // Cross-region: a mid-region client reaches another region's
        // customer prefix (via reflection → redistribution → the eBGP
        // ring) and a foreign loopback (via the policed IS-IS export).
        let r = emu.router(&"r00x01".into()).unwrap();
        assert!(
            r.fib().lookup("198.18.2.9".parse().unwrap()).is_some(),
            "customer prefix of region 2 must be reachable from region 0"
        );
        assert!(
            r.fib().lookup(super::loopback(1 * 4 + 2 + 1)).is_some(),
            "region 1 loopbacks must be exported around the ring"
        );
    }
}
