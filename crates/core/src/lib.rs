//! The model-free verification pipeline — the paper's primary contribution.
//!
//! ```text
//!   configs + topology + context          (Snapshot)
//!        │
//!        ▼
//!   control-plane emulation               (EmulationBackend → mfv-emulator)
//!        │  converged?
//!        ▼
//!   AFT extraction over gNMI              (mfv-mgmt)
//!        │
//!        ▼
//!   dataplane model                        (mfv-dataplane)
//!        │
//!        ▼
//!   verification queries                   (mfv-verify)
//! ```
//!
//! The traditional path ([`ModelBackend`]) slots into the same pipeline at
//! the dataplane step, which is what makes model-vs-model-free differential
//! comparisons (experiment E3) a one-query affair.
//!
//! - [`snapshot`] — verification inputs and what-if variants
//! - [`backend`] — [`EmulationBackend`] (model-free) and [`ModelBackend`]
//! - [`extract`] — AFT extraction with per-node status and coverage
//! - [`scenarios`] — every topology in the paper's evaluation
//! - [`watch`] — continuous verification: a live emulation streamed through
//!   the fault-tolerant watcher into incrementally re-evaluated standing
//!   queries
//! - [`whatif`] — link-cut context enumeration and parallel sweeps

pub mod backend;
pub mod extract;
pub mod scenarios;
pub mod snapshot;
pub mod watch;
pub mod whatif;
pub mod xval;

pub use backend::{
    Backend, BackendError, BackendMeta, BackendResult, ConflintGate, ConflintSummary,
    EmulationBackend, ModelBackend,
};
pub use extract::{extract_snapshot, extract_snapshot_observed, ExtractedSnapshot};
pub use snapshot::Snapshot;
pub use watch::{run_watch, WatchReport, WatchRunConfig};
pub use whatif::{
    link_cut_context_count, link_cut_contexts, verify_link_cuts, verify_link_cuts_detailed,
    CutVerdict, SweepError, SweepReport,
};

// Re-export the observability sink so pipeline callers need only `mfv-core`.
pub use mfv_obs as obs;

// Re-export the query surface so downstream users need only `mfv-core`.
pub use mfv_verify::observed_query;
pub use mfv_verify::{
    deliverability_changes, detect_blackholes, detect_loops, detect_multipath_inconsistency,
    differential_reachability, differential_reachability_with, disposition_summary,
    qualified_reachability, qualified_unreachable_pairs, reachability, traceroute,
    unreachable_pairs, ClassCache, Coverage, DiffFinding, Disposition, ForwardingAnalysis,
    Qualified, StandingQueries, Verdict, VerdictUpdate,
};
