//! Snapshot extraction with graceful degradation.
//!
//! The naive pipeline step "dump every AFT, rebuild the dataplane" becomes
//! a total function here: [`extract_snapshot`] runs a retrying
//! [`Collector`] over every topology node and always returns a dataplane —
//! possibly covering only a subset of nodes — together with per-node
//! [`ExtractionStatus`] and a coverage fraction. Verification downstream
//! qualifies its answers with that coverage instead of aborting (see
//! `mfv_verify::coverage`).

use std::collections::BTreeMap;

use mfv_dataplane::Dataplane;
use mfv_emulator::Emulation;
use mfv_mgmt::{collect_afts, dataplane_from_afts, Collector};
use mfv_types::{ExtractionStatus, NodeId};

/// A dataplane plus the provenance of every node's state in it.
#[derive(Clone, Debug)]
pub struct ExtractedSnapshot {
    /// Dataplane over the covered nodes only; links touching a missing
    /// node are dropped with it.
    pub dataplane: Dataplane,
    /// Per-node extraction outcome for every topology node.
    pub status: BTreeMap<NodeId, ExtractionStatus>,
    /// Fraction of topology nodes with extracted state.
    pub coverage: f64,
    /// Total management-plane RPC attempts (retries included).
    pub attempts: u64,
}

impl ExtractedSnapshot {
    pub fn is_complete(&self) -> bool {
        self.status.values().all(|s| s.is_covered())
    }
}

/// Extracts a dataplane from a (possibly still-degraded) emulation. Nodes
/// whose router instance is gone — evicted by a machine failure and not yet
/// rescheduled — report `Missing("no router instance")`; nodes whose RPC
/// path fails past the collector's retry budget report `Missing` with the
/// exhaustion reason. Never panics, never aborts the sweep.
pub fn extract_snapshot(emu: &Emulation, collector: &Collector) -> ExtractedSnapshot {
    extract_snapshot_observed(emu, collector, &mut mfv_obs::Obs::new())
}

/// Like [`extract_snapshot`], but flushes collector tallies (`mgmt.*`
/// metrics) and the `extract` phase span — sim time from the emulation's
/// current clock, wall time from a local stopwatch — into `obs`.
pub fn extract_snapshot_observed(
    emu: &Emulation,
    collector: &Collector,
    obs: &mut mfv_obs::Obs,
) -> ExtractedSnapshot {
    let wall = mfv_obs::WallTimer::start();
    let nodes: Vec<_> = emu
        .topology
        .nodes
        .iter()
        .map(|n| (n.name.clone(), emu.router(&n.name)))
        .collect();
    let report = collector.collect(nodes);
    let afts = collect_afts(&report.telemetry);
    let reference = emu.dataplane();
    let dataplane = dataplane_from_afts(&afts, &reference);
    report.observe_into(obs);
    let start = emu.now();
    obs.phases
        .record("extract", start, start + report.sim_elapsed);
    obs.wall.add_phase("extract", wall.elapsed_micros());
    ExtractedSnapshot {
        dataplane,
        coverage: report.coverage(),
        status: report.status,
        attempts: report.attempts,
    }
}
