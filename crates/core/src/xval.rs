//! E7 — cross-validating `mfv-conflint` against emulation.
//!
//! For each misconfiguration family the seeded injector can plant
//! ([`mfv_config::SeededMisconfig`]), this module perturbs the
//! conflint-clean base network ([`crate::scenarios::conflint_base`]), then
//! checks that the two verification tiers agree:
//!
//! - the static pass flags the planted fault — right rule, right device —
//!   in milliseconds, and
//! - the emulator, booted on the same corrupted configs, exhibits the
//!   corresponding *runtime* symptom: a session that never establishes, a
//!   prefix that silently vanishes, an infrastructure subnet that leaks.
//!
//! Agreement in both directions is what makes the cheap tier trustworthy:
//! a finding predicts a symptom, and the symptom confirms the finding.

use mfv_config::{inject_misconfig, InjectError, InjectionReport, SeededMisconfig};
use mfv_routing::SessionState;
use mfv_types::NodeId;

use crate::backend::{ConflintGate, EmulationBackend};
use crate::scenarios;
use crate::snapshot::Snapshot;

/// The two-tier verdict for one planted misconfiguration.
#[derive(Clone, Debug)]
pub struct XvalOutcome {
    /// What was planted, where, and what to expect.
    pub report: InjectionReport,
    /// conflint emitted the expected rule against the expected device.
    pub flagged: bool,
    /// Total unsuppressed findings the static pass produced.
    pub finding_count: usize,
    /// Observed state of the watched session, if any (`Debug` form;
    /// `"NoSession"` when the victim has no such peer at all).
    pub session_state: Option<String>,
    /// The watched session behaved as the injection report predicted.
    pub session_ok: bool,
    /// Every absence/presence expectation held on the observed FIBs.
    pub fib_ok: bool,
    /// Per-prefix evidence lines for the experiment write-up.
    pub fib_evidence: Vec<String>,
}

impl XvalOutcome {
    /// Both tiers agree: the static finding and the runtime symptom.
    pub fn validated(&self) -> bool {
        self.flagged && self.session_ok && self.fib_ok
    }
}

/// Plants `kind` into the E7 base network, lints the result, emulates it,
/// and compares the two verdicts.
pub fn cross_validate(kind: SeededMisconfig, seed: u64) -> Result<XvalOutcome, InjectError> {
    let mut configs = scenarios::conflint_base_configs();
    let report = inject_misconfig(kind, &mut configs, seed)?;
    let name = format!("e7-{}", report.rule.to_lowercase());
    let topo = scenarios::conflint_base_topology(&name, &configs);

    let analysis = mfv_conflint::analyze(&topo).map_err(|e| InjectError(e.to_string()))?;
    let flagged = analysis
        .findings
        .iter()
        .any(|f| f.rule.as_str() == report.rule && f.device == report.device);
    let finding_count = analysis.findings.len();

    // Boot the corrupted network with the gate off — E7 emulates known-bad
    // configs on purpose to observe their symptoms.
    let mut be = EmulationBackend::with_seed(seed.wrapping_add(1));
    be.conflint = ConflintGate::Off;
    let snap = Snapshot::new(name, topo);
    let (emu, _meta) = be.run(&snap).map_err(|e| InjectError(e.0))?;

    let (session_state, session_ok) = match &report.watch_session {
        Some((dev, peer)) => {
            let st = emu
                .router(&NodeId::new(dev.clone()))
                .and_then(|r| r.bgp_engine())
                .and_then(|b| b.session_state(*peer));
            let established = matches!(st, Some(SessionState::Established));
            (
                Some(
                    st.map(|s| format!("{s:?}"))
                        .unwrap_or_else(|| "NoSession".to_string()),
                ),
                established == report.session_should_establish,
            )
        }
        None => (None, true),
    };

    let dp = emu.dataplane();
    let mut fib_ok = true;
    let mut fib_evidence = Vec::new();
    for obs in &report.observe_on {
        let Some(node) = dp.nodes.get(&NodeId::new(obs.clone())) else {
            fib_ok = false;
            fib_evidence.push(format!("{obs}: no dataplane node"));
            continue;
        };
        let fib = node.fib();
        for p in &report.expect_absent {
            let present = fib.get(p).is_some();
            fib_ok &= !present;
            fib_evidence.push(format!(
                "{obs}: {p} {}",
                if present {
                    "PRESENT (expected absent)"
                } else {
                    "absent as expected"
                }
            ));
        }
        for p in &report.expect_present {
            let present = fib.get(p).is_some();
            fib_ok &= present;
            fib_evidence.push(format!(
                "{obs}: {p} {}",
                if present {
                    "present as expected"
                } else {
                    "MISSING (expected leak)"
                }
            ));
        }
    }

    Ok(XvalOutcome {
        report,
        flagged,
        finding_count,
        session_state,
        session_ok,
        fib_ok,
        fib_evidence,
    })
}
