//! Snapshots: the unit of verification input.
//!
//! A snapshot bundles exactly what the paper's system (and Batfish) takes:
//! device configurations, a topology file, and scenario context such as
//! external BGP advertisements — all already carried by
//! [`mfv_emulator::Topology`]. Differential queries compare two snapshots.

use mfv_emulator::Topology;
use mfv_types::{LinkId, NodeId};

/// A verification input: configs + topology + context.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub name: String,
    pub topology: Topology,
}

impl Snapshot {
    pub fn new(name: impl Into<String>, topology: Topology) -> Snapshot {
        Snapshot {
            name: name.into(),
            topology,
        }
    }

    /// A variant of this snapshot with one node's config replaced — the
    /// pre-deployment "what if I push this?" question.
    pub fn with_config(&self, node: &NodeId, config_text: impl Into<String>) -> Snapshot {
        let mut topo = self.topology.clone();
        if let Some(spec) = topo.nodes.iter_mut().find(|n| &n.name == node) {
            spec.config_text = config_text.into();
        }
        Snapshot {
            name: format!("{}+cfg[{}]", self.name, node),
            topology: topo,
        }
    }

    /// A variant with a set of links removed (link-cut context).
    pub fn without_links(&self, cuts: &[LinkId]) -> Snapshot {
        let mut topo = self.topology.clone();
        topo.links.retain(|l| !cuts.contains(&l.id()));
        Snapshot {
            name: format!("{}-{}cuts", self.name, cuts.len()),
            topology: topo,
        }
    }

    /// All link ids in the snapshot.
    pub fn link_ids(&self) -> Vec<LinkId> {
        self.topology.links.iter().map(|l| l.id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_config::RouterSpec;
    use mfv_emulator::NodeSpec;
    use mfv_types::AsNum;
    use std::net::Ipv4Addr;

    fn snap() -> Snapshot {
        let mut t = Topology::new("t");
        let r1 = RouterSpec::new("r1", AsNum(1), Ipv4Addr::new(1, 1, 1, 1)).build();
        let r2 = RouterSpec::new("r2", AsNum(2), Ipv4Addr::new(2, 2, 2, 2)).build();
        t.add_node(NodeSpec::from_config("r1", &r1));
        t.add_node(NodeSpec::from_config("r2", &r2));
        t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
        Snapshot::new("base", t)
    }

    #[test]
    fn with_config_replaces_one_node() {
        let s = snap();
        let s2 = s.with_config(&"r1".into(), "hostname hacked\n");
        assert_eq!(
            s2.topology.node(&"r1".into()).unwrap().config_text,
            "hostname hacked\n"
        );
        assert_eq!(
            s2.topology.node(&"r2".into()).unwrap().config_text,
            s.topology.node(&"r2".into()).unwrap().config_text
        );
        assert_ne!(s2.name, s.name);
    }

    #[test]
    fn without_links_cuts() {
        let s = snap();
        let links = s.link_ids();
        assert_eq!(links.len(), 1);
        let cut = s.without_links(&links);
        assert!(cut.topology.links.is_empty());
        // Original untouched.
        assert_eq!(s.topology.links.len(), 1);
    }
}
