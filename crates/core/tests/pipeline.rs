//! End-to-end pipeline tests: the §5 experiments as assertions.

use mfv_core::{
    deliverability_changes, differential_reachability, scenarios, unreachable_pairs, Backend,
    EmulationBackend, ModelBackend, Snapshot,
};
use mfv_types::{IpSet, NodeId};
use mfv_vrouter::{VendorBugs, VendorProfile};

/// E1 prerequisite: the six-node Fig. 2 network converges under emulation
/// with full loopback reachability.
#[test]
fn six_node_emulation_full_reachability() {
    let snapshot = scenarios::six_node();
    let result = EmulationBackend::default().compute(&snapshot).unwrap();
    assert!(result.meta.converged);
    assert_eq!(result.meta.crashes, 0);
    let broken = unreachable_pairs(&result.dataplane);
    assert!(
        broken.is_empty(),
        "expected full reachability, found {} broken pairs (first: {} -> {})",
        broken.len(),
        broken[0].src,
        broken[0].dst_node,
    );
}

/// E1: Differential Reachability between the working and broken snapshots
/// discovers the loss of connectivity from AS3 routers to AS2 routers.
#[test]
fn six_node_differential_detects_ebgp_shutdown_impact() {
    let backend = EmulationBackend::default();
    let base = backend.compute(&scenarios::six_node()).unwrap();
    let broken = backend.compute(&scenarios::six_node_broken()).unwrap();

    let findings = differential_reachability(&base.dataplane, &broken.dataplane, None);
    let lost = deliverability_changes(&findings);
    assert!(
        !lost.is_empty(),
        "the session shutdown must surface findings"
    );

    // AS3 (r5, r6) loses reachability to AS2 loopbacks (2.2.2.3, 2.2.2.4).
    for src in ["r5", "r6"] {
        let has = lost.iter().any(|f| {
            f.src == NodeId::from(src)
                && f.before.is_delivered()
                && !f.after.is_delivered()
                && (f.dsts.contains("2.2.2.3".parse().unwrap())
                    || f.dsts.contains("2.2.2.4".parse().unwrap()))
        });
        assert!(
            has,
            "expected AS3 router {src} to lose AS2 reachability: {lost:#?}"
        );
    }

    // AS3's intra-AS connectivity is untouched.
    let intra_as3_broken = lost
        .iter()
        .any(|f| f.src == NodeId::from("r5") && f.dsts.contains("2.2.2.6".parse().unwrap()));
    assert!(
        !intra_as3_broken,
        "intra-AS3 reachability must be unaffected"
    );
}

/// E2: the model-based parser fails to recognise 38–42 lines in each of the
/// six-node production configurations.
#[test]
fn six_node_model_coverage_matches_paper_band() {
    let snapshot = scenarios::six_node();
    let result = ModelBackend.compute(&snapshot).unwrap();
    assert_eq!(result.meta.coverage.len(), 6);
    for report in &result.meta.coverage {
        let n = report.unrecognized_count();
        assert!(
            (30..=50).contains(&n),
            "{}: {} unrecognized lines (paper band is 38–42)",
            report.hostname,
            n
        );
    }
}

/// E3: on the Fig. 3 line topology, emulation shows full pairwise
/// reachability while the model loses R2 → R1 — and differential
/// reachability between the two backends surfaces exactly that.
#[test]
fn fig3_model_vs_emulation_divergence() {
    let snapshot = scenarios::three_node_line_fig3();

    let emu = EmulationBackend::default().compute(&snapshot).unwrap();
    assert!(emu.meta.converged);
    let emu_broken = unreachable_pairs(&emu.dataplane);
    assert!(
        emu_broken.is_empty(),
        "the real device accepts the Fig. 3 config; emulation must have full \
         reachability, got: {:?}",
        emu_broken
            .iter()
            .map(|r| format!("{}->{}", r.src, r.dst_node))
            .collect::<Vec<_>>()
    );

    let model = ModelBackend.compute(&snapshot).unwrap();
    let model_broken = unreachable_pairs(&model.dataplane);
    assert!(
        model_broken
            .iter()
            .any(|r| r.src == NodeId::from("r2") && r.dst_node == NodeId::from("r1")),
        "the model must drop R2 -> R1 (switchport-ordering assumption)"
    );

    // The cross-backend differential query (the paper's §5 experiment).
    let findings = differential_reachability(&model.dataplane, &emu.dataplane, None);
    let gained = findings.iter().any(|f| {
        f.src == NodeId::from("r2")
            && !f.before.is_delivered()
            && f.after.is_delivered()
            && f.dsts.contains("2.2.2.1".parse().unwrap())
    });
    assert!(
        gained,
        "differential must show emulation reaching r1 where the model \
                     did not: {findings:#?}"
    );
}

/// A3: in a multi-vendor chain, one vendor's unusual-but-valid transitive
/// attribute crashes another vendor's parser; verification of the extracted
/// dataplane shows the partial outage. The single-model baseline cannot even
/// ingest the topology.
#[test]
fn interplay_crash_detected_by_verification() {
    let snapshot = scenarios::interplay_chain();

    // Clean run first.
    let clean = EmulationBackend::default().compute(&snapshot).unwrap();
    assert_eq!(clean.meta.crashes, 0);
    assert!(unreachable_pairs(&clean.dataplane).is_empty());

    // Buggy run: emitter attaches attribute 213; victim's parser dies on it.
    let mut backend = EmulationBackend::with_seed(7);
    backend.profiles.insert(
        "victim".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            crash_on_unknown_attr: Some(213),
            ..Default::default()
        }),
    );
    backend.profiles.insert(
        "emitter".into(),
        VendorProfile::vjunos().with_bugs(VendorBugs {
            emit_unusual_attr: Some(213),
            ..Default::default()
        }),
    );
    // Freeze the post-crash state (no watchdog) so the extracted dataplane
    // shows the outage rather than a moment between crash-loop iterations.
    backend.auto_restart = false;
    let buggy = backend.compute(&snapshot).unwrap();
    assert!(buggy.meta.crashes >= 1, "{:?}", buggy.meta);

    let findings = differential_reachability(&clean.dataplane, &buggy.dataplane, None);
    let outage = deliverability_changes(&findings);
    assert!(
        !outage.is_empty(),
        "the crash must manifest as lost reachability in the dataplane"
    );

    // The model-based baseline cannot analyse the multi-vendor snapshot.
    let model = ModelBackend.compute(&snapshot);
    assert!(model.is_err(), "reference model has no vjunos parser");
}

/// Scoped differential queries restrict the search space.
#[test]
fn scoped_differential_on_six_node() {
    let backend = EmulationBackend::default();
    let base = backend.compute(&scenarios::six_node()).unwrap();
    let broken = backend.compute(&scenarios::six_node_broken()).unwrap();

    // Scope to AS3 loopbacks only: findings about AS2 destinations vanish.
    let scope = IpSet::from_prefix(&"2.2.2.5/32".parse().unwrap())
        .union(&IpSet::from_prefix(&"2.2.2.6/32".parse().unwrap()));
    let findings = differential_reachability(&base.dataplane, &broken.dataplane, Some(&scope));
    for f in &findings {
        assert!(
            f.dsts.contains("2.2.2.5".parse().unwrap())
                || f.dsts.contains("2.2.2.6".parse().unwrap()),
            "out-of-scope finding: {f}"
        );
    }
}

/// Seed determinism at the pipeline level: same snapshot + same seed ⇒ same
/// extracted dataplane.
#[test]
fn pipeline_is_deterministic_per_seed() {
    let snapshot = scenarios::three_node_line_fig3();
    let a = EmulationBackend::with_seed(11).compute(&snapshot).unwrap();
    let b = EmulationBackend::with_seed(11).compute(&snapshot).unwrap();
    assert_eq!(a.dataplane.digest(), b.dataplane.digest());
}

/// Route reflection end to end: clients never peer with each other, yet
/// every client reaches every other client's loopback through the RR.
#[test]
fn route_reflector_cluster_full_reachability() {
    let snapshot = scenarios::rr_cluster(4);
    let result = EmulationBackend::default().compute(&snapshot).unwrap();
    assert!(result.meta.converged);
    let broken = unreachable_pairs(&result.dataplane);
    assert!(
        broken.is_empty(),
        "reflection must spread client routes: {:?}",
        broken
            .iter()
            .map(|r| format!("{}->{}", r.src, r.dst_node))
            .collect::<Vec<_>>()
    );
    // And the best path at a client actually traverses the RR.
    let trace = mfv_core::traceroute(
        &result.dataplane,
        &NodeId::from("c1"),
        "10.255.0.3".parse().unwrap(), // c2's loopback
    );
    assert!(trace.disposition.is_delivered());
    assert!(
        trace.hops.iter().any(|h| h.node == NodeId::from("rr")),
        "{trace:?}"
    );
}

/// Clos fabric: equal-cost spines give consistent ECMP — the multipath
/// consistency query must find no divergent classes, and leaf-to-leaf
/// traffic must fan across all spines.
#[test]
fn clos_ecmp_is_consistent() {
    let snapshot = scenarios::clos(3, 4);
    let result = EmulationBackend::default().compute(&snapshot).unwrap();
    assert!(result.meta.converged);
    assert!(unreachable_pairs(&result.dataplane).is_empty());

    let divergent = mfv_core::detect_multipath_inconsistency(&result.dataplane);
    assert!(divergent.is_empty(), "{divergent:?}");

    // l1 → l2's loopback has one FIB entry with 3 spine next hops.
    let l1 = &result.dataplane.nodes[&NodeId::from("l1")];
    let e = l1
        .fib()
        .lookup("10.255.0.101".parse().unwrap())
        .expect("route to l2 loopback")
        .clone();
    assert_eq!(e.next_hops.len(), 3, "{e:?}");
}

/// Loop detection: two static routes pointing at each other create a real
/// forwarding loop that the exhaustive search must find.
#[test]
fn static_route_loop_is_detected() {
    use mfv_config::{IfaceSpec, RouterSpec, StaticRoute};
    use mfv_emulator::{NodeSpec, Topology};
    use mfv_types::AsNum;

    let mut a = RouterSpec::new("a", AsNum(65001), "2.2.2.1".parse().unwrap())
        .iface(IfaceSpec::new("Ethernet1", "10.0.0.0/31".parse().unwrap()))
        .build();
    a.static_routes.push(StaticRoute {
        prefix: "198.18.0.0/15".parse().unwrap(),
        next_hop: "10.0.0.1".parse().unwrap(),
        distance: None,
    });
    let mut b = RouterSpec::new("b", AsNum(65002), "2.2.2.2".parse().unwrap())
        .iface(IfaceSpec::new("Ethernet1", "10.0.0.1/31".parse().unwrap()))
        .build();
    b.static_routes.push(StaticRoute {
        prefix: "198.18.0.0/15".parse().unwrap(),
        next_hop: "10.0.0.0".parse().unwrap(),
        distance: None,
    });
    let mut t = Topology::new("loop-pair");
    t.add_node(NodeSpec::from_config("a", &a));
    t.add_node(NodeSpec::from_config("b", &b));
    t.add_link(("a", "Ethernet1"), ("b", "Ethernet1"));

    let result = EmulationBackend::default()
        .compute(&Snapshot::new("loop-pair", t))
        .unwrap();
    let loops = mfv_core::detect_loops(&result.dataplane);
    assert!(
        loops
            .iter()
            .any(|l| l.dsts.contains("198.18.5.5".parse().unwrap())),
        "{loops:?}"
    );
}

/// §2's "new software version introduced an incorrect route metric selection
/// in iBGP": the same network converges to a *different dataplane* under the
/// buggy software, and differential reachability localises the change to
/// path selection (not deliverability).
#[test]
fn ibgp_metric_bug_changes_exit_selection() {
    use mfv_config::{IfaceSpec, RouterSpec};
    use mfv_emulator::{NodeSpec, Topology};
    use mfv_types::AsNum;

    // mid has two iBGP exits (near via cheap IS-IS path, far via expensive
    // one) to the same external prefix.
    let asn = AsNum(65000);
    let lo = |n: u8| std::net::Ipv4Addr::new(2, 2, 2, n);
    let near = RouterSpec::new("near", asn, lo(1))
        .iface(IfaceSpec::new("Ethernet1", "10.0.1.0/31".parse().unwrap()).with_metric(10))
        .ibgp(lo(3))
        .network("203.0.113.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "203.0.113.1/24".parse().unwrap(),
        ));
    let far = RouterSpec::new("far", asn, lo(2))
        .iface(IfaceSpec::new("Ethernet1", "10.0.2.0/31".parse().unwrap()).with_metric(100))
        .ibgp(lo(3))
        .network("203.0.113.0/24".parse().unwrap())
        .iface(IfaceSpec::new(
            "Ethernet9",
            "203.0.113.1/24".parse().unwrap(),
        ));
    let mid = RouterSpec::new("mid", asn, lo(3))
        .iface(IfaceSpec::new("Ethernet1", "10.0.1.1/31".parse().unwrap()).with_metric(10))
        .iface(IfaceSpec::new("Ethernet2", "10.0.2.1/31".parse().unwrap()).with_metric(100))
        .ibgp(lo(1))
        .ibgp(lo(2));
    let mut t = Topology::new("metric-bug");
    t.add_node(NodeSpec::from_config("mid", &mid.build()));
    t.add_node(NodeSpec::from_config("near", &near.build()));
    t.add_node(NodeSpec::from_config("far", &far.build()));
    t.add_link(("mid", "Ethernet1"), ("near", "Ethernet1"));
    t.add_link(("mid", "Ethernet2"), ("far", "Ethernet1"));
    let snapshot = Snapshot::new("metric-bug", t);

    let exit_of = |dp: &mfv_dataplane::Dataplane| {
        // .1 is the anycast address owned by both exits; whichever router
        // the trace is delivered at is the selected exit.
        let trace = mfv_core::traceroute(dp, &NodeId::from("mid"), "203.0.113.1".parse().unwrap());
        assert!(trace.disposition.is_delivered(), "{trace:?}");
        trace.hops.last().unwrap().node.clone()
    };

    let healthy = EmulationBackend::default().compute(&snapshot).unwrap();
    assert_eq!(exit_of(&healthy.dataplane), NodeId::from("near"));

    // "Upgrade" mid to the buggy software version.
    let mut backend = EmulationBackend::default();
    backend.profiles.insert(
        "mid".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            ibgp_metric_bug: true,
            ..Default::default()
        }),
    );
    let buggy = backend.compute(&snapshot).unwrap();
    assert_eq!(
        exit_of(&buggy.dataplane),
        NodeId::from("far"),
        "the buggy decision process must pick the farther exit"
    );

    // Differential: paths changed but nothing became undeliverable.
    let findings = differential_reachability(&healthy.dataplane, &buggy.dataplane, None);
    assert!(!findings.is_empty());
    assert!(deliverability_changes(&findings).is_empty());
}

/// A link flap must reconverge to exactly the pre-flap dataplane.
#[test]
fn link_flap_recovers_original_dataplane() {
    use mfv_types::LinkId;

    let snapshot = scenarios::three_node_line_fig3();
    let backend = EmulationBackend::default();
    let (mut emu, meta) = backend.run(&snapshot).unwrap();
    assert!(meta.converged);
    let before = emu.dataplane();

    let link = LinkId::new(
        ("r1".into(), "Ethernet2".into()),
        ("r2".into(), "Ethernet1".into()),
    );
    emu.set_link(&link, false);
    let down_report = emu.run_until_converged();
    assert!(down_report.converged);
    let during = emu.dataplane();
    assert_ne!(
        before.digest(),
        during.digest(),
        "cut must change the dataplane"
    );

    emu.set_link(&link, true);
    let up_report = emu.run_until_converged();
    assert!(up_report.converged);
    let after = emu.dataplane();
    assert_eq!(
        before.digest(),
        after.digest(),
        "flap recovery must restore the exact dataplane"
    );
}

/// Export route-maps filter advertisements: a deny-all export policy on the
/// eBGP session keeps the peer's table empty while the session stays up.
#[test]
fn export_policy_suppresses_advertisements() {
    use mfv_config::{IfaceSpec, PolicyAction, RouteMap, RouteMapEntry, RouterSpec};
    use mfv_emulator::{NodeSpec, Topology};
    use mfv_types::AsNum;

    let r1 = RouterSpec::new("r1", AsNum(65001), "2.2.2.1".parse().unwrap())
        .iface(IfaceSpec::new("Ethernet1", "10.0.0.0/31".parse().unwrap()))
        .ebgp("10.0.0.1".parse().unwrap(), AsNum(65002))
        .network("2.2.2.1/32".parse().unwrap());
    let mut cfg1 = r1.build();
    cfg1.route_maps.insert(
        "DENY-ALL".to_string(),
        RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Deny,
                matches: vec![],
                sets: vec![],
            }],
        },
    );
    cfg1.bgp.as_mut().unwrap().neighbors[0].route_map_out = Some("DENY-ALL".into());

    let r2 = RouterSpec::new("r2", AsNum(65002), "2.2.2.2".parse().unwrap())
        .iface(IfaceSpec::new("Ethernet1", "10.0.0.1/31".parse().unwrap()))
        .ebgp("10.0.0.0".parse().unwrap(), AsNum(65001))
        .network("2.2.2.2/32".parse().unwrap());

    let mut t = Topology::new("export-deny");
    t.add_node(NodeSpec::from_config("r1", &cfg1));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));

    let result = EmulationBackend::default()
        .compute(&Snapshot::new("export-deny", t))
        .unwrap();
    // r1 still learns r2's loopback (r2 has no policy)…
    let r1_dp = &result.dataplane.nodes[&NodeId::from("r1")];
    assert!(r1_dp.fib().lookup("2.2.2.2".parse().unwrap()).is_some());
    // …but r2 never hears about r1's (deny-all export).
    let r2_dp = &result.dataplane.nodes[&NodeId::from("r2")];
    assert!(r2_dp.fib().lookup("2.2.2.1".parse().unwrap()).is_none());
}

/// Chaos acceptance: a flap schedule on the two-vendor WAN replica drives
/// the verdict to Oscillating with the churning prefixes named; the same
/// run without the flaps converges. Both outcomes are deterministic.
#[test]
fn chaos_flap_on_two_vendor_wan_oscillates_and_control_converges() {
    use mfv_emulator::{ChaosPlan, ConvergenceVerdict};
    use mfv_types::{LinkId, SimDuration, SimTime};

    let snapshot = scenarios::production_wan(9, 2, true, 50);

    // Fault-free control run; also tells us when boot completes so the
    // flap schedule can be placed in steady state.
    let mut backend = EmulationBackend::with_seed(3);
    let control = backend.compute(&snapshot).unwrap();
    assert!(control.meta.converged);
    assert!(matches!(
        control.meta.verdict,
        Some(ConvergenceVerdict::Converged)
    ));
    let boot_ms = control.meta.boot_time.unwrap().as_millis();

    // Flap the first ring link every 20s (8s down), repeating past the
    // shortened budget: the network can never stay quiet for 12s.
    let l = &snapshot.topology.links[0];
    let link = LinkId::new(
        (l.a_node.clone(), l.a_iface.clone()),
        (l.b_node.clone(), l.b_iface.clone()),
    );
    backend.max_sim_time = SimDuration::from_millis(boot_ms + 400_000);
    backend.chaos = ChaosPlan::new().repeated_link_flap(
        link,
        SimTime(boot_ms + 60_000),
        SimDuration::from_secs(8),
        40,
        SimDuration::from_secs(20),
    );
    let chaotic = backend.compute(&snapshot).unwrap();
    assert!(!chaotic.meta.converged);
    match chaotic.meta.verdict.as_ref().unwrap() {
        ConvergenceVerdict::Oscillating { period, prefixes } => {
            assert!(!prefixes.is_empty());
            assert!(period.as_millis() > 0);
        }
        other => panic!("expected Oscillating, got {other:?}"),
    }

    // Determinism: replaying the chaotic run reproduces the verdict.
    let replay = backend.compute(&snapshot).unwrap();
    assert_eq!(replay.meta.verdict, chaotic.meta.verdict);
    assert_eq!(replay.dataplane.digest(), chaotic.dataplane.digest());
}

/// Degradation acceptance: with one node's gNMI extraction forced to fail
/// past the retry budget, the pipeline still produces a snapshot (coverage
/// < 1.0, node Missing) and reachability queries complete with qualified
/// answers instead of panicking.
#[test]
fn forced_extraction_failure_degrades_gracefully() {
    use mfv_core::{qualified_reachability, qualified_unreachable_pairs, Coverage};
    use mfv_types::ExtractionStatus;
    use mfv_verify::ForwardingAnalysis;

    let snapshot = scenarios::six_node();
    let mut backend = EmulationBackend::default();
    backend.collector.failures.force_fail.insert("r3".into());

    let result = backend.compute(&snapshot).unwrap();
    let coverage_frac = result.meta.extraction_coverage.unwrap();
    assert!(coverage_frac < 1.0, "coverage {coverage_frac}");
    assert!(matches!(
        result.meta.extraction_status[&NodeId::from("r3")],
        ExtractionStatus::Missing(_)
    ));
    // The snapshot covers the other five nodes; r3 and its links are gone.
    assert!(!result.dataplane.nodes.contains_key(&NodeId::from("r3")));
    assert_eq!(result.dataplane.nodes.len(), 5);

    let coverage = Coverage::from_status(&result.meta.extraction_status);
    assert_eq!(coverage.fraction(), coverage_frac);
    let q = qualified_unreachable_pairs(&result.dataplane, &coverage);
    assert!(!q.is_unqualified());
    assert!(q.caveats[0].contains("r3"), "{:?}", q.caveats);

    // A query about the missing node completes and is flagged vacuous.
    let fa = ForwardingAnalysis::new(&result.dataplane);
    let qr = qualified_reachability(&fa, &"r1".into(), &"r3".into(), &coverage);
    assert!(
        qr.caveats.iter().any(|c| c.contains("vacuous")),
        "{:?}",
        qr.caveats
    );
}

/// Crash path with the restart watchdog off: by default the dead router is
/// still extracted (present, down, empty FIB); with a fate-shared
/// management plane it becomes a coverage gap the verifier reports.
#[test]
fn crash_without_restart_degrades_dataplane_and_coverage() {
    use mfv_core::Coverage;

    let snapshot = scenarios::interplay_chain();
    let mut backend = EmulationBackend::with_seed(7);
    backend.profiles.insert(
        "victim".into(),
        VendorProfile::ceos().with_bugs(VendorBugs {
            crash_on_unknown_attr: Some(213),
            ..Default::default()
        }),
    );
    backend.profiles.insert(
        "emitter".into(),
        VendorProfile::vjunos().with_bugs(VendorBugs {
            emit_unusual_attr: Some(213),
            ..Default::default()
        }),
    );
    backend.auto_restart = false;

    // Default collector: gNMI survives the routing-process crash, so the
    // victim is extracted as present-but-down with full coverage.
    let frozen = backend.compute(&snapshot).unwrap();
    assert!(frozen.meta.crashes >= 1);
    assert_eq!(frozen.meta.extraction_coverage, Some(1.0));
    let victim = NodeId::from("victim");
    let node = &frozen.dataplane.nodes[&victim];
    assert!(!node.up, "crashed router must be extracted as down");
    assert!(!unreachable_pairs(&frozen.dataplane).is_empty());

    // Fate-shared management plane: the down device is unreachable over
    // gNMI too — now it is a coverage gap, not a down node.
    backend.collector.failures.down_is_missing = true;
    let degraded = backend.compute(&snapshot).unwrap();
    assert!(degraded.meta.extraction_coverage.unwrap() < 1.0);
    assert!(!degraded.dataplane.nodes.contains_key(&victim));
    let coverage = Coverage::from_status(&degraded.meta.extraction_status);
    assert!(
        coverage.caveats()[0].contains("victim"),
        "{:?}",
        coverage.caveats()
    );
}
