//! IS-IS PDU codec.
//!
//! Implements the PDU set needed for point-to-point IS-IS as deployed in the
//! paper's topologies: p2p hellos (adjacency formation), link-state PDUs
//! with extended reachability TLVs (RFC 5305 wide metrics), and CSNP/PSNP
//! sequence-number PDUs for database synchronisation. LSP checksums use the
//! standard Fletcher algorithm.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use mfv_types::Prefix;

use crate::DecodeError;

/// IS-IS protocol discriminator (first byte of every PDU).
pub const PROTO_DISCRIMINATOR: u8 = 0x83;

/// PDU type codes (level-2 variants).
pub const PDU_P2P_HELLO: u8 = 17;
pub const PDU_L2_LSP: u8 = 20;
pub const PDU_L2_CSNP: u8 = 25;
pub const PDU_L2_PSNP: u8 = 27;

/// TLV type codes.
pub const TLV_AREA: u8 = 1;
pub const TLV_LSP_ENTRIES: u8 = 9;
pub const TLV_EXT_IS_REACH: u8 = 22;
pub const TLV_PROTOCOLS: u8 = 129;
pub const TLV_IP_IFACE_ADDR: u8 = 132;
pub const TLV_EXT_IP_REACH: u8 = 135;
pub const TLV_HOSTNAME: u8 = 137;
pub const TLV_P2P_ADJ_STATE: u8 = 240;

/// NLPID for IPv4.
pub const NLPID_IPV4: u8 = 0xcc;

/// A 6-byte IS-IS system identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SystemId(pub [u8; 6]);

impl SystemId {
    /// Derives a system-id from an IPv4 address (the common operational
    /// convention: zero-padded loopback octets).
    pub fn from_ip(ip: Ipv4Addr) -> SystemId {
        let [a, b, c, d] = ip.octets();
        SystemId([0, 0, a, b, c, d])
    }
}

impl fmt::Debug for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [b0, b1, b2, b3, b4, b5] = self.0;
        write!(f, "{b0:02x}{b1:02x}.{b2:02x}{b3:02x}.{b4:02x}{b5:02x}")
    }
}

impl FromStr for SystemId {
    type Err = DecodeError;

    /// Parses `xxxx.xxxx.xxxx` hex groups.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '.').collect();
        if hex.len() != 12 {
            return Err(DecodeError::new("isis", format!("bad system-id {s}")));
        }
        // Nibble-wise parse: a non-hex (or multi-byte) character fails
        // `hex_val` rather than tripping a slice boundary.
        let mut nibbles = hex.bytes().map(hex_val);
        let mut out = [0u8; 6];
        for chunk in out.iter_mut() {
            match (nibbles.next().flatten(), nibbles.next().flatten()) {
                (Some(hi), Some(lo)) => *chunk = (hi << 4) | lo,
                _ => return Err(DecodeError::new("isis", format!("bad system-id {s}"))),
            }
        }
        Ok(SystemId(out))
    }
}

/// An 8-byte LSP identifier: system-id + pseudonode + fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LspId {
    pub system: SystemId,
    pub pseudonode: u8,
    pub fragment: u8,
}

impl LspId {
    pub fn of(system: SystemId) -> LspId {
        LspId {
            system,
            pseudonode: 0,
            fragment: 0,
        }
    }

    fn encode(&self, out: &mut BytesMut) {
        out.extend_from_slice(&self.system.0);
        out.put_u8(self.pseudonode);
        out.put_u8(self.fragment);
    }

    fn decode(buf: &mut Bytes) -> Result<LspId, DecodeError> {
        if buf.len() < 8 {
            return Err(DecodeError::new("isis", "truncated LSP id"));
        }
        let mut sys = [0u8; 6];
        sys.copy_from_slice(&buf.split_to(6));
        Ok(LspId {
            system: SystemId(sys),
            pseudonode: buf.get_u8(),
            fragment: buf.get_u8(),
        })
    }
}

impl fmt::Debug for LspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:02x}-{:02x}",
            self.system, self.pseudonode, self.fragment
        )
    }
}

impl fmt::Display for LspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:02x}-{:02x}",
            self.system, self.pseudonode, self.fragment
        )
    }
}

/// An IS (router) neighbor entry in TLV 22.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IsNeighbor {
    pub neighbor: SystemId,
    pub pseudonode: u8,
    /// 24-bit wide metric.
    pub metric: u32,
}

/// An IPv4 reachability entry in TLV 135.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IpReach {
    pub metric: u32,
    pub prefix: Prefix,
    /// RFC 5305 up/down bit (set on routes leaked down a level).
    pub down: bool,
}

/// One entry of an LSP-entries TLV (CSNP/PSNP body).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LspEntry {
    pub lifetime: u16,
    pub lsp_id: LspId,
    pub seq: u32,
    pub checksum: u16,
}

/// P2P adjacency three-way state (TLV 240).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdjState {
    Up,
    Initializing,
    Down,
}

impl AdjState {
    fn code(&self) -> u8 {
        match self {
            AdjState::Up => 0,
            AdjState::Initializing => 1,
            AdjState::Down => 2,
        }
    }

    fn from_code(c: u8) -> Option<AdjState> {
        match c {
            0 => Some(AdjState::Up),
            1 => Some(AdjState::Initializing),
            2 => Some(AdjState::Down),
            _ => None,
        }
    }
}

/// A typed IS-IS TLV. Unknown TLVs are preserved raw.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tlv {
    /// Area addresses (each as raw AFI+area bytes).
    Area(Vec<Bytes>),
    /// NLPIDs supported.
    Protocols(Vec<u8>),
    /// IPv4 interface addresses.
    IpIfaceAddr(Vec<Ipv4Addr>),
    /// Three-way handshake state.
    P2pAdjState {
        state: AdjState,
        neighbor: Option<SystemId>,
    },
    /// Dynamic hostname.
    Hostname(String),
    /// Extended IS reachability (wide metrics).
    ExtIsReach(Vec<IsNeighbor>),
    /// Extended IPv4 reachability (wide metrics).
    ExtIpReach(Vec<IpReach>),
    /// LSP entries (CSNP/PSNP).
    LspEntries(Vec<LspEntry>),
    Unknown {
        type_code: u8,
        value: Bytes,
    },
}

impl Tlv {
    fn type_code(&self) -> u8 {
        match self {
            Tlv::Area(_) => TLV_AREA,
            Tlv::Protocols(_) => TLV_PROTOCOLS,
            Tlv::IpIfaceAddr(_) => TLV_IP_IFACE_ADDR,
            Tlv::P2pAdjState { .. } => TLV_P2P_ADJ_STATE,
            Tlv::Hostname(_) => TLV_HOSTNAME,
            Tlv::ExtIsReach(_) => TLV_EXT_IS_REACH,
            Tlv::ExtIpReach(_) => TLV_EXT_IP_REACH,
            Tlv::LspEntries(_) => TLV_LSP_ENTRIES,
            Tlv::Unknown { type_code, .. } => *type_code,
        }
    }
}

fn encode_tlvs(out: &mut BytesMut, tlvs: &[Tlv]) {
    for tlv in tlvs {
        let mut v = BytesMut::new();
        match tlv {
            Tlv::Area(areas) => {
                for a in areas {
                    v.put_u8(a.len() as u8);
                    v.extend_from_slice(a);
                }
            }
            Tlv::Protocols(nlpids) => v.extend_from_slice(nlpids),
            Tlv::IpIfaceAddr(addrs) => {
                for a in addrs {
                    v.put_u32(u32::from(*a));
                }
            }
            Tlv::P2pAdjState { state, neighbor } => {
                v.put_u8(state.code());
                // Extended circuit id (4 bytes, we use 0).
                v.put_u32(0);
                if let Some(n) = neighbor {
                    v.extend_from_slice(&n.0);
                    v.put_u32(0); // neighbor extended circuit id
                }
            }
            Tlv::Hostname(h) => v.extend_from_slice(h.as_bytes()),
            Tlv::ExtIsReach(neighbors) => {
                for n in neighbors {
                    v.extend_from_slice(&n.neighbor.0);
                    v.put_u8(n.pseudonode);
                    let m = n.metric.min(0xff_ffff);
                    v.put_u8((m >> 16) as u8);
                    v.put_u16((m & 0xffff) as u16);
                    v.put_u8(0); // no sub-TLVs
                }
            }
            Tlv::ExtIpReach(reaches) => {
                for r in reaches {
                    v.put_u32(r.metric);
                    let control = (r.prefix.len() & 0x3f) | if r.down { 0x80 } else { 0 };
                    v.put_u8(control);
                    let nbytes = (r.prefix.len() as usize).div_ceil(8);
                    let bits = r.prefix.network_bits().to_be_bytes();
                    for b in bits.iter().take(nbytes) {
                        v.put_u8(*b);
                    }
                }
            }
            Tlv::LspEntries(entries) => {
                for e in entries {
                    v.put_u16(e.lifetime);
                    e.lsp_id.encode(&mut v);
                    v.put_u32(e.seq);
                    v.put_u16(e.checksum);
                }
            }
            Tlv::Unknown { value, .. } => v.extend_from_slice(value),
        }
        out.put_u8(tlv.type_code());
        out.put_u8(v.len() as u8);
        out.extend_from_slice(&v);
    }
}

fn decode_tlvs(buf: &mut Bytes) -> Result<Vec<Tlv>, DecodeError> {
    let err = |r: &str| DecodeError::new("isis", r);
    let mut out = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 2 {
            return Err(err("truncated TLV header"));
        }
        let type_code = buf.get_u8();
        let len = buf.get_u8() as usize;
        if buf.len() < len {
            return Err(err("truncated TLV value"));
        }
        let mut v = buf.split_to(len);
        let tlv = match type_code {
            TLV_AREA => {
                let mut areas = Vec::new();
                while !v.is_empty() {
                    let alen = v.get_u8() as usize;
                    if v.len() < alen {
                        return Err(err("truncated area address"));
                    }
                    areas.push(v.split_to(alen));
                }
                Tlv::Area(areas)
            }
            TLV_PROTOCOLS => Tlv::Protocols(v.to_vec()),
            TLV_IP_IFACE_ADDR => {
                if !v.len().is_multiple_of(4) {
                    return Err(err("bad interface address TLV"));
                }
                let mut addrs = Vec::new();
                while !v.is_empty() {
                    addrs.push(Ipv4Addr::from(v.get_u32()));
                }
                Tlv::IpIfaceAddr(addrs)
            }
            TLV_P2P_ADJ_STATE => {
                if v.is_empty() {
                    return Err(err("empty adjacency state TLV"));
                }
                let state =
                    AdjState::from_code(v.get_u8()).ok_or_else(|| err("bad adjacency state"))?;
                let neighbor = if v.len() >= 10 {
                    v.advance(4); // our extended circuit id
                    let mut sys = [0u8; 6];
                    sys.copy_from_slice(&v.split_to(6));
                    Some(SystemId(sys))
                } else {
                    None
                };
                Tlv::P2pAdjState { state, neighbor }
            }
            TLV_HOSTNAME => {
                Tlv::Hostname(String::from_utf8(v.to_vec()).map_err(|_| err("bad hostname"))?)
            }
            TLV_EXT_IS_REACH => {
                let mut neighbors = Vec::new();
                while !v.is_empty() {
                    if v.len() < 11 {
                        return Err(err("truncated IS reach entry"));
                    }
                    let mut sys = [0u8; 6];
                    sys.copy_from_slice(&v.split_to(6));
                    let pseudonode = v.get_u8();
                    let hi = v.get_u8() as u32;
                    let lo = v.get_u16() as u32;
                    let subtlv_len = v.get_u8() as usize;
                    if v.len() < subtlv_len {
                        return Err(err("truncated IS reach sub-TLVs"));
                    }
                    v.advance(subtlv_len);
                    neighbors.push(IsNeighbor {
                        neighbor: SystemId(sys),
                        pseudonode,
                        metric: (hi << 16) | lo,
                    });
                }
                Tlv::ExtIsReach(neighbors)
            }
            TLV_EXT_IP_REACH => {
                let mut reaches = Vec::new();
                while !v.is_empty() {
                    if v.len() < 5 {
                        return Err(err("truncated IP reach entry"));
                    }
                    let metric = v.get_u32();
                    let control = v.get_u8();
                    let plen = control & 0x3f;
                    if plen > 32 {
                        return Err(err("IP reach prefix length > 32"));
                    }
                    let down = control & 0x80 != 0;
                    let nbytes = (plen as usize).div_ceil(8);
                    if v.len() < nbytes {
                        return Err(err("truncated IP reach prefix"));
                    }
                    let chunk = v.split_to(nbytes);
                    let mut bits = [0u8; 4];
                    for (slot, b) in bits.iter_mut().zip(chunk.iter()) {
                        *slot = *b;
                    }
                    reaches.push(IpReach {
                        metric,
                        prefix: Prefix::from_bits(u32::from_be_bytes(bits), plen),
                        down,
                    });
                }
                Tlv::ExtIpReach(reaches)
            }
            TLV_LSP_ENTRIES => {
                let mut entries = Vec::new();
                while !v.is_empty() {
                    if v.len() < 16 {
                        return Err(err("truncated LSP entry"));
                    }
                    let lifetime = v.get_u16();
                    let lsp_id = LspId::decode(&mut v)?;
                    let seq = v.get_u32();
                    let checksum = v.get_u16();
                    entries.push(LspEntry {
                        lifetime,
                        lsp_id,
                        seq,
                        checksum,
                    });
                }
                Tlv::LspEntries(entries)
            }
            _ => Tlv::Unknown {
                type_code,
                value: v,
            },
        };
        out.push(tlv);
    }
    Ok(out)
}

/// A point-to-point IS-IS hello.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct P2pHello {
    /// 1 = L1 only, 2 = L2 only, 3 = L1L2.
    pub circuit_type: u8,
    pub source: SystemId,
    pub hold_time_secs: u16,
    pub circuit_id: u8,
    pub tlvs: Vec<Tlv>,
}

impl P2pHello {
    /// The adjacency state TLV, if present.
    pub fn adj_state(&self) -> Option<(AdjState, Option<SystemId>)> {
        self.tlvs.iter().find_map(|t| match t {
            Tlv::P2pAdjState { state, neighbor } => Some((*state, *neighbor)),
            _ => None,
        })
    }
}

/// A link-state PDU.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lsp {
    pub lifetime_secs: u16,
    pub lsp_id: LspId,
    pub seq: u32,
    pub tlvs: Vec<Tlv>,
}

impl Lsp {
    pub fn hostname(&self) -> Option<&str> {
        self.tlvs.iter().find_map(|t| match t {
            Tlv::Hostname(h) => Some(h.as_str()),
            _ => None,
        })
    }

    pub fn is_neighbors(&self) -> Vec<IsNeighbor> {
        self.tlvs
            .iter()
            .flat_map(|t| match t {
                Tlv::ExtIsReach(v) => v.clone(),
                _ => Vec::new(),
            })
            .collect()
    }

    pub fn ip_reaches(&self) -> Vec<IpReach> {
        self.tlvs
            .iter()
            .flat_map(|t| match t {
                Tlv::ExtIpReach(v) => v.clone(),
                _ => Vec::new(),
            })
            .collect()
    }

    /// Fletcher checksum over the canonical encoding of the LSP body.
    pub fn checksum(&self) -> u16 {
        let mut body = BytesMut::new();
        self.lsp_id.encode(&mut body);
        body.put_u32(self.seq);
        encode_tlvs(&mut body, &self.tlvs);
        fletcher16(&body)
    }
}

/// A complete sequence-numbers PDU (database summary).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Csnp {
    pub source: SystemId,
    pub entries: Vec<LspEntry>,
}

/// A partial sequence-numbers PDU (explicit request/ack).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Psnp {
    pub source: SystemId,
    pub entries: Vec<LspEntry>,
}

/// Any IS-IS PDU.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IsisPdu {
    P2pHello(P2pHello),
    Lsp(Lsp),
    Csnp(Csnp),
    Psnp(Psnp),
}

/// Standard Fletcher-16 checksum (ISO 8473 style, without the
/// zero-adjustment refinement — both ends of our wire use the same code).
pub fn fletcher16(data: &[u8]) -> u16 {
    let mut c0: u32 = 0;
    let mut c1: u32 = 0;
    for &b in data {
        c0 = (c0 + b as u32) % 255;
        c1 = (c1 + c0) % 255;
    }
    ((c1 as u16) << 8) | c0 as u16
}

/// Back-patches one byte reserved earlier by a placeholder `put_u8`.
/// A position outside the buffer (impossible by construction — every call
/// passes an offset previously returned by `out.len()`) is a no-op, so the
/// encoder can never panic.
fn patch_u8(out: &mut BytesMut, pos: usize, val: u8) {
    if let Some(b) = out.get_mut(pos) {
        *b = val;
    }
}

/// Back-patches a big-endian u16 reserved earlier by a placeholder
/// `put_u16`. Same no-panic contract as [`patch_u8`].
fn patch_u16_be(out: &mut BytesMut, pos: usize, val: u16) {
    if let Some(slot) = out.get_mut(pos..pos + 2) {
        slot.copy_from_slice(&val.to_be_bytes());
    }
}

impl IsisPdu {
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        // Common header.
        out.put_u8(PROTO_DISCRIMINATOR);
        out.put_u8(0); // length indicator (filled by implementations we skip)
        out.put_u8(1); // version/protocol id extension
        out.put_u8(0); // id length (0 = 6 bytes)
        let type_pos = out.len();
        out.put_u8(0); // pdu type, patched below
        out.put_u8(1); // version
        out.put_u8(0); // reserved
        out.put_u8(0); // max area addresses (0 = 3)

        match self {
            IsisPdu::P2pHello(h) => {
                patch_u8(&mut out, type_pos, PDU_P2P_HELLO);
                out.put_u8(h.circuit_type);
                out.extend_from_slice(&h.source.0);
                out.put_u16(h.hold_time_secs);
                let len_pos = out.len();
                out.put_u16(0); // pdu length, patched below
                out.put_u8(h.circuit_id);
                encode_tlvs(&mut out, &h.tlvs);
                let total = out.len() as u16;
                patch_u16_be(&mut out, len_pos, total);
            }
            IsisPdu::Lsp(l) => {
                patch_u8(&mut out, type_pos, PDU_L2_LSP);
                let len_pos = out.len();
                out.put_u16(0); // pdu length, patched below
                out.put_u16(l.lifetime_secs);
                l.lsp_id.encode(&mut out);
                out.put_u32(l.seq);
                out.put_u16(l.checksum());
                out.put_u8(0x03); // flags: L2 IS
                encode_tlvs(&mut out, &l.tlvs);
                let total = out.len() as u16;
                patch_u16_be(&mut out, len_pos, total);
            }
            IsisPdu::Csnp(c) => {
                patch_u8(&mut out, type_pos, PDU_L2_CSNP);
                let len_pos = out.len();
                out.put_u16(0);
                out.extend_from_slice(&c.source.0);
                out.put_u8(0); // circuit id
                               // Start/end LSP id range: full range.
                out.put_bytes(0x00, 8);
                out.put_bytes(0xff, 8);
                encode_tlvs(&mut out, &[Tlv::LspEntries(c.entries.clone())]);
                let total = out.len() as u16;
                patch_u16_be(&mut out, len_pos, total);
            }
            IsisPdu::Psnp(p) => {
                patch_u8(&mut out, type_pos, PDU_L2_PSNP);
                let len_pos = out.len();
                out.put_u16(0);
                out.extend_from_slice(&p.source.0);
                out.put_u8(0);
                encode_tlvs(&mut out, &[Tlv::LspEntries(p.entries.clone())]);
                let total = out.len() as u16;
                patch_u16_be(&mut out, len_pos, total);
            }
        }
        out.freeze()
    }

    pub fn decode(buf: &mut Bytes) -> Result<IsisPdu, DecodeError> {
        let err = |r: &str| DecodeError::new("isis", r);
        if buf.len() < 8 {
            return Err(err("truncated common header"));
        }
        if buf.get_u8() != PROTO_DISCRIMINATOR {
            return Err(err("bad protocol discriminator"));
        }
        buf.advance(2); // length indicator, version
        let id_len = buf.get_u8();
        if id_len != 0 && id_len != 6 {
            return Err(err("unsupported id length"));
        }
        let pdu_type = buf.get_u8() & 0x1f;
        buf.advance(3); // version, reserved, max areas

        match pdu_type {
            PDU_P2P_HELLO => {
                if buf.len() < 12 {
                    return Err(err("truncated hello"));
                }
                let circuit_type = buf.get_u8();
                let mut sys = [0u8; 6];
                sys.copy_from_slice(&buf.split_to(6));
                let hold_time_secs = buf.get_u16();
                let _pdu_len = buf.get_u16();
                let circuit_id = buf.get_u8();
                let tlvs = decode_tlvs(buf)?;
                Ok(IsisPdu::P2pHello(P2pHello {
                    circuit_type,
                    source: SystemId(sys),
                    hold_time_secs,
                    circuit_id,
                    tlvs,
                }))
            }
            PDU_L2_LSP => {
                if buf.len() < 19 {
                    return Err(err("truncated LSP"));
                }
                let _pdu_len = buf.get_u16();
                let lifetime_secs = buf.get_u16();
                let lsp_id = LspId::decode(buf)?;
                let seq = buf.get_u32();
                let claimed_checksum = buf.get_u16();
                let _flags = buf.get_u8();
                let tlvs = decode_tlvs(buf)?;
                let lsp = Lsp {
                    lifetime_secs,
                    lsp_id,
                    seq,
                    tlvs,
                };
                if lsp.checksum() != claimed_checksum {
                    return Err(err("LSP checksum mismatch"));
                }
                Ok(IsisPdu::Lsp(lsp))
            }
            PDU_L2_CSNP => {
                if buf.len() < 25 {
                    return Err(err("truncated CSNP"));
                }
                let _pdu_len = buf.get_u16();
                let mut sys = [0u8; 6];
                sys.copy_from_slice(&buf.split_to(6));
                buf.advance(1 + 16); // circuit id + start/end range
                let tlvs = decode_tlvs(buf)?;
                let entries = tlvs
                    .into_iter()
                    .flat_map(|t| match t {
                        Tlv::LspEntries(e) => e,
                        _ => Vec::new(),
                    })
                    .collect();
                Ok(IsisPdu::Csnp(Csnp {
                    source: SystemId(sys),
                    entries,
                }))
            }
            PDU_L2_PSNP => {
                if buf.len() < 9 {
                    return Err(err("truncated PSNP"));
                }
                let _pdu_len = buf.get_u16();
                let mut sys = [0u8; 6];
                sys.copy_from_slice(&buf.split_to(6));
                buf.advance(1); // circuit id
                let tlvs = decode_tlvs(buf)?;
                let entries = tlvs
                    .into_iter()
                    .flat_map(|t| match t {
                        Tlv::LspEntries(e) => e,
                        _ => Vec::new(),
                    })
                    .collect();
                Ok(IsisPdu::Psnp(Psnp {
                    source: SystemId(sys),
                    entries,
                }))
            }
            t => Err(err(&format!("unknown PDU type {t}"))),
        }
    }
}

/// Parses the area bytes out of an ISO NET string
/// (`49.0001.1010.1040.1030.00` → `[0x49, 0x00, 0x01]`).
pub fn net_area_bytes(net: &str) -> Option<Bytes> {
    let parts: Vec<&str> = net.split('.').collect();
    // NET = area (1+ groups) + 3 groups of system id + 1 selector.
    if parts.len() < 5 {
        return None;
    }
    let area_parts = parts.get(..parts.len().checked_sub(4)?)?;
    let mut out = Vec::new();
    for p in area_parts {
        if p.len() % 2 != 0 {
            return None;
        }
        // Nibble-wise parse: a non-hex (or multi-byte) character fails
        // `hex_val` rather than tripping a slice boundary.
        let mut nibbles = p.bytes().map(hex_val);
        while let Some(hi) = nibbles.next() {
            out.push((hi? << 4) | nibbles.next().flatten()?);
        }
    }
    Some(Bytes::from(out))
}

/// Value of one ASCII hex digit.
fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Parses the system-id out of an ISO NET string.
pub fn net_system_id(net: &str) -> Option<SystemId> {
    let parts: Vec<&str> = net.split('.').collect();
    if parts.len() < 5 {
        return None;
    }
    let start = parts.len().checked_sub(4)?;
    let sys = parts.get(start..start + 3)?.join(".");
    sys.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n: u8) -> SystemId {
        SystemId([0, 0, 0, 0, 0, n])
    }

    fn roundtrip(pdu: IsisPdu) -> IsisPdu {
        let mut bytes = pdu.encode();
        let decoded = IsisPdu::decode(&mut bytes).unwrap();
        assert!(bytes.is_empty(), "decoder must consume the whole PDU");
        decoded
    }

    #[test]
    fn system_id_parse_display_roundtrip() {
        let s: SystemId = "1010.1040.1030".parse().unwrap();
        assert_eq!(s.to_string(), "1010.1040.1030");
        assert_eq!(s.0, [0x10, 0x10, 0x10, 0x40, 0x10, 0x30]);
        assert!("10.20".parse::<SystemId>().is_err());
    }

    #[test]
    fn system_id_from_ip() {
        let s = SystemId::from_ip(Ipv4Addr::new(2, 2, 2, 1));
        assert_eq!(s.0, [0, 0, 2, 2, 2, 1]);
    }

    #[test]
    fn hello_roundtrip() {
        let hello = P2pHello {
            circuit_type: 2,
            source: sys(1),
            hold_time_secs: 30,
            circuit_id: 1,
            tlvs: vec![
                Tlv::Area(vec![Bytes::from_static(&[0x49, 0x00, 0x01])]),
                Tlv::Protocols(vec![NLPID_IPV4]),
                Tlv::IpIfaceAddr(vec![Ipv4Addr::new(100, 64, 0, 1)]),
                Tlv::P2pAdjState {
                    state: AdjState::Initializing,
                    neighbor: None,
                },
            ],
        };
        match roundtrip(IsisPdu::P2pHello(hello.clone())) {
            IsisPdu::P2pHello(got) => assert_eq!(got, hello),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hello_adj_state_with_neighbor() {
        let hello = P2pHello {
            circuit_type: 2,
            source: sys(1),
            hold_time_secs: 30,
            circuit_id: 1,
            tlvs: vec![Tlv::P2pAdjState {
                state: AdjState::Up,
                neighbor: Some(sys(2)),
            }],
        };
        match roundtrip(IsisPdu::P2pHello(hello)) {
            IsisPdu::P2pHello(got) => {
                assert_eq!(got.adj_state(), Some((AdjState::Up, Some(sys(2)))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lsp_roundtrip_with_reachability() {
        let lsp = Lsp {
            lifetime_secs: 1200,
            lsp_id: LspId::of(sys(1)),
            seq: 7,
            tlvs: vec![
                Tlv::Area(vec![Bytes::from_static(&[0x49, 0x00, 0x01])]),
                Tlv::Hostname("r1".to_string()),
                Tlv::ExtIsReach(vec![
                    IsNeighbor {
                        neighbor: sys(2),
                        pseudonode: 0,
                        metric: 10,
                    },
                    IsNeighbor {
                        neighbor: sys(3),
                        pseudonode: 0,
                        metric: 100,
                    },
                ]),
                Tlv::ExtIpReach(vec![
                    IpReach {
                        metric: 10,
                        prefix: "2.2.2.1/32".parse().unwrap(),
                        down: false,
                    },
                    IpReach {
                        metric: 20,
                        prefix: "100.64.0.0/31".parse().unwrap(),
                        down: true,
                    },
                ]),
            ],
        };
        match roundtrip(IsisPdu::Lsp(lsp.clone())) {
            IsisPdu::Lsp(got) => {
                assert_eq!(got, lsp);
                assert_eq!(got.hostname(), Some("r1"));
                assert_eq!(got.is_neighbors().len(), 2);
                assert_eq!(got.ip_reaches().len(), 2);
                assert!(got.ip_reaches()[1].down);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lsp_checksum_detects_corruption() {
        let lsp = Lsp {
            lifetime_secs: 1200,
            lsp_id: LspId::of(sys(1)),
            seq: 1,
            tlvs: vec![Tlv::Hostname("r1".to_string())],
        };
        let encoded = IsisPdu::Lsp(lsp).encode();
        let mut corrupted = encoded.to_vec();
        // Flip a byte of the sequence number (offset: 8 common header +
        // 2 pdu length + 2 lifetime + 8 LSP id).
        // (note: ^0xff would turn 0x00 into 0xff, which Fletcher — arithmetic
        // mod 255 — cannot distinguish from 0x00, so flip low bits instead)
        corrupted[20] ^= 0x0f;
        let mut b = Bytes::from(corrupted);
        let e = IsisPdu::decode(&mut b).unwrap_err();
        assert!(e.reason.contains("checksum"));
    }

    #[test]
    fn csnp_psnp_roundtrip() {
        let entries = vec![
            LspEntry {
                lifetime: 1200,
                lsp_id: LspId::of(sys(1)),
                seq: 3,
                checksum: 77,
            },
            LspEntry {
                lifetime: 900,
                lsp_id: LspId::of(sys(2)),
                seq: 9,
                checksum: 88,
            },
        ];
        match roundtrip(IsisPdu::Csnp(Csnp {
            source: sys(1),
            entries: entries.clone(),
        })) {
            IsisPdu::Csnp(got) => assert_eq!(got.entries, entries),
            other => panic!("{other:?}"),
        }
        match roundtrip(IsisPdu::Psnp(Psnp {
            source: sys(2),
            entries: entries.clone(),
        })) {
            IsisPdu::Psnp(got) => assert_eq!(got.entries, entries),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn big_metric_saturates_to_24_bits() {
        let lsp = Lsp {
            lifetime_secs: 1200,
            lsp_id: LspId::of(sys(1)),
            seq: 1,
            tlvs: vec![Tlv::ExtIsReach(vec![IsNeighbor {
                neighbor: sys(2),
                pseudonode: 0,
                metric: u32::MAX,
            }])],
        };
        match roundtrip(IsisPdu::Lsp(lsp)) {
            IsisPdu::Lsp(got) => {
                assert_eq!(got.is_neighbors()[0].metric, 0xff_ffff);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut empty = Bytes::new();
        assert!(IsisPdu::decode(&mut empty).is_err());
        let mut bad = Bytes::from_static(&[0x42; 30]);
        assert!(IsisPdu::decode(&mut bad).is_err());
    }

    #[test]
    fn net_parsing_helpers() {
        let net = "49.0001.1010.1040.1030.00";
        assert_eq!(net_area_bytes(net).unwrap().as_ref(), &[0x49, 0x00, 0x01]);
        assert_eq!(net_system_id(net).unwrap().to_string(), "1010.1040.1030");
        assert!(net_area_bytes("49.0001").is_none());
    }

    #[test]
    fn fletcher_known_values() {
        assert_eq!(fletcher16(&[]), 0);
        assert_eq!(fletcher16(&[0x01, 0x02]), {
            // c0: 1, then 3; c1: 1, then 4
            (4 << 8) | 3
        });
    }

    #[test]
    fn unknown_tlv_preserved() {
        let hello = P2pHello {
            circuit_type: 2,
            source: sys(1),
            hold_time_secs: 30,
            circuit_id: 1,
            tlvs: vec![Tlv::Unknown {
                type_code: 250,
                value: Bytes::from_static(&[1, 2, 3]),
            }],
        };
        match roundtrip(IsisPdu::P2pHello(hello.clone())) {
            IsisPdu::P2pHello(got) => assert_eq!(got.tlvs, hello.tlvs),
            other => panic!("{other:?}"),
        }
    }
}
