//! Byte-level wire formats for the emulated control planes.
//!
//! The two vendor router implementations in `mfv-vrouter` exchange *encoded
//! bytes*, not shared Rust structures. This matters: the paper's argument for
//! emulation over modeling includes cross-vendor interplay bugs ("one
//! vendor's OS produced an unusual but valid BGP advertisement that caused
//! another vendor's routing process to crash during parsing"). Such a bug is
//! only expressible when each vendor runs its own parser over a real byte
//! stream — which is exactly what this crate enables.
//!
//! - [`bgp`] — BGP-4 messages (RFC 4271 framing, 4-byte ASNs, unknown
//!   optional-transitive attribute passthrough)
//! - [`isis`] — IS-IS PDUs (point-to-point hellos, LSPs, sequence-number
//!   PDUs, TLV-encoded reachability)

pub mod bgp;
pub mod isis;

use std::fmt;

/// Error produced when decoding a malformed or truncated message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Which codec failed ("bgp", "isis").
    pub proto: &'static str,
    pub reason: String,
}

impl DecodeError {
    pub fn new(proto: &'static str, reason: impl Into<String>) -> DecodeError {
        DecodeError {
            proto,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} decode error: {}", self.proto, self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// Error produced when a message cannot be represented on the wire — a body
/// or sub-field larger than its length field can carry. Encoders must return
/// this instead of silently truncating the length (an earlier version wrapped
/// `body.len() as u16`, emitting a corrupt frame the peer misparsed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncodeError {
    /// Which codec failed ("bgp", "isis").
    pub proto: &'static str,
    pub reason: String,
}

impl EncodeError {
    pub fn new(proto: &'static str, reason: impl Into<String>) -> EncodeError {
        EncodeError {
            proto,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} encode error: {}", self.proto, self.reason)
    }
}

impl std::error::Error for EncodeError {}
