//! BGP-4 message codec.
//!
//! Follows RFC 4271 framing: 16-byte all-ones marker, 2-byte length, 1-byte
//! type. AS numbers are 4 bytes everywhere (both emulated vendors are
//! 4-octet-AS capable, negotiated via capability 65 in OPEN). Unknown path
//! attributes are preserved verbatim so optional-transitive attributes
//! propagate through routers that do not understand them — the behaviour
//! that enables the paper's cross-vendor crash scenario (A3).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use mfv_types::{AsNum, AsPath, AsPathSegment, Community, Origin, Prefix};

use crate::{DecodeError, EncodeError};

/// BGP message type codes.
pub const TYPE_OPEN: u8 = 1;
pub const TYPE_UPDATE: u8 = 2;
pub const TYPE_NOTIFICATION: u8 = 3;
pub const TYPE_KEEPALIVE: u8 = 4;

/// Path attribute type codes.
pub const ATTR_ORIGIN: u8 = 1;
pub const ATTR_AS_PATH: u8 = 2;
pub const ATTR_NEXT_HOP: u8 = 3;
pub const ATTR_MED: u8 = 4;
pub const ATTR_LOCAL_PREF: u8 = 5;
pub const ATTR_COMMUNITIES: u8 = 8;

/// Attribute flag bits.
pub const FLAG_OPTIONAL: u8 = 0x80;
pub const FLAG_TRANSITIVE: u8 = 0x40;
pub const FLAG_PARTIAL: u8 = 0x20;
pub const FLAG_EXTENDED_LEN: u8 = 0x10;

/// A decoded path attribute. Well-known attributes are structured; anything
/// else is carried as raw bytes with its original flags.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathAttr {
    Origin(Origin),
    AsPath(AsPath),
    NextHop(Ipv4Addr),
    Med(u32),
    LocalPref(u32),
    Communities(Vec<Community>),
    /// An attribute this implementation does not interpret. `transitive`
    /// attributes must be propagated (with the partial bit set); others are
    /// dropped at the first hop that does not understand them.
    Unknown {
        flags: u8,
        type_code: u8,
        value: Bytes,
    },
}

impl PathAttr {
    /// Attribute type code on the wire.
    pub fn type_code(&self) -> u8 {
        match self {
            PathAttr::Origin(_) => ATTR_ORIGIN,
            PathAttr::AsPath(_) => ATTR_AS_PATH,
            PathAttr::NextHop(_) => ATTR_NEXT_HOP,
            PathAttr::Med(_) => ATTR_MED,
            PathAttr::LocalPref(_) => ATTR_LOCAL_PREF,
            PathAttr::Communities(_) => ATTR_COMMUNITIES,
            PathAttr::Unknown { type_code, .. } => *type_code,
        }
    }

    /// Is this attribute transitive (must be propagated even if not
    /// understood)?
    pub fn is_transitive(&self) -> bool {
        match self {
            PathAttr::Unknown { flags, .. } => flags & FLAG_TRANSITIVE != 0,
            // All structured attributes we implement are well-known or
            // optional-transitive.
            _ => true,
        }
    }
}

/// A BGP OPEN message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpenMsg {
    pub version: u8,
    pub asn: AsNum,
    pub hold_time_secs: u16,
    pub bgp_id: Ipv4Addr,
    /// Capability codes advertised (we use 65 = 4-octet AS).
    pub capabilities: Vec<u8>,
}

impl OpenMsg {
    pub fn new(asn: AsNum, hold_time_secs: u16, bgp_id: Ipv4Addr) -> OpenMsg {
        OpenMsg {
            version: 4,
            asn,
            hold_time_secs,
            bgp_id,
            capabilities: vec![65],
        }
    }
}

/// A BGP UPDATE message.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct UpdateMsg {
    pub withdrawn: Vec<Prefix>,
    pub attrs: Vec<PathAttr>,
    pub nlri: Vec<Prefix>,
}

impl UpdateMsg {
    /// A pure withdrawal.
    pub fn withdraw(prefixes: Vec<Prefix>) -> UpdateMsg {
        UpdateMsg {
            withdrawn: prefixes,
            attrs: Vec::new(),
            nlri: Vec::new(),
        }
    }

    pub fn attr(&self, type_code: u8) -> Option<&PathAttr> {
        self.attrs.iter().find(|a| a.type_code() == type_code)
    }

    pub fn origin(&self) -> Option<Origin> {
        match self.attr(ATTR_ORIGIN) {
            Some(PathAttr::Origin(o)) => Some(*o),
            _ => None,
        }
    }

    pub fn as_path(&self) -> Option<&AsPath> {
        match self.attr(ATTR_AS_PATH) {
            Some(PathAttr::AsPath(p)) => Some(p),
            _ => None,
        }
    }

    pub fn next_hop(&self) -> Option<Ipv4Addr> {
        match self.attr(ATTR_NEXT_HOP) {
            Some(PathAttr::NextHop(nh)) => Some(*nh),
            _ => None,
        }
    }

    pub fn med(&self) -> Option<u32> {
        match self.attr(ATTR_MED) {
            Some(PathAttr::Med(m)) => Some(*m),
            _ => None,
        }
    }

    pub fn local_pref(&self) -> Option<u32> {
        match self.attr(ATTR_LOCAL_PREF) {
            Some(PathAttr::LocalPref(lp)) => Some(*lp),
            _ => None,
        }
    }

    pub fn communities(&self) -> Vec<Community> {
        match self.attr(ATTR_COMMUNITIES) {
            Some(PathAttr::Communities(cs)) => cs.clone(),
            _ => Vec::new(),
        }
    }
}

/// A BGP NOTIFICATION (fatal error; closes the session).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NotificationMsg {
    pub code: u8,
    pub subcode: u8,
    pub data: Bytes,
}

/// Any BGP message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BgpMsg {
    Open(OpenMsg),
    Update(UpdateMsg),
    Notification(NotificationMsg),
    Keepalive,
}

/// Maximum BGP message body (RFC 4271: 4096-byte messages are the protocol
/// limit, but both emulated vendors accept "jumbo" frames up to the framing
/// limit — the u16 length field minus the 19-byte header).
pub const MAX_BODY_LEN: usize = u16::MAX as usize - 19;

/// Maximum capability bytes in one OPEN optional parameter: the parameter
/// length is a u8 and the capabilities TLV costs 2 bytes of it.
pub const MAX_CAPS_LEN: usize = u8::MAX as usize - 2;

impl BgpMsg {
    /// Encodes the message with full RFC 4271 framing.
    ///
    /// Fails with [`EncodeError`] when any length field would overflow its
    /// wire width (message body > [`MAX_BODY_LEN`], capabilities >
    /// [`MAX_CAPS_LEN`], withdrawn/attribute blocks > 65535 bytes, AS_PATH
    /// segments > 255 ASNs). Truncating instead — which an earlier version
    /// did via `as u16`/`as u8` casts — emits a frame whose length field
    /// disagrees with its contents, and the *peer's* decoder misparses it.
    pub fn encode(&self) -> Result<Bytes, EncodeError> {
        let err = |r: String| EncodeError::new("bgp", r);
        let mut body = BytesMut::new();
        let msg_type = match self {
            BgpMsg::Open(open) => {
                body.put_u8(open.version);
                // 2-byte AS field: AS_TRANS when the real ASN doesn't fit.
                let as16 = if open.asn.0 > u16::MAX as u32 {
                    23456
                } else {
                    open.asn.0 as u16
                };
                body.put_u16(as16);
                body.put_u16(open.hold_time_secs);
                body.put_u32(u32::from(open.bgp_id));
                // Optional parameters: one capabilities param (type 2).
                let mut caps = BytesMut::new();
                for &code in &open.capabilities {
                    caps.put_u8(code);
                    if code == 65 {
                        caps.put_u8(4);
                        caps.put_u32(open.asn.0);
                    } else {
                        caps.put_u8(0);
                    }
                }
                if caps.len() > MAX_CAPS_LEN {
                    return Err(err(format!(
                        "OPEN capabilities {} bytes exceed the {MAX_CAPS_LEN}-byte parameter",
                        caps.len()
                    )));
                }
                if caps.is_empty() {
                    body.put_u8(0);
                } else {
                    body.put_u8((caps.len() + 2) as u8);
                    body.put_u8(2); // param type: capabilities
                    body.put_u8(caps.len() as u8);
                    body.extend_from_slice(&caps);
                }
                TYPE_OPEN
            }
            BgpMsg::Update(update) => {
                let mut wd = BytesMut::new();
                for p in &update.withdrawn {
                    encode_nlri(&mut wd, p);
                }
                if wd.len() > u16::MAX as usize {
                    return Err(err(format!(
                        "withdrawn routes {} bytes exceed the u16 length field",
                        wd.len()
                    )));
                }
                body.put_u16(wd.len() as u16);
                body.extend_from_slice(&wd);

                let mut attrs = BytesMut::new();
                for a in &update.attrs {
                    encode_attr(&mut attrs, a)?;
                }
                if attrs.len() > u16::MAX as usize {
                    return Err(err(format!(
                        "path attributes {} bytes exceed the u16 length field",
                        attrs.len()
                    )));
                }
                body.put_u16(attrs.len() as u16);
                body.extend_from_slice(&attrs);

                for p in &update.nlri {
                    encode_nlri(&mut body, p);
                }
                TYPE_UPDATE
            }
            BgpMsg::Notification(n) => {
                body.put_u8(n.code);
                body.put_u8(n.subcode);
                body.extend_from_slice(&n.data);
                TYPE_NOTIFICATION
            }
            BgpMsg::Keepalive => TYPE_KEEPALIVE,
        };

        if body.len() > MAX_BODY_LEN {
            return Err(err(format!(
                "body {} bytes exceeds the {MAX_BODY_LEN}-byte frame limit",
                body.len()
            )));
        }
        let mut out = BytesMut::with_capacity(19 + body.len());
        out.put_bytes(0xff, 16);
        out.put_u16(19 + body.len() as u16);
        out.put_u8(msg_type);
        out.extend_from_slice(&body);
        Ok(out.freeze())
    }

    /// Decodes one framed message.
    pub fn decode(buf: &mut Bytes) -> Result<BgpMsg, DecodeError> {
        let err = |r: &str| DecodeError::new("bgp", r);
        if buf.len() < 19 {
            return Err(err("truncated header"));
        }
        let marker = buf.split_to(16);
        if marker.iter().any(|&b| b != 0xff) {
            return Err(err("bad marker"));
        }
        let len = buf.get_u16() as usize;
        // 18 bytes (marker + length) are already consumed; type + body remain.
        if len < 19 || buf.len() < len - 18 {
            return Err(err("bad length"));
        }
        let msg_type = buf.get_u8();
        let mut body = buf.split_to(len - 19);

        match msg_type {
            TYPE_OPEN => {
                if body.len() < 10 {
                    return Err(err("truncated OPEN"));
                }
                let version = body.get_u8();
                let as16 = body.get_u16();
                let hold_time_secs = body.get_u16();
                let bgp_id = Ipv4Addr::from(body.get_u32());
                let opt_len = body.get_u8() as usize;
                if body.len() < opt_len {
                    return Err(err("truncated OPEN params"));
                }
                let mut params = body.split_to(opt_len);
                let mut capabilities = Vec::new();
                // The 2-byte field is authoritative only for 2-byte speakers.
                // A capability-65 value below overrides it; if the peer sent
                // AS_TRANS (23456) *without* the 4-octet-AS capability we keep
                // AS_TRANS verbatim, as real routers do — inventing any other
                // ASN here would change best-path tie-breaks cross-vendor.
                let mut asn = AsNum(as16 as u32);
                while params.len() >= 2 {
                    let ptype = params.get_u8();
                    let plen = params.get_u8() as usize;
                    if params.len() < plen {
                        return Err(err("truncated OPEN param"));
                    }
                    let mut pval = params.split_to(plen);
                    if ptype == 2 {
                        while pval.len() >= 2 {
                            let code = pval.get_u8();
                            let clen = pval.get_u8() as usize;
                            if pval.len() < clen {
                                return Err(err("truncated capability"));
                            }
                            let mut cval = pval.split_to(clen);
                            capabilities.push(code);
                            if code == 65 && clen == 4 {
                                asn = AsNum(cval.get_u32());
                            }
                        }
                    }
                }
                Ok(BgpMsg::Open(OpenMsg {
                    version,
                    asn,
                    hold_time_secs,
                    bgp_id,
                    capabilities,
                }))
            }
            TYPE_UPDATE => {
                if body.len() < 4 {
                    return Err(err("truncated UPDATE"));
                }
                let wd_len = body.get_u16() as usize;
                if body.len() < wd_len {
                    return Err(err("truncated withdrawn routes"));
                }
                let mut wd = body.split_to(wd_len);
                let mut withdrawn = Vec::new();
                while !wd.is_empty() {
                    withdrawn.push(decode_nlri(&mut wd)?);
                }
                if body.len() < 2 {
                    return Err(err("missing attr length"));
                }
                let attr_len = body.get_u16() as usize;
                if body.len() < attr_len {
                    return Err(err("truncated attributes"));
                }
                let mut ab = body.split_to(attr_len);
                let mut attrs = Vec::new();
                while !ab.is_empty() {
                    attrs.push(decode_attr(&mut ab)?);
                }
                let mut nlri = Vec::new();
                while !body.is_empty() {
                    nlri.push(decode_nlri(&mut body)?);
                }
                Ok(BgpMsg::Update(UpdateMsg {
                    withdrawn,
                    attrs,
                    nlri,
                }))
            }
            TYPE_NOTIFICATION => {
                if body.len() < 2 {
                    return Err(err("truncated NOTIFICATION"));
                }
                let code = body.get_u8();
                let subcode = body.get_u8();
                Ok(BgpMsg::Notification(NotificationMsg {
                    code,
                    subcode,
                    data: body,
                }))
            }
            TYPE_KEEPALIVE => Ok(BgpMsg::Keepalive),
            t => Err(err(&format!("unknown message type {t}"))),
        }
    }
}

fn encode_nlri(out: &mut BytesMut, p: &Prefix) {
    out.put_u8(p.len());
    let bits = p.network_bits().to_be_bytes();
    let nbytes = (p.len() as usize).div_ceil(8);
    // mfv-lint: allow(W1, Prefix guarantees len <= 32, so nbytes <= 4 == bits.len())
    out.extend_from_slice(&bits[..nbytes]);
}

fn decode_nlri(buf: &mut Bytes) -> Result<Prefix, DecodeError> {
    let err = |r: &str| DecodeError::new("bgp", r);
    if buf.is_empty() {
        return Err(err("empty NLRI"));
    }
    let len = buf.get_u8();
    if len > 32 {
        return Err(err("NLRI prefix length > 32"));
    }
    let nbytes = (len as usize).div_ceil(8);
    if buf.len() < nbytes {
        return Err(err("truncated NLRI"));
    }
    let mut bits = [0u8; 4];
    // mfv-lint: allow(W1, len > 32 rejected above with DecodeError, so nbytes <= 4)
    bits[..nbytes].copy_from_slice(&buf.split_to(nbytes));
    Ok(Prefix::from_bits(u32::from_be_bytes(bits), len))
}

fn encode_attr(out: &mut BytesMut, attr: &PathAttr) -> Result<(), EncodeError> {
    let err = |r: String| EncodeError::new("bgp", r);
    let mut value = BytesMut::new();
    let flags;
    match attr {
        PathAttr::Origin(o) => {
            flags = FLAG_TRANSITIVE;
            value.put_u8(o.code());
        }
        PathAttr::AsPath(path) => {
            flags = FLAG_TRANSITIVE;
            for seg in &path.0 {
                let (seg_type, asns) = match seg {
                    AsPathSegment::Set(a) => (1u8, a),
                    AsPathSegment::Sequence(a) => (2u8, a),
                };
                if asns.len() > u8::MAX as usize {
                    return Err(err(format!(
                        "AS_PATH segment with {} ASNs exceeds the u8 count field",
                        asns.len()
                    )));
                }
                value.put_u8(seg_type);
                value.put_u8(asns.len() as u8);
                for a in asns {
                    value.put_u32(a.0);
                }
            }
        }
        PathAttr::NextHop(nh) => {
            flags = FLAG_TRANSITIVE;
            value.put_u32(u32::from(*nh));
        }
        PathAttr::Med(m) => {
            flags = FLAG_OPTIONAL;
            value.put_u32(*m);
        }
        PathAttr::LocalPref(lp) => {
            flags = FLAG_TRANSITIVE;
            value.put_u32(*lp);
        }
        PathAttr::Communities(cs) => {
            flags = FLAG_OPTIONAL | FLAG_TRANSITIVE;
            for c in cs {
                value.put_u32(c.0);
            }
        }
        PathAttr::Unknown {
            flags: f, value: v, ..
        } => {
            flags = *f;
            value.extend_from_slice(v);
        }
    }
    if value.len() > u16::MAX as usize {
        return Err(err(format!(
            "attribute {} value {} bytes exceeds the extended u16 length field",
            attr.type_code(),
            value.len()
        )));
    }
    let extended = value.len() > 255;
    out.put_u8(flags | if extended { FLAG_EXTENDED_LEN } else { 0 });
    out.put_u8(attr.type_code());
    if extended {
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(value.len() as u8);
    }
    out.extend_from_slice(&value);
    Ok(())
}

fn decode_attr(buf: &mut Bytes) -> Result<PathAttr, DecodeError> {
    let err = |r: &str| DecodeError::new("bgp", r);
    if buf.len() < 3 {
        return Err(err("truncated attribute header"));
    }
    let flags = buf.get_u8();
    let type_code = buf.get_u8();
    let len = if flags & FLAG_EXTENDED_LEN != 0 {
        if buf.len() < 2 {
            return Err(err("truncated extended length"));
        }
        buf.get_u16() as usize
    } else {
        buf.get_u8() as usize
    };
    if buf.len() < len {
        return Err(err("truncated attribute value"));
    }
    let mut value = buf.split_to(len);

    match type_code {
        ATTR_ORIGIN => {
            if value.len() != 1 {
                return Err(err("bad ORIGIN length"));
            }
            let o = Origin::from_code(value.get_u8()).ok_or_else(|| err("bad ORIGIN"))?;
            Ok(PathAttr::Origin(o))
        }
        ATTR_AS_PATH => {
            let mut segs = Vec::new();
            while !value.is_empty() {
                if value.len() < 2 {
                    return Err(err("truncated AS_PATH segment"));
                }
                let seg_type = value.get_u8();
                let count = value.get_u8() as usize;
                if value.len() < count * 4 {
                    return Err(err("truncated AS_PATH ases"));
                }
                let mut asns = Vec::with_capacity(count);
                for _ in 0..count {
                    asns.push(AsNum(value.get_u32()));
                }
                segs.push(match seg_type {
                    1 => AsPathSegment::Set(asns),
                    2 => AsPathSegment::Sequence(asns),
                    t => return Err(err(&format!("bad AS_PATH segment type {t}"))),
                });
            }
            Ok(PathAttr::AsPath(AsPath(segs)))
        }
        ATTR_NEXT_HOP => {
            if value.len() != 4 {
                return Err(err("bad NEXT_HOP length"));
            }
            Ok(PathAttr::NextHop(Ipv4Addr::from(value.get_u32())))
        }
        ATTR_MED => {
            if value.len() != 4 {
                return Err(err("bad MED length"));
            }
            Ok(PathAttr::Med(value.get_u32()))
        }
        ATTR_LOCAL_PREF => {
            if value.len() != 4 {
                return Err(err("bad LOCAL_PREF length"));
            }
            Ok(PathAttr::LocalPref(value.get_u32()))
        }
        ATTR_COMMUNITIES => {
            if !value.len().is_multiple_of(4) {
                return Err(err("bad COMMUNITIES length"));
            }
            let mut cs = Vec::with_capacity(value.len() / 4);
            while !value.is_empty() {
                cs.push(Community(value.get_u32()));
            }
            Ok(PathAttr::Communities(cs))
        }
        _ => Ok(PathAttr::Unknown {
            flags,
            type_code,
            value,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn roundtrip(msg: BgpMsg) -> BgpMsg {
        let mut bytes = msg.encode().unwrap();
        let decoded = BgpMsg::decode(&mut bytes).unwrap();
        assert!(bytes.is_empty(), "decoder must consume the whole frame");
        decoded
    }

    #[test]
    fn keepalive_roundtrip() {
        assert_eq!(roundtrip(BgpMsg::Keepalive), BgpMsg::Keepalive);
    }

    #[test]
    fn open_roundtrip_2byte_as() {
        let open = OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(2, 2, 2, 1));
        match roundtrip(BgpMsg::Open(open.clone())) {
            BgpMsg::Open(got) => assert_eq!(got, open),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn open_roundtrip_4byte_as_uses_as_trans() {
        let open = OpenMsg::new(AsNum(400_000), 180, Ipv4Addr::new(1, 1, 1, 1));
        let encoded = BgpMsg::Open(open.clone()).encode().unwrap();
        // The 2-byte field (offset 19+1) must hold AS_TRANS.
        assert_eq!(u16::from_be_bytes([encoded[20], encoded[21]]), 23456);
        let mut b = encoded;
        match BgpMsg::decode(&mut b).unwrap() {
            BgpMsg::Open(got) => assert_eq!(got.asn, AsNum(400_000)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_roundtrip_full_attrs() {
        let update = UpdateMsg {
            withdrawn: vec![p("10.0.0.0/8"), p("192.168.1.0/24")],
            attrs: vec![
                PathAttr::Origin(Origin::Igp),
                PathAttr::AsPath(AsPath::sequence([AsNum(65001), AsNum(65002)])),
                PathAttr::NextHop(Ipv4Addr::new(100, 64, 0, 1)),
                PathAttr::Med(50),
                PathAttr::LocalPref(200),
                PathAttr::Communities(vec![Community::new(65001, 100), Community::new(65001, 666)]),
            ],
            nlri: vec![p("203.0.113.0/24"), p("0.0.0.0/0"), p("2.2.2.1/32")],
        };
        match roundtrip(BgpMsg::Update(update.clone())) {
            BgpMsg::Update(got) => assert_eq!(got, update),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_accessors() {
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![
                PathAttr::Origin(Origin::Egp),
                PathAttr::NextHop(Ipv4Addr::new(9, 9, 9, 9)),
                PathAttr::LocalPref(300),
            ],
            nlri: vec![p("10.0.0.0/8")],
        };
        assert_eq!(update.origin(), Some(Origin::Egp));
        assert_eq!(update.next_hop(), Some(Ipv4Addr::new(9, 9, 9, 9)));
        assert_eq!(update.local_pref(), Some(300));
        assert_eq!(update.med(), None);
        assert!(update.communities().is_empty());
    }

    #[test]
    fn unknown_transitive_attr_roundtrips_verbatim() {
        // An "unusual but valid" optional-transitive attribute — the paper's
        // cross-vendor crash trigger. It must survive encode/decode intact.
        let odd = PathAttr::Unknown {
            flags: FLAG_OPTIONAL | FLAG_TRANSITIVE | FLAG_PARTIAL,
            type_code: 213,
            value: Bytes::from_static(&[0xde, 0xad, 0xbe, 0xef]),
        };
        assert!(odd.is_transitive());
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![
                PathAttr::Origin(Origin::Igp),
                PathAttr::NextHop(Ipv4Addr::new(1, 2, 3, 4)),
                odd.clone(),
            ],
            nlri: vec![p("10.0.0.0/8")],
        };
        match roundtrip(BgpMsg::Update(update)) {
            BgpMsg::Update(got) => assert_eq!(got.attrs[2], odd),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extended_length_attribute() {
        let big = PathAttr::Unknown {
            flags: FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code: 99,
            value: Bytes::from(vec![7u8; 300]),
        };
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![big.clone()],
            nlri: vec![],
        };
        match roundtrip(BgpMsg::Update(update)) {
            BgpMsg::Update(got) => match &got.attrs[0] {
                PathAttr::Unknown { flags, value, .. } => {
                    // Extended-length bit is a framing detail, not identity.
                    assert_eq!(*flags & !FLAG_EXTENDED_LEN, FLAG_OPTIONAL | FLAG_TRANSITIVE);
                    assert_eq!(value.len(), 300);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn notification_roundtrip() {
        let n = NotificationMsg {
            code: 6,
            subcode: 2,
            data: Bytes::from_static(b"administrative shutdown"),
        };
        match roundtrip(BgpMsg::Notification(n.clone())) {
            BgpMsg::Notification(got) => assert_eq!(got, n),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_rejects_bad_marker() {
        let mut bytes = BgpMsg::Keepalive.encode().unwrap().to_vec();
        bytes[3] = 0x00;
        let mut b = Bytes::from(bytes);
        assert!(BgpMsg::decode(&mut b).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = BgpMsg::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: vec![PathAttr::Origin(Origin::Igp)],
            nlri: vec![p("10.0.0.0/8")],
        })
        .encode()
        .unwrap();
        for cut in [1, 10, 18, bytes.len() - 1] {
            let mut b = bytes.slice(..cut);
            assert!(BgpMsg::decode(&mut b).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_overlong_prefix() {
        // Craft an UPDATE whose NLRI claims a /40.
        let mut body = BytesMut::new();
        body.put_u16(0); // withdrawn len
        body.put_u16(0); // attr len
        body.put_u8(40); // bogus prefix length
        body.put_bytes(0, 5);
        let mut frame = BytesMut::new();
        frame.put_bytes(0xff, 16);
        frame.put_u16(19 + body.len() as u16);
        frame.put_u8(TYPE_UPDATE);
        frame.extend_from_slice(&body);
        let mut b = frame.freeze();
        let e = BgpMsg::decode(&mut b).unwrap_err();
        assert!(e.reason.contains("length > 32"));
    }

    #[test]
    fn nlri_length_is_minimal() {
        // A /8 must use exactly 1 byte of prefix data.
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![],
            nlri: vec![p("10.0.0.0/8")],
        };
        let encoded = BgpMsg::Update(update).encode().unwrap();
        // header 19 + wd_len 2 + attr_len 2 + nlri (1 + 1)
        assert_eq!(encoded.len(), 19 + 2 + 2 + 2);
    }

    #[test]
    fn oversize_body_is_an_encode_error_not_a_truncation() {
        // ~65 KiB of attribute value pushes the body past MAX_BODY_LEN. The
        // old encoder wrapped `19 + body.len() as u16` and emitted a frame
        // whose length field lied; now it must refuse.
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![PathAttr::Unknown {
                flags: FLAG_OPTIONAL | FLAG_TRANSITIVE,
                type_code: 99,
                value: Bytes::from(vec![0u8; MAX_BODY_LEN]),
            }],
            nlri: vec![],
        };
        let e = BgpMsg::Update(update).encode().unwrap_err();
        assert_eq!(e.proto, "bgp");
        assert!(e.reason.contains("exceed"), "{e}");
    }

    #[test]
    fn oversize_attr_block_is_an_encode_error() {
        // Two ~40 KiB attributes fit the frame check individually but blow
        // the u16 "total path attribute length" field.
        let big = |code: u8| PathAttr::Unknown {
            flags: FLAG_OPTIONAL | FLAG_TRANSITIVE,
            type_code: code,
            value: Bytes::from(vec![0u8; 40_000]),
        };
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![big(98), big(99)],
            nlri: vec![],
        };
        let e = BgpMsg::Update(update).encode().unwrap_err();
        assert!(e.reason.contains("path attributes"), "{e}");
    }

    #[test]
    fn oversize_capabilities_are_an_encode_error() {
        // >253 bytes of capabilities overflow the u8 optional-parameter
        // length; the old encoder wrapped `(caps.len() + 2) as u8`.
        let mut open = OpenMsg::new(AsNum(65001), 90, Ipv4Addr::new(1, 1, 1, 1));
        open.capabilities = (0..200).map(|i| if i == 0 { 65 } else { 200 }).collect();
        let e = BgpMsg::Open(open).encode().unwrap_err();
        assert!(e.reason.contains("capabilities"), "{e}");
    }

    #[test]
    fn oversize_as_path_segment_is_an_encode_error() {
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![PathAttr::AsPath(AsPath::sequence(
                (0..300).map(|i| AsNum(65000 + i)),
            ))],
            nlri: vec![],
        };
        let e = BgpMsg::Update(update).encode().unwrap_err();
        assert!(e.reason.contains("AS_PATH"), "{e}");
    }

    #[test]
    fn asn_70000_roundtrips_via_as_trans() {
        let open = OpenMsg::new(AsNum(70_000), 90, Ipv4Addr::new(3, 3, 3, 3));
        let encoded = BgpMsg::Open(open).encode().unwrap();
        // 70_000 & 0xffff == 4464: the old truncation emitted a *different
        // valid ASN*. The field must hold AS_TRANS instead.
        assert_eq!(u16::from_be_bytes([encoded[20], encoded[21]]), 23456);
        let mut b = encoded;
        match BgpMsg::decode(&mut b).unwrap() {
            BgpMsg::Open(got) => assert_eq!(got.asn, AsNum(70_000)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn as_trans_without_capability_decodes_verbatim() {
        // A 2-byte-only speaker sending AS_TRANS with no capability 65: we
        // must keep 23456 rather than invent an ASN.
        let mut body = BytesMut::new();
        body.put_u8(4); // version
        body.put_u16(23456);
        body.put_u16(90);
        body.put_u32(u32::from(Ipv4Addr::new(5, 5, 5, 5)));
        body.put_u8(0); // no optional parameters
        let mut frame = BytesMut::new();
        frame.put_bytes(0xff, 16);
        frame.put_u16(19 + body.len() as u16);
        frame.put_u8(TYPE_OPEN);
        frame.extend_from_slice(&body);
        let mut b = frame.freeze();
        match BgpMsg::decode(&mut b).unwrap() {
            BgpMsg::Open(got) => {
                assert_eq!(got.asn, AsNum(23456));
                assert!(got.capabilities.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_route_nlri() {
        let update = UpdateMsg {
            withdrawn: vec![],
            attrs: vec![],
            nlri: vec![p("0.0.0.0/0")],
        };
        match roundtrip(BgpMsg::Update(update.clone())) {
            BgpMsg::Update(got) => assert_eq!(got, update),
            other => panic!("{other:?}"),
        }
    }
}
