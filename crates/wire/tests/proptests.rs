//! Property tests for the wire codecs: arbitrary messages must round-trip
//! bit-exactly, and the decoders must reject (never panic on) arbitrary
//! byte soup — these parsers face bytes produced by the *other* vendor's
//! implementation, so total safety matters.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;

use mfv_types::{AsNum, AsPath, AsPathSegment, Community, Origin, Prefix};
use mfv_wire::bgp::{BgpMsg, NotificationMsg, OpenMsg, PathAttr, UpdateMsg};
use mfv_wire::isis::{
    AdjState, IpReach, IsNeighbor, IsisPdu, Lsp, LspEntry, LspId, P2pHello, SystemId, Tlv,
};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::from_bits(bits, len))
}

fn arb_community() -> impl Strategy<Value = Community> {
    any::<u32>().prop_map(Community)
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(
        (
            any::<bool>(),
            proptest::collection::vec(any::<u32>().prop_map(AsNum), 1..6),
        ),
        0..4,
    )
    .prop_map(|segs| {
        AsPath(
            segs.into_iter()
                .map(|(is_set, asns)| {
                    if is_set {
                        AsPathSegment::Set(asns)
                    } else {
                        AsPathSegment::Sequence(asns)
                    }
                })
                .collect(),
        )
    })
}

fn arb_attr() -> impl Strategy<Value = PathAttr> {
    prop_oneof![
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ]
        .prop_map(PathAttr::Origin),
        arb_as_path().prop_map(PathAttr::AsPath),
        any::<u32>().prop_map(|v| PathAttr::NextHop(Ipv4Addr::from(v))),
        any::<u32>().prop_map(PathAttr::Med),
        any::<u32>().prop_map(PathAttr::LocalPref),
        proptest::collection::vec(arb_community(), 0..8).prop_map(PathAttr::Communities),
        // Unknown optional-transitive attributes with arbitrary payloads.
        (
            // type codes above the well-known range
            100u8..=255,
            proptest::collection::vec(any::<u8>(), 0..40),
            any::<bool>(),
        )
            .prop_map(|(type_code, value, partial)| PathAttr::Unknown {
                flags: mfv_wire::bgp::FLAG_OPTIONAL
                    | mfv_wire::bgp::FLAG_TRANSITIVE
                    | if partial {
                        mfv_wire::bgp::FLAG_PARTIAL
                    } else {
                        0
                    },
                type_code,
                value: Bytes::from(value),
            }),
    ]
}

fn arb_update() -> impl Strategy<Value = UpdateMsg> {
    (
        proptest::collection::vec(arb_prefix(), 0..10),
        proptest::collection::vec(arb_attr(), 0..6),
        proptest::collection::vec(arb_prefix(), 0..10),
    )
        .prop_map(|(withdrawn, attrs, nlri)| UpdateMsg {
            withdrawn,
            attrs,
            nlri,
        })
}

fn arb_system_id() -> impl Strategy<Value = SystemId> {
    any::<[u8; 6]>().prop_map(SystemId)
}

fn arb_lsp() -> impl Strategy<Value = Lsp> {
    (
        any::<u16>(),
        arb_system_id(),
        any::<u8>(),
        any::<u32>(),
        proptest::collection::vec(
            prop_oneof![
                proptest::collection::vec((arb_system_id(), any::<u8>(), 0u32..0xff_ffff), 0..5)
                    .prop_map(|ns| Tlv::ExtIsReach(
                        ns.into_iter()
                            .map(|(neighbor, pseudonode, metric)| IsNeighbor {
                                neighbor,
                                pseudonode,
                                metric
                            })
                            .collect()
                    )),
                proptest::collection::vec((any::<u32>(), arb_prefix(), any::<bool>()), 0..5)
                    .prop_map(|rs| Tlv::ExtIpReach(
                        rs.into_iter()
                            .map(|(metric, prefix, down)| IpReach {
                                metric,
                                prefix,
                                down
                            })
                            .collect()
                    )),
                "[a-z][a-z0-9-]{0,14}".prop_map(Tlv::Hostname),
            ],
            0..4,
        ),
    )
        .prop_map(|(lifetime_secs, sys, fragment, seq, tlvs)| Lsp {
            lifetime_secs,
            lsp_id: LspId {
                system: sys,
                pseudonode: 0,
                fragment,
            },
            seq,
            tlvs,
        })
}

proptest! {
    #[test]
    fn bgp_update_roundtrip(update in arb_update()) {
        let mut bytes = BgpMsg::Update(update.clone()).encode().unwrap();
        let decoded = BgpMsg::decode(&mut bytes).unwrap();
        prop_assert!(bytes.is_empty());
        match decoded {
            BgpMsg::Update(got) => {
                prop_assert_eq!(got.withdrawn, update.withdrawn);
                prop_assert_eq!(got.nlri, update.nlri);
                prop_assert_eq!(got.attrs.len(), update.attrs.len());
                for (g, w) in got.attrs.iter().zip(update.attrs.iter()) {
                    match (g, w) {
                        (
                            PathAttr::Unknown { flags: gf, type_code: gt, value: gv },
                            PathAttr::Unknown { flags: wf, type_code: wt, value: wv },
                        ) => {
                            // Extended-length is framing, not identity.
                            prop_assert_eq!(gf & !mfv_wire::bgp::FLAG_EXTENDED_LEN,
                                            wf & !mfv_wire::bgp::FLAG_EXTENDED_LEN);
                            prop_assert_eq!(gt, wt);
                            prop_assert_eq!(gv, wv);
                        }
                        _ => prop_assert_eq!(g, w),
                    }
                }
            }
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn bgp_open_roundtrip(asn in any::<u32>(), hold in any::<u16>(), id in any::<u32>()) {
        let open = OpenMsg::new(AsNum(asn), hold, Ipv4Addr::from(id));
        let mut bytes = BgpMsg::Open(open.clone()).encode().unwrap();
        match BgpMsg::decode(&mut bytes).unwrap() {
            BgpMsg::Open(got) => prop_assert_eq!(got, open),
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn bgp_notification_roundtrip(code in any::<u8>(), sub in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = NotificationMsg { code, subcode: sub, data: Bytes::from(data) };
        let mut bytes = BgpMsg::Notification(n.clone()).encode().unwrap();
        match BgpMsg::decode(&mut bytes).unwrap() {
            BgpMsg::Notification(got) => prop_assert_eq!(got, n),
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn bgp_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut b = Bytes::from(data);
        let _ = BgpMsg::decode(&mut b);
    }

    #[test]
    fn bgp_decoder_rejects_truncations(update in arb_update(), frac in 0.0f64..1.0) {
        let bytes = BgpMsg::Update(update).encode().unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            let mut b = bytes.slice(..cut);
            prop_assert!(BgpMsg::decode(&mut b).is_err());
        }
    }

    #[test]
    fn bgp_encode_length_field_is_honest(update in arb_update()) {
        // Encode must either fail loudly (EncodeError) or emit a frame whose
        // length field matches the actual byte count — never a wrapped
        // header. Every frame it emits must also decode.
        if let Ok(bytes) = BgpMsg::Update(update).encode() {
            let framed = u16::from_be_bytes([bytes[16], bytes[17]]) as usize;
            prop_assert_eq!(framed, bytes.len());
            let mut b = bytes;
            prop_assert!(BgpMsg::decode(&mut b).is_ok());
        }
    }

    #[test]
    fn bgp_open_never_silently_alters_asn(asn in any::<u32>()) {
        let open = OpenMsg::new(AsNum(asn), 90, Ipv4Addr::new(1, 1, 1, 1));
        let bytes = BgpMsg::Open(open).encode().unwrap();
        // The 2-byte "My AS" field is either the real ASN or AS_TRANS —
        // never a low-16-bits truncation (a different valid ASN).
        let as16 = u32::from(u16::from_be_bytes([bytes[20], bytes[21]]));
        if asn > u16::MAX as u32 {
            prop_assert_eq!(as16, 23456);
        } else {
            prop_assert_eq!(as16, asn);
        }
        // And the capability path recovers the full 4-byte ASN exactly.
        let mut b = bytes;
        match BgpMsg::decode(&mut b).unwrap() {
            BgpMsg::Open(got) => prop_assert_eq!(got.asn, AsNum(asn)),
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn isis_lsp_roundtrip(lsp in arb_lsp()) {
        let mut bytes = IsisPdu::Lsp(lsp.clone()).encode();
        let decoded = IsisPdu::decode(&mut bytes).unwrap();
        prop_assert!(bytes.is_empty());
        match decoded {
            IsisPdu::Lsp(got) => prop_assert_eq!(got, lsp),
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn isis_hello_roundtrip(
        sys in arb_system_id(),
        hold in any::<u16>(),
        state_code in 0u8..3,
        neighbor in proptest::option::of(arb_system_id()),
    ) {
        let state = match state_code {
            0 => AdjState::Up,
            1 => AdjState::Initializing,
            _ => AdjState::Down,
        };
        let hello = P2pHello {
            circuit_type: 2,
            source: sys,
            hold_time_secs: hold,
            circuit_id: 1,
            tlvs: vec![Tlv::P2pAdjState { state, neighbor }],
        };
        let mut bytes = IsisPdu::P2pHello(hello.clone()).encode();
        match IsisPdu::decode(&mut bytes).unwrap() {
            IsisPdu::P2pHello(got) => prop_assert_eq!(got, hello),
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn isis_csnp_roundtrip(
        sys in arb_system_id(),
        entries in proptest::collection::vec(
            (any::<u16>(), arb_system_id(), any::<u32>(), any::<u16>()),
            0..10,
        ),
    ) {
        let entries: Vec<LspEntry> = entries
            .into_iter()
            .map(|(lifetime, s, seq, checksum)| LspEntry {
                lifetime,
                lsp_id: LspId::of(s),
                seq,
                checksum,
            })
            .collect();
        let pdu = IsisPdu::Csnp(mfv_wire::isis::Csnp { source: sys, entries: entries.clone() });
        let mut bytes = pdu.encode();
        match IsisPdu::decode(&mut bytes).unwrap() {
            IsisPdu::Csnp(got) => prop_assert_eq!(got.entries, entries),
            other => prop_assert!(false, "wrong type {:?}", other),
        }
    }

    #[test]
    fn isis_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut b = Bytes::from(data);
        let _ = IsisPdu::decode(&mut b);
    }
}
