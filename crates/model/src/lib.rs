//! The model-based control-plane verification baseline — this workspace's
//! stand-in for Batfish's Incremental Batfish Dataplane (IBDP) model.
//!
//! Two deliberate properties distinguish it from the emulation path and are
//! the subject of the paper's experiments:
//!
//! 1. **Partial feature coverage** ([`parser`]): management daemons, MPLS,
//!    TE, RSVP, SSL profiles and more are outside the model; every such
//!    config line is counted (experiment E2).
//! 2. **Modeling assumptions that can be wrong** ([`parser`], Fig. 3 bugs;
//!    [`compute`], reference-only decision process): the switchport-ordering
//!    assumption silently drops interface addresses, changing the produced
//!    dataplane (experiment E3).

pub mod compute;
pub mod parser;

pub use compute::{compute, ModelResult};
pub use parser::{parse, CoverageReport, ModelParseError, UnrecognizedKind, UnrecognizedLine};

use mfv_dataplane::Dataplane;
use mfv_types::NodeId;

/// End-to-end model pipeline: parse every config with the model's grammar,
/// then compute the model dataplane. Returns the dataplane plus per-config
/// coverage reports (the E2 measurement).
pub fn model_dataplane(
    configs: &[(NodeId, String)],
) -> Result<(Dataplane, Vec<CoverageReport>), ModelParseError> {
    let mut parsed = Vec::with_capacity(configs.len());
    let mut reports = Vec::with_capacity(configs.len());
    for (name, text) in configs {
        let (mut cfg, mut report) = parser::parse(text)?;
        if cfg.hostname.is_empty() {
            cfg.hostname = name.to_string();
        }
        report.hostname = cfg.hostname.clone();
        parsed.push((name.clone(), cfg));
        reports.push(report);
    }
    let result = compute::compute(parsed);
    Ok((result.dataplane, reports))
}
