//! The model's configuration parser — *deliberately partial and
//! assumption-laden*, reproducing the behaviour the paper documents for the
//! Batfish reference model.
//!
//! Where `mfv-config`'s parsers are vendor-faithful, this parser:
//!
//! - supports only the feature subset the model implements (no MPLS/TE, no
//!   management plane, no daemons — every such line is counted as
//!   unrecognised, the paper's E2: "38 to 42 lines in each configuration");
//! - **BUG (Fig. 3 issue #1)**: applies interface statements in order and
//!   assumes an interface can have no IP address unless it was *already*
//!   configured as routed — `ip address` before `no switchport` is silently
//!   ignored;
//! - **BUG (Fig. 3 issue #2)**: flags `isis enable <instance>` as invalid
//!   syntax (while still best-effort enabling IS-IS, as Batfish's recovering
//!   parser does);
//! - supports only the EOS-like dialect — multi-vendor topologies are out of
//!   the model's reach (§2 "single separate implementation").

use mfv_config::ir::*;
use mfv_types::{AsNum, IfaceAddr, Prefix, RouterId};

/// Why a line was not (fully) understood.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnrecognizedKind {
    /// Feature absent from the model (MPLS, daemons, management, …).
    UnsupportedFeature,
    /// Syntax the model's grammar rejects.
    InvalidSyntax,
    /// Statement understood but silently ignored due to a model assumption
    /// (the switchport-ordering bug).
    IgnoredByAssumption,
}

/// One line the model could not handle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnrecognizedLine {
    pub line: usize,
    pub text: String,
    pub kind: UnrecognizedKind,
}

/// Coverage accounting for one config — the E2 measurement unit.
#[derive(Clone, Debug, Default)]
pub struct CoverageReport {
    pub hostname: String,
    pub total_lines: usize,
    pub recognized_lines: usize,
    pub unrecognized: Vec<UnrecognizedLine>,
}

impl CoverageReport {
    pub fn unrecognized_count(&self) -> usize {
        self.unrecognized.len()
    }
}

/// Error for configurations the model cannot ingest at all.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModelParseError(pub String);

impl std::fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error: {}", self.0)
    }
}

impl std::error::Error for ModelParseError {}

/// Parses an (EOS-dialect) configuration with the model's partial grammar.
/// Returns the model's *interpretation* of the config (which may differ from
/// the device's, per the bugs above) plus coverage accounting.
pub fn parse(text: &str) -> Result<(DeviceConfig, CoverageReport), ModelParseError> {
    let mut cfg = DeviceConfig::new("", Vendor::Ceos);
    let mut report = CoverageReport::default();

    // Structure pass: same sectioning as the real dialect (indentation).
    #[derive(Debug)]
    struct L {
        number: usize,
        indented: bool,
        words: Vec<String>,
        raw: String,
    }
    let lines: Vec<L> = text
        .lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let trimmed = raw.trim_end();
            let body = trimmed.trim_start();
            if body.is_empty() || body.starts_with('!') {
                return None;
            }
            Some(L {
                number: i + 1,
                indented: trimmed.len() != body.len(),
                words: body.split_whitespace().map(|s| s.to_string()).collect(),
                raw: body.to_string(),
            })
        })
        .collect();
    report.total_lines = lines.len();

    let unrec = |report: &mut CoverageReport, l: &L, kind: UnrecognizedKind| {
        report.unrecognized.push(UnrecognizedLine {
            line: l.number,
            text: l.raw.clone(),
            kind,
        });
    };

    let mut i = 0;
    while i < lines.len() {
        let l = &lines[i];
        let w: Vec<&str> = l.words.iter().map(|s| s.as_str()).collect();
        match w.as_slice() {
            ["hostname", name] => {
                cfg.hostname = name.to_string();
                report.recognized_lines += 1;
                i += 1;
            }
            ["ip", "routing"] => {
                cfg.ip_routing = true;
                report.recognized_lines += 1;
                i += 1;
            }
            ["no", "ip", "routing"] => {
                cfg.ip_routing = false;
                report.recognized_lines += 1;
                i += 1;
            }
            ["end"] => {
                report.recognized_lines += 1;
                i += 1;
            }
            ["interface", name] => {
                report.recognized_lines += 1;
                i += 1;
                let name = name.to_string();
                // MODEL BUG (Fig. 3 issue #1): order-sensitive application.
                // The interface starts as a switchport; `ip address` only
                // sticks if `no switchport` was seen EARLIER in the stanza.
                let is_loopback = {
                    let lower = name.to_ascii_lowercase();
                    lower.starts_with("loopback") || lower.starts_with("lo")
                };
                let mut routed_so_far = is_loopback;
                let iface = cfg.ensure_interface(name);
                while i < lines.len() && lines[i].indented {
                    let bl = &lines[i];
                    let bw: Vec<&str> = bl.words.iter().map(|s| s.as_str()).collect();
                    match bw.as_slice() {
                        ["no", "switchport"] => {
                            routed_so_far = true;
                            iface.routed = true;
                            report.recognized_lines += 1;
                        }
                        ["switchport"] => {
                            routed_so_far = false;
                            iface.routed = false;
                            report.recognized_lines += 1;
                        }
                        ["ip", "address", a] => {
                            if routed_so_far {
                                if let Ok(addr) = a.parse::<IfaceAddr>() {
                                    iface.addr = Some(addr);
                                }
                                report.recognized_lines += 1;
                            } else {
                                // Silently dropped: the model assumes no
                                // address can exist on a switchport.
                                unrec(&mut report, bl, UnrecognizedKind::IgnoredByAssumption);
                            }
                        }
                        ["isis", "enable", inst] => {
                            // MODEL BUG (Fig. 3 issue #2): this syntax is
                            // "invalid" to the model's grammar; it recovers
                            // by enabling IS-IS anyway, with a conversion
                            // warning — exactly the
                            // warn-and-best-effort behaviour that makes the
                            // divergence subtle.
                            unrec(&mut report, bl, UnrecognizedKind::InvalidSyntax);
                            match &mut iface.isis {
                                Some(ii) => ii.instance = inst.to_string(),
                                None => iface.isis = Some(IfaceIsis::new(*inst)),
                            }
                        }
                        ["isis", "metric", m] => {
                            if let Ok(m) = m.parse() {
                                iface
                                    .isis
                                    .get_or_insert_with(|| IfaceIsis::new("default"))
                                    .metric = m;
                            }
                            report.recognized_lines += 1;
                        }
                        ["isis", "passive-interface", ..] => {
                            // Not in the model's grammar either; ignored.
                            unrec(&mut report, bl, UnrecognizedKind::InvalidSyntax);
                        }
                        ["description", ..] => {
                            report.recognized_lines += 1;
                        }
                        ["shutdown"] => {
                            iface.shutdown = true;
                            report.recognized_lines += 1;
                        }
                        ["no", "shutdown"] => {
                            iface.shutdown = false;
                            report.recognized_lines += 1;
                        }
                        ["mpls", ..] => {
                            // No MPLS support in the model at all (§5 E2:
                            // "materially relevant to the router behavior").
                            unrec(&mut report, bl, UnrecognizedKind::UnsupportedFeature);
                        }
                        _ => {
                            unrec(&mut report, bl, UnrecognizedKind::UnsupportedFeature);
                        }
                    }
                    i += 1;
                }
            }
            ["router", "isis", instance] => {
                report.recognized_lines += 1;
                i += 1;
                let mut isis = IsisConfig::new(instance.to_string(), "");
                isis.af_ipv4 = false;
                while i < lines.len() && lines[i].indented {
                    let bl = &lines[i];
                    let bw: Vec<&str> = bl.words.iter().map(|s| s.as_str()).collect();
                    match bw.as_slice() {
                        ["net", net] => {
                            isis.net = net.to_string();
                            report.recognized_lines += 1;
                        }
                        ["address-family", "ipv4", "unicast"] => {
                            isis.af_ipv4 = true;
                            report.recognized_lines += 1;
                        }
                        ["is-type", ..] => {
                            report.recognized_lines += 1;
                        }
                        ["redistribute", "connected"] => {
                            isis.redistribute_connected = true;
                            report.recognized_lines += 1;
                        }
                        _ => unrec(&mut report, bl, UnrecognizedKind::UnsupportedFeature),
                    }
                    i += 1;
                }
                cfg.isis = Some(isis);
            }
            ["router", "bgp", asn] => {
                let Ok(asn) = asn.parse::<u32>() else {
                    return Err(ModelParseError(format!("bad AS on line {}", l.number)));
                };
                report.recognized_lines += 1;
                i += 1;
                let mut bgp = BgpConfig::new(AsNum(asn));
                while i < lines.len() && lines[i].indented {
                    let bl = &lines[i];
                    let bw: Vec<&str> = bl.words.iter().map(|s| s.as_str()).collect();
                    match bw.as_slice() {
                        ["router-id", rid] => {
                            if let Ok(ip) = rid.parse() {
                                bgp.router_id = Some(RouterId(ip));
                            }
                            report.recognized_lines += 1;
                        }
                        ["neighbor", peer, "remote-as", ras] => {
                            if let (Ok(peer), Ok(ras)) = (peer.parse(), ras.parse::<u32>()) {
                                bgp.neighbors.push(BgpNeighborConfig::new(peer, AsNum(ras)));
                            }
                            report.recognized_lines += 1;
                        }
                        ["neighbor", peer, "update-source", src] => {
                            if let Ok(peer) = peer.parse::<std::net::Ipv4Addr>() {
                                if let Some(n) = bgp.neighbors.iter_mut().find(|n| n.peer == peer) {
                                    n.update_source = Some(src.to_string().into());
                                }
                            }
                            report.recognized_lines += 1;
                        }
                        ["neighbor", peer, "next-hop-self"] => {
                            if let Ok(peer) = peer.parse::<std::net::Ipv4Addr>() {
                                if let Some(n) = bgp.neighbors.iter_mut().find(|n| n.peer == peer) {
                                    n.next_hop_self = true;
                                }
                            }
                            report.recognized_lines += 1;
                        }
                        ["neighbor", _, "send-community", ..]
                        | ["neighbor", _, "description", ..] => {
                            report.recognized_lines += 1;
                        }
                        ["neighbor", peer, "shutdown"] => {
                            if let Ok(peer) = peer.parse::<std::net::Ipv4Addr>() {
                                if let Some(n) = bgp.neighbors.iter_mut().find(|n| n.peer == peer) {
                                    n.shutdown = true;
                                }
                            }
                            report.recognized_lines += 1;
                        }
                        ["network", p] => {
                            if let Ok(p) = p.parse::<Prefix>() {
                                bgp.networks.push(p);
                            }
                            report.recognized_lines += 1;
                        }
                        // Only the bare form; `redistribute connected
                        // route-map NAME` is unrecognized (the model has no
                        // policy engine to honor it — a fidelity gap E7's
                        // static tier catches).
                        ["redistribute", "connected"] => {
                            bgp.redistribute
                                .push(BgpRedistribute::unfiltered(Redistribute::Connected));
                            report.recognized_lines += 1;
                        }
                        ["maximum-paths", ..] => {
                            report.recognized_lines += 1;
                        }
                        _ => unrec(&mut report, bl, UnrecognizedKind::UnsupportedFeature),
                    }
                    i += 1;
                }
                cfg.bgp = Some(bgp);
            }
            ["ip", "route", p, nh, ..] => {
                if let (Ok(p), Ok(nh)) = (p.parse(), nh.parse()) {
                    cfg.static_routes.push(StaticRoute {
                        prefix: p,
                        next_hop: nh,
                        distance: None,
                    });
                }
                report.recognized_lines += 1;
                i += 1;
            }
            ["ip", "prefix-list", ..] | ["route-map", ..] => {
                // The model supports policy structures (Batfish does), so
                // count them recognised; their effect is approximated by
                // accepting everything — a *fidelity* simplification.
                report.recognized_lines += 1;
                i += 1;
                while i < lines.len() && lines[i].indented {
                    report.recognized_lines += 1;
                    i += 1;
                }
            }
            _ => {
                // Everything else — daemons, management APIs, SSL, NTP,
                // logging, SNMP, AAA, MPLS/TE, spanning-tree, services —
                // is outside the model.
                unrec(&mut report, l, UnrecognizedKind::UnsupportedFeature);
                i += 1;
                while i < lines.len() && lines[i].indented {
                    let bl = &lines[i];
                    unrec(&mut report, bl, UnrecognizedKind::UnsupportedFeature);
                    i += 1;
                }
            }
        }
    }

    report.hostname = cfg.hostname.clone();
    Ok((cfg, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_types::IfaceId;

    /// Fig. 3 snippet — address precedes `no switchport`.
    const FIG3_IFACE: &str = "\
interface Ethernet2
   ip address 100.64.0.1/31
   no switchport
   isis enable default
!
";

    #[test]
    fn switchport_ordering_bug_drops_address() {
        let (cfg, report) = parse(FIG3_IFACE).unwrap();
        let iface = cfg.interface(&IfaceId::from("Ethernet2")).unwrap();
        assert_eq!(iface.addr, None, "model must ignore the early ip address");
        assert!(report
            .unrecognized
            .iter()
            .any(|u| u.kind == UnrecognizedKind::IgnoredByAssumption));
    }

    #[test]
    fn correct_order_keeps_address() {
        let text = "\
interface Ethernet2
   no switchport
   ip address 100.64.0.1/31
!
";
        let (cfg, _) = parse(text).unwrap();
        let iface = cfg.interface(&IfaceId::from("Ethernet2")).unwrap();
        assert_eq!(iface.addr.unwrap().to_string(), "100.64.0.1/31");
        assert!(iface.routed);
    }

    #[test]
    fn vendor_parser_disagrees_with_model_on_fig3() {
        // The heart of E3: same text, two interpretations.
        let faithful = mfv_config::ceos::parse(FIG3_IFACE).unwrap().config;
        let (model_view, _) = parse(FIG3_IFACE).unwrap();
        let f = faithful.interface(&IfaceId::from("Ethernet2")).unwrap();
        let m = model_view.interface(&IfaceId::from("Ethernet2")).unwrap();
        assert!(f.addr.is_some());
        assert!(m.addr.is_none());
    }

    #[test]
    fn isis_enable_flagged_invalid_but_applied() {
        let (cfg, report) = parse(FIG3_IFACE).unwrap();
        let iface = cfg.interface(&IfaceId::from("Ethernet2")).unwrap();
        assert!(
            iface.isis.is_some(),
            "best-effort recovery still enables isis"
        );
        assert!(report
            .unrecognized
            .iter()
            .any(|u| u.kind == UnrecognizedKind::InvalidSyntax && u.text.contains("isis enable")));
    }

    #[test]
    fn loopback_addresses_survive_without_no_switchport() {
        let text = "\
interface Loopback0
   ip address 2.2.2.1/32
!
";
        let (cfg, _) = parse(text).unwrap();
        let lo = cfg.interface(&IfaceId::from("Loopback0")).unwrap();
        assert!(
            lo.addr.is_some(),
            "loopbacks are not switchports in any model"
        );
    }

    #[test]
    fn mpls_and_mgmt_are_unsupported_features() {
        let text = "\
mpls ip
!
router traffic-engineering
   rsvp hello-interval 3000
!
daemon TerminAttr
   no shutdown
!
management api gnmi
   transport grpc default
!
ntp server 192.0.2.1
";
        let (cfg, report) = parse(text).unwrap();
        assert!(!cfg.mpls.enabled, "model has no MPLS notion");
        assert!(cfg.mgmt.daemons.is_empty());
        assert_eq!(report.recognized_lines, 0);
        assert_eq!(report.unrecognized_count(), 8);
        assert!(report
            .unrecognized
            .iter()
            .all(|u| u.kind == UnrecognizedKind::UnsupportedFeature));
    }

    #[test]
    fn supported_subset_parses_cleanly() {
        let text = "\
hostname r1
ip routing
interface Loopback0
   ip address 2.2.2.1/32
!
router bgp 65001
   router-id 2.2.2.1
   neighbor 10.0.0.1 remote-as 65002
   network 2.2.2.1/32
!
ip route 0.0.0.0/0 10.0.0.1
end
";
        let (cfg, report) = parse(text).unwrap();
        assert_eq!(report.unrecognized_count(), 0);
        assert_eq!(report.recognized_lines, report.total_lines);
        assert_eq!(cfg.hostname, "r1");
        assert_eq!(cfg.bgp.unwrap().neighbors.len(), 1);
        assert_eq!(cfg.static_routes.len(), 1);
    }

    #[test]
    fn production_config_has_many_unrecognized_lines() {
        // E2 shape check: a production-complexity config leaves the model
        // with tens of unparsed lines.
        use mfv_config::{IfaceSpec, RouterSpec};
        let spec = RouterSpec::new("r1", AsNum(65001), "2.2.2.1".parse().unwrap())
            .iface(IfaceSpec::new("Ethernet1", "100.64.0.0/31".parse().unwrap()).with_isis())
            .ebgp("100.64.0.1".parse().unwrap(), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap())
            .production();
        let text = spec.render();
        let (_, report) = parse(&text).unwrap();
        assert!(
            report.unrecognized_count() >= 20,
            "got {} unrecognized:\n{:#?}",
            report.unrecognized_count(),
            report.unrecognized
        );
    }
}

#[cfg(test)]
mod agreement_tests {
    use mfv_config::{ceos, IfaceSpec, RouterSpec};
    use mfv_types::AsNum;

    /// On configs written in conventional order (`no switchport` before
    /// `ip address`), the model's ordering assumption is not triggered, so
    /// its interface addressing must agree with the faithful vendor parser.
    #[test]
    fn model_agrees_with_vendor_on_wellformed_order() {
        for n in 1..6u8 {
            let spec = RouterSpec::new(
                format!("r{n}"),
                AsNum(65000 + n as u32),
                std::net::Ipv4Addr::new(2, 2, 2, n),
            )
            .iface(
                IfaceSpec::new("Ethernet1", format!("10.{n}.0.1/31").parse().unwrap()).with_isis(),
            )
            .production();
            let text = spec.render();
            let vendor_cfg = ceos::parse(&text).unwrap().config;
            let (model_cfg, _) = super::parse(&text).unwrap();
            for iface in &vendor_cfg.interfaces {
                let model_iface = model_cfg.interface(&iface.name).unwrap();
                assert_eq!(iface.addr, model_iface.addr, "iface {}", iface.name);
            }
        }
    }
}
