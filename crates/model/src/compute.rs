//! The model's dataplane computation — an IBDP-style global fixpoint.
//!
//! Unlike the emulator (independent routers exchanging real messages on a
//! virtual wire), the model computes the network's converged state *as one
//! synchronous algorithm*: infer L3 edges from subnet matching, run a global
//! SPF for IS-IS, then iterate rounds of BGP best-path exchange to a
//! fixpoint. This is faithful to how model-based tools work — and therefore
//! inherits their structural blind spots: no vendor quirks, no timing, no
//! implementation bugs, policies approximated (accept-all), one reference
//! decision process.

use std::collections::{BTreeMap, BinaryHeap};
use std::net::Ipv4Addr;

use mfv_config::ir::{DeviceConfig, Redistribute};
use mfv_dataplane::Dataplane;
use mfv_routing::policy::BgpAttrs;
use mfv_routing::rib::{NextHop, Rib, RibRoute};
use mfv_types::{
    AsNum, AsPath, IfaceId, LinkId, NodeId, Origin, Prefix, PrefixTrie, RouteProtocol,
};

/// One node as the model sees it.
struct ModelNode {
    name: NodeId,
    cfg: DeviceConfig,
}

impl ModelNode {
    fn l3_ifaces(&self) -> Vec<(&IfaceId, mfv_types::IfaceAddr)> {
        self.cfg
            .interfaces
            .iter()
            .filter(|i| i.is_l3())
            .filter_map(|i| i.addr.map(|a| (&i.name, a)))
            .collect()
    }

    fn isis_enabled(&self, iface: &IfaceId) -> bool {
        if self.cfg.isis.as_ref().map(|i| !i.af_ipv4).unwrap_or(true) {
            return false;
        }
        self.cfg
            .interface(iface)
            .map(|i| i.isis.is_some())
            .unwrap_or(false)
    }

    fn isis_metric(&self, iface: &IfaceId) -> u32 {
        self.cfg
            .interface(iface)
            .and_then(|i| i.isis.as_ref())
            .map(|ii| ii.metric)
            .unwrap_or(10)
    }

    fn asn(&self) -> Option<AsNum> {
        self.cfg.bgp.as_ref().map(|b| b.asn)
    }

    fn addresses(&self) -> std::collections::BTreeSet<Ipv4Addr> {
        self.l3_ifaces().iter().map(|(_, a)| a.addr).collect()
    }
}

/// A BGP session the model established.
#[derive(Clone, Debug)]
struct ModelSession {
    /// (node index, peer address it dials).
    from: usize,
    to: usize,
    /// Our source address toward the peer.
    local_addr: Ipv4Addr,
    ebgp: bool,
    next_hop_self: bool,
}

/// A route in a node's model BGP table.
#[derive(Clone, Debug, PartialEq)]
struct ModelBgpRoute {
    attrs: BgpAttrs,
    /// Session index it was learned over; None = originated.
    learned_via: Option<usize>,
    ebgp: bool,
}

/// The computed result: the dataplane plus inferred edges (for debugging).
pub struct ModelResult {
    pub dataplane: Dataplane,
    /// Edges inferred from subnet matching: this is the model's "L3 edge"
    /// notion the paper's issue #1 breaks (no address → no edge).
    pub edges: Vec<LinkId>,
    /// BGP exchange rounds until fixpoint.
    pub rounds: usize,
}

/// Computes the model dataplane for a set of parsed (model-view) configs.
pub fn compute(configs: Vec<(NodeId, DeviceConfig)>) -> ModelResult {
    let nodes: Vec<ModelNode> = configs
        .into_iter()
        .map(|(name, cfg)| ModelNode { name, cfg })
        .collect();

    // ---- 1. L3 edge inference by subnet matching ----------------------
    // (node idx, iface) ↔ (node idx, iface) where addresses share a subnet.
    let mut edges: Vec<(usize, IfaceId, usize, IfaceId)> = Vec::new();
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            for (ifi, ai) in nodes[i].l3_ifaces() {
                if ifi.is_loopback() {
                    continue;
                }
                for (ifj, aj) in nodes[j].l3_ifaces() {
                    if ifj.is_loopback() {
                        continue;
                    }
                    if ai.same_subnet(&aj) && ai.addr != aj.addr {
                        edges.push((i, ifi.clone(), j, ifj.clone()));
                    }
                }
            }
        }
    }

    // ---- 2. Per-node RIBs: connected + static --------------------------
    let mut ribs: Vec<Rib> = nodes
        .iter()
        .map(|n| {
            let mut rib = Rib::new();
            let connected: Vec<RibRoute> = n
                .l3_ifaces()
                .into_iter()
                .map(|(iface, addr)| {
                    RibRoute::new(
                        addr.subnet(),
                        RouteProtocol::Connected,
                        0,
                        NextHop::Connected(iface.clone()),
                    )
                })
                .collect();
            rib.set_protocol_routes(RouteProtocol::Connected, connected);
            let statics: Vec<RibRoute> = n
                .cfg
                .static_routes
                .iter()
                .map(|s| {
                    RibRoute::new(s.prefix, RouteProtocol::Static, 0, NextHop::Via(s.next_hop))
                })
                .collect();
            rib.set_protocol_routes(RouteProtocol::Static, statics);
            rib
        })
        .collect();

    // ---- 3. Global IS-IS SPF -------------------------------------------
    // Adjacency: an inferred edge whose ends are both IS-IS enabled.
    let isis_edges: Vec<&(usize, IfaceId, usize, IfaceId)> = edges
        .iter()
        .filter(|(i, ifi, j, ifj)| nodes[*i].isis_enabled(ifi) && nodes[*j].isis_enabled(ifj))
        .collect();

    for (root, rib) in ribs.iter_mut().enumerate() {
        let routes = spf_from(root, &nodes, &isis_edges);
        rib.set_protocol_routes(RouteProtocol::Isis, routes);
    }

    // ---- 4. BGP sessions -------------------------------------------------
    let mut addr_owner: BTreeMap<Ipv4Addr, usize> = BTreeMap::new();
    for (idx, n) in nodes.iter().enumerate() {
        for a in n.addresses() {
            addr_owner.insert(a, idx);
        }
    }
    let mut sessions: Vec<ModelSession> = Vec::new();
    for (idx, n) in nodes.iter().enumerate() {
        let Some(bgp) = &n.cfg.bgp else { continue };
        for nb in &bgp.neighbors {
            if nb.shutdown {
                continue;
            }
            let Some(&owner) = addr_owner.get(&nb.peer) else {
                continue;
            };
            if nodes[owner].asn() != Some(nb.remote_as) {
                continue;
            }
            // Local address: update-source interface, else our address on
            // the peer's subnet, else loopback.
            let local_addr = nb
                .update_source
                .as_ref()
                .and_then(|src| n.cfg.interface(src))
                .and_then(|i| i.addr.map(|a| a.addr))
                .or_else(|| {
                    n.l3_ifaces()
                        .into_iter()
                        .find(|(_, a)| a.subnet().contains(nb.peer))
                        .map(|(_, a)| a.addr)
                })
                .or_else(|| n.cfg.loopback_addr());
            let Some(local_addr) = local_addr else {
                continue;
            };
            // Transport check: the peer address must resolve in our RIB.
            let reachable = {
                let mut trie = PrefixTrie::new();
                for (p, r) in ribs[idx].winners() {
                    trie.insert(*p, r.metric);
                }
                trie.lookup(nb.peer)
                    .map(|(covering, _)| !covering.is_default())
                    .unwrap_or(false)
            };
            if !reachable {
                continue;
            }
            sessions.push(ModelSession {
                from: idx,
                to: owner,
                local_addr,
                ebgp: nb.remote_as != bgp.asn,
                next_hop_self: nb.next_hop_self,
            });
        }
    }
    // A session is only up if BOTH directions configured it.
    let all = sessions.clone();
    sessions.retain(|s| all.iter().any(|t| t.from == s.to && t.to == s.from));

    // ---- 5. BGP fixpoint iteration ---------------------------------------
    // Per node: prefix → best route.
    let mut tables: Vec<BTreeMap<Prefix, ModelBgpRoute>> = vec![BTreeMap::new(); nodes.len()];

    // Originations.
    for (idx, n) in nodes.iter().enumerate() {
        let Some(bgp) = &n.cfg.bgp else { continue };
        let mut origins: Vec<Prefix> = Vec::new();
        for p in &bgp.networks {
            if ribs[idx].best(p).is_some() {
                origins.push(*p);
            }
        }
        // The model ignores any route-map attached to redistribution — it
        // approximates policy as permit-all (Batfish-style abstraction).
        if bgp
            .redistribute
            .iter()
            .any(|r| r.proto == Redistribute::Connected)
        {
            for (iface, a) in n.l3_ifaces() {
                let _ = iface;
                origins.push(a.subnet());
            }
        }
        for p in origins {
            tables[idx].insert(
                p,
                ModelBgpRoute {
                    attrs: BgpAttrs {
                        origin: Origin::Igp,
                        as_path: AsPath::empty(),
                        next_hop: Ipv4Addr::UNSPECIFIED,
                        med: None,
                        local_pref: None,
                        communities: vec![],
                        foreign_attrs: vec![],
                    },
                    learned_via: None,
                    ebgp: false,
                },
            );
        }
    }

    let mut rounds = 0;
    for _ in 0..64 {
        rounds += 1;
        let mut changed = false;
        // Synchronous exchange round: compute all advertisements from the
        // current tables, then apply.
        let mut incoming: Vec<Vec<(Prefix, ModelBgpRoute)>> = vec![Vec::new(); nodes.len()];
        for (sid, s) in sessions.iter().enumerate() {
            let sender_as = nodes[s.from].asn().expect("session implies bgp");
            for (prefix, route) in &tables[s.from] {
                // Don't bounce a route back over the session it came from.
                if route.learned_via == Some(sid_reverse(&sessions, sid)) {
                    continue;
                }
                // iBGP split horizon (no reflection in the model).
                if !s.ebgp && route.learned_via.is_some() && !route.ebgp {
                    continue;
                }
                let mut attrs = route.attrs.clone();
                if s.ebgp {
                    // eBGP receiver-side loop check.
                    if let Some(peer_as) = nodes[s.to].asn() {
                        if attrs.as_path.contains(peer_as) {
                            continue;
                        }
                    }
                    attrs.as_path = attrs.as_path.prepend(sender_as);
                    attrs.local_pref = None;
                    attrs.next_hop = s.local_addr;
                } else {
                    attrs.local_pref = Some(attrs.local_pref.unwrap_or(100));
                    if s.next_hop_self
                        || route.learned_via.is_none()
                        || attrs.next_hop == Ipv4Addr::UNSPECIFIED
                    {
                        attrs.next_hop = s.local_addr;
                    }
                }
                incoming[s.to].push((
                    *prefix,
                    ModelBgpRoute {
                        attrs,
                        learned_via: Some(sid),
                        ebgp: s.ebgp,
                    },
                ));
            }
        }
        // Apply + decide.
        for idx in 0..nodes.len() {
            // Group candidates per prefix: current originations + received.
            let mut cands: BTreeMap<Prefix, Vec<ModelBgpRoute>> = BTreeMap::new();
            for (p, r) in &tables[idx] {
                if r.learned_via.is_none() {
                    cands.entry(*p).or_default().push(r.clone());
                }
            }
            for (p, r) in incoming[idx].drain(..) {
                // Next hop must resolve through IGP/connected.
                let resolvable = {
                    let mut trie = PrefixTrie::new();
                    for (wp, wr) in ribs[idx].winners() {
                        if matches!(
                            wr.proto,
                            RouteProtocol::Connected | RouteProtocol::Static | RouteProtocol::Isis
                        ) {
                            trie.insert(*wp, wr.metric);
                        }
                    }
                    trie.lookup(r.attrs.next_hop)
                        .map(|(covering, _)| !covering.is_default())
                        .unwrap_or(false)
                };
                if resolvable {
                    cands.entry(p).or_default().push(r);
                }
            }
            let mut new_table: BTreeMap<Prefix, ModelBgpRoute> = BTreeMap::new();
            for (p, mut routes) in cands {
                routes.sort_by(|a, b| {
                    let lp_a = a.attrs.local_pref.unwrap_or(100);
                    let lp_b = b.attrs.local_pref.unwrap_or(100);
                    lp_b.cmp(&lp_a)
                        .then_with(|| a.learned_via.is_some().cmp(&b.learned_via.is_some()))
                        .then_with(|| {
                            a.attrs
                                .as_path
                                .route_len()
                                .cmp(&b.attrs.as_path.route_len())
                        })
                        .then_with(|| a.attrs.origin.cmp(&b.attrs.origin))
                        .then_with(|| b.ebgp.cmp(&a.ebgp))
                        .then_with(|| a.attrs.next_hop.cmp(&b.attrs.next_hop))
                });
                new_table.insert(p, routes.into_iter().next().unwrap());
            }
            if new_table.len() != tables[idx].len()
                || new_table.iter().any(|(p, r)| tables[idx].get(p) != Some(r))
            {
                changed = true;
                tables[idx] = new_table;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- 6. Install BGP routes and build the dataplane -------------------
    for idx in 0..nodes.len() {
        let routes: Vec<RibRoute> = tables[idx]
            .iter()
            .filter(|(_, r)| r.learned_via.is_some())
            .map(|(p, r)| {
                let proto = if r.ebgp {
                    RouteProtocol::EbgpLearned
                } else {
                    RouteProtocol::IbgpLearned
                };
                RibRoute::new(*p, proto, 0, NextHop::Via(r.attrs.next_hop))
            })
            .collect();
        let (ebgp, ibgp): (Vec<_>, Vec<_>) = routes
            .into_iter()
            .partition(|r| r.proto == RouteProtocol::EbgpLearned);
        ribs[idx].set_protocol_routes(RouteProtocol::EbgpLearned, ebgp);
        ribs[idx].set_protocol_routes(RouteProtocol::IbgpLearned, ibgp);
    }

    let mut dp = Dataplane::new();
    for (idx, n) in nodes.iter().enumerate() {
        dp.add_node(n.name.clone(), &ribs[idx].to_fib(), n.addresses(), true);
    }
    let mut link_ids = Vec::new();
    for (i, ifi, j, ifj) in &edges {
        let id = LinkId::new(
            (nodes[*i].name.clone(), ifi.clone()),
            (nodes[*j].name.clone(), ifj.clone()),
        );
        dp.add_link(id.clone());
        link_ids.push(id);
    }

    ModelResult {
        dataplane: dp,
        edges: link_ids,
        rounds,
    }
}

/// The reverse direction of session `sid`, for split-horizon bookkeeping.
fn sid_reverse(sessions: &[ModelSession], sid: usize) -> usize {
    let s = &sessions[sid];
    sessions
        .iter()
        .position(|t| t.from == s.to && t.to == s.from)
        .unwrap_or(usize::MAX)
}

/// Dijkstra from `root` over the inferred IS-IS edges, producing routes to
/// every remote IS-IS-enabled subnet.
fn spf_from(
    root: usize,
    nodes: &[ModelNode],
    isis_edges: &[&(usize, IfaceId, usize, IfaceId)],
) -> Vec<RibRoute> {
    #[derive(PartialEq, Eq)]
    struct Q(u32, usize);
    impl Ord for Q {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            o.0.cmp(&self.0).then_with(|| o.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Q {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }

    // Adjacency list: node → (peer, metric, our iface, peer addr on link).
    let mut adj: BTreeMap<usize, Vec<(usize, u32, IfaceId, Ipv4Addr)>> = BTreeMap::new();
    for (i, ifi, j, ifj) in isis_edges.iter() {
        let addr_j = nodes[*j]
            .cfg
            .interface(ifj)
            .and_then(|x| x.addr)
            .map(|a| a.addr)
            .expect("edge implies address");
        let addr_i = nodes[*i]
            .cfg
            .interface(ifi)
            .and_then(|x| x.addr)
            .map(|a| a.addr)
            .expect("edge implies address");
        adj.entry(*i)
            .or_default()
            .push((*j, nodes[*i].isis_metric(ifi), ifi.clone(), addr_j));
        adj.entry(*j)
            .or_default()
            .push((*i, nodes[*j].isis_metric(ifj), ifj.clone(), addr_i));
    }

    let mut dist: BTreeMap<usize, u32> = BTreeMap::new();
    let mut first_hop: BTreeMap<usize, (IfaceId, Ipv4Addr)> = BTreeMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(root, 0);
    heap.push(Q(0, root));
    while let Some(Q(d, u)) = heap.pop() {
        if dist.get(&u).copied().unwrap_or(u32::MAX) < d {
            continue;
        }
        for (v, metric, iface, via) in adj.get(&u).cloned().unwrap_or_default() {
            let nd = d.saturating_add(metric);
            if nd < dist.get(&v).copied().unwrap_or(u32::MAX) {
                dist.insert(v, nd);
                let fh = if u == root {
                    (iface.clone(), via)
                } else {
                    first_hop.get(&u).cloned().expect("reached via known hop")
                };
                first_hop.insert(v, fh);
                heap.push(Q(nd, v));
            }
        }
    }

    // Routes: every IS-IS subnet of every reached node.
    let own_subnets: Vec<Prefix> = nodes[root]
        .l3_ifaces()
        .into_iter()
        .map(|(_, a)| a.subnet())
        .collect();
    let mut best: BTreeMap<Prefix, (u32, (IfaceId, Ipv4Addr))> = BTreeMap::new();
    for (&node, &d) in &dist {
        if node == root {
            continue;
        }
        let Some(fh) = first_hop.get(&node) else {
            continue;
        };
        for iface in &nodes[node].cfg.interfaces {
            if iface.isis.is_none() || !iface.is_l3() {
                continue;
            }
            let Some(addr) = iface.addr else { continue };
            let prefix = addr.subnet();
            if own_subnets.contains(&prefix) {
                continue;
            }
            let metric = d.saturating_add(iface.isis.as_ref().map(|i| i.metric).unwrap_or(10));
            match best.get(&prefix) {
                Some((m, _)) if *m <= metric => {}
                _ => {
                    best.insert(prefix, (metric, fh.clone()));
                }
            }
        }
    }
    best.into_iter()
        .map(|(prefix, (metric, (iface, via)))| {
            RibRoute::new(
                prefix,
                RouteProtocol::Isis,
                metric,
                NextHop::ViaIface(via, iface),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn cfg(text: &str) -> (NodeId, DeviceConfig) {
        let (cfg, _) = parser::parse(text).unwrap();
        (NodeId::from(cfg.hostname.as_str()), cfg)
    }

    /// A clean 2-router IS-IS + eBGP setup the model handles correctly.
    fn pair_texts() -> (String, String) {
        let a = "\
hostname r1
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.0/31
   isis enable default
!
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
!
router bgp 65001
   neighbor 100.64.0.1 remote-as 65002
   network 2.2.2.1/32
!
";
        let b = "\
hostname r2
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.1/31
   isis enable default
!
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
!
router bgp 65002
   neighbor 100.64.0.0 remote-as 65001
   network 2.2.2.2/32
!
";
        (a.to_string(), b.to_string())
    }

    #[test]
    fn clean_pair_full_reachability() {
        let (a, b) = pair_texts();
        let result = compute(vec![cfg(&a), cfg(&b)]);
        assert_eq!(result.edges.len(), 1, "one inferred L3 edge");
        let dp = &result.dataplane;
        let r1 = dp.nodes[&NodeId::from("r1")].fib();
        // IS-IS gives the remote loopback; BGP gives it too (eBGP wins).
        let e = r1.lookup("2.2.2.2".parse().unwrap()).expect("route to r2");
        assert_eq!(e.proto, RouteProtocol::EbgpLearned);
    }

    #[test]
    fn fig3_ordering_kills_the_edge() {
        // Same configs but r2's Ethernet1 has ip address BEFORE no
        // switchport → the model drops the address → no L3 edge → no
        // reachability. (The real device is perfectly happy: E3.)
        let (a, b) = pair_texts();
        let b_buggy = b.replace(
            "   no switchport\n   ip address 100.64.0.1/31\n",
            "   ip address 100.64.0.1/31\n   no switchport\n",
        );
        assert_ne!(b, b_buggy, "replacement must have applied");
        let result = compute(vec![cfg(&a), cfg(&b_buggy)]);
        assert_eq!(result.edges.len(), 0, "model sees no L3 edge");
        let dp = &result.dataplane;
        let r1 = dp.nodes[&NodeId::from("r1")].fib();
        assert!(r1.lookup("2.2.2.2".parse().unwrap()).is_none());
    }

    #[test]
    fn ibgp_over_igp_with_next_hop_self() {
        // 3 nodes in a line: r1/r3 eBGP-learn nothing; test iBGP between
        // r1-r3 via loopbacks with r2 pure transit.
        let r1 = "\
hostname r1
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.0/31
   isis enable default
!
interface Ethernet9
   no switchport
   ip address 203.0.113.1/24
!
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
!
router bgp 65000
   neighbor 2.2.2.3 remote-as 65000
   neighbor 2.2.2.3 update-source Loopback0
   neighbor 2.2.2.3 next-hop-self
   network 203.0.113.0/24
!
";
        let r2 = "\
hostname r2
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.1/31
   isis enable default
!
interface Ethernet2
   no switchport
   ip address 100.64.0.2/31
   isis enable default
!
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
!
";
        let r3 = "\
hostname r3
interface Loopback0
   ip address 2.2.2.3/32
   isis enable default
!
interface Ethernet1
   no switchport
   ip address 100.64.0.3/31
   isis enable default
!
router isis default
   net 49.0001.0000.0000.0003.00
   address-family ipv4 unicast
!
router bgp 65000
   neighbor 2.2.2.1 remote-as 65000
   neighbor 2.2.2.1 update-source Loopback0
   neighbor 2.2.2.1 next-hop-self
!
";
        let result = compute(vec![cfg(r1), cfg(r2), cfg(r3)]);
        assert_eq!(result.edges.len(), 2);
        let dp = &result.dataplane;
        let r3_fib = dp.nodes[&NodeId::from("r3")].fib();
        let e = r3_fib
            .lookup("203.0.113.7".parse().unwrap())
            .expect("iBGP route via next-hop-self");
        assert_eq!(e.proto, RouteProtocol::IbgpLearned);
        // Resolves through IS-IS toward r2.
        assert_eq!(e.next_hops[0].via, Some("100.64.0.2".parse().unwrap()));
        assert!(result.rounds >= 2);
    }

    #[test]
    fn one_sided_session_stays_down() {
        let (a, b) = pair_texts();
        // Remove r2's neighbor statement: session never comes up.
        let b = b.replace("   neighbor 100.64.0.0 remote-as 65001\n", "");
        let result = compute(vec![cfg(&a), cfg(&b)]);
        let dp = &result.dataplane;
        let r1 = dp.nodes[&NodeId::from("r1")].fib();
        // The loopback is still reachable via IS-IS, but not via BGP.
        let e = r1.lookup("2.2.2.2".parse().unwrap()).unwrap();
        assert_eq!(e.proto, RouteProtocol::Isis);
    }

    #[test]
    fn as_mismatch_blocks_session() {
        let (a, b) = pair_texts();
        let b = b.replace("router bgp 65002", "router bgp 65009");
        let result = compute(vec![cfg(&a), cfg(&b)]);
        let dp = &result.dataplane;
        let r1 = dp.nodes[&NodeId::from("r1")].fib();
        let e = r1.lookup("2.2.2.2".parse().unwrap()).unwrap();
        assert_eq!(e.proto, RouteProtocol::Isis, "no BGP without matching AS");
    }

    #[test]
    fn fixpoint_terminates_quickly_on_small_nets() {
        let (a, b) = pair_texts();
        let result = compute(vec![cfg(&a), cfg(&b)]);
        assert!(result.rounds < 10);
    }
}
