//! `mfv-conflint` — cross-device static analysis over a topology's parsed
//! configurations.
//!
//! This is the *cheap* tier of the verification stack: a whole class of
//! misconfigurations (peer-AS mismatches, one-sided sessions, dangling
//! policy references, duplicate identities) is decidable from the configs
//! alone, with no emulation. conflint checks the typed IR
//! ([`mfv_config::DeviceConfig`]) of every node in a [`Topology`] *jointly*
//! — rules relate both ends of a link or the whole device set, which is
//! exactly what per-file vendor validation cannot see.
//!
//! Rule families (severity in parentheses; E = error, W = warning):
//!
//! | rule | checks |
//! |------|--------|
//! | C1 (E) | eBGP/iBGP peer-ASN disagrees with the AS the peer actually runs |
//! | C2 (E/W) | neighbor statement with no owner, no reverse statement, or a shutdown reverse (W) |
//! | C3 (E/W) | IS-IS one-sided enablement, instance/stanza mismatch, NET-area mismatch; level incompatibility (W) |
//! | C4 (E) | duplicate router-id, IS-IS system-id, or loopback address |
//! | C5 (E/W) | route-map/prefix-list referenced-but-undefined (E) or defined-but-unused (W) |
//! | C6 (E/W) | point-to-point link subnet mismatch or duplicated address (E); one side unnumbered (W) |
//! | C7 (W) | redistribution into BGP with no attached route-map |
//! | C8 (W) | prefix-list entry fully shadowed by an earlier entry |
//!
//! Suppressions follow `mfv-lint`'s convention, embedded in the device's
//! config text as a comment anywhere in the file:
//!
//! ```text
//! ! conflint: allow(C7, infra subnets are meant to leak into this fabric)
//! ```
//!
//! A reasonless or malformed `allow` is itself an error (reported under the
//! reserved id `C0`). Suppressions are device-scoped: they silence one rule
//! for the device whose config carries them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

use mfv_config::{DeviceConfig, IfaceIsis, IsisLevel, PrefixListEntry};
use mfv_emulator::{ExternalPeerSpec, Topology};

/// Stable rule identifiers. `C0` is reserved for malformed suppression
/// directives and never needs suppressing itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RuleId {
    C0,
    C1,
    C2,
    C3,
    C4,
    C5,
    C6,
    C7,
    C8,
}

impl RuleId {
    pub const ALL: [RuleId; 8] = [
        RuleId::C1,
        RuleId::C2,
        RuleId::C3,
        RuleId::C4,
        RuleId::C5,
        RuleId::C6,
        RuleId::C7,
        RuleId::C8,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            RuleId::C0 => "C0",
            RuleId::C1 => "C1",
            RuleId::C2 => "C2",
            RuleId::C3 => "C3",
            RuleId::C4 => "C4",
            RuleId::C5 => "C5",
            RuleId::C6 => "C6",
            RuleId::C7 => "C7",
            RuleId::C8 => "C8",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "C1" => Some(RuleId::C1),
            "C2" => Some(RuleId::C2),
            "C3" => Some(RuleId::C3),
            "C4" => Some(RuleId::C4),
            "C5" => Some(RuleId::C5),
            "C6" => Some(RuleId::C6),
            "C7" => Some(RuleId::C7),
            "C8" => Some(RuleId::C8),
            _ => None,
        }
    }

    /// One-line description used in docs and `--json` output.
    pub fn title(&self) -> &'static str {
        match self {
            RuleId::C0 => "malformed conflint suppression directive",
            RuleId::C1 => "BGP peer-ASN mismatch",
            RuleId::C2 => "non-mutual or missing BGP neighbor",
            RuleId::C3 => "IS-IS adjacency parameter mismatch",
            RuleId::C4 => "duplicate router identity",
            RuleId::C5 => "dangling or unused policy reference",
            RuleId::C6 => "point-to-point subnet mismatch",
            RuleId::C7 => "unpoliced redistribution into BGP",
            RuleId::C8 => "shadowed prefix-list entry",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One confirmed misconfiguration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    pub rule: RuleId,
    pub severity: Severity,
    /// Primary device: the one whose config must change (and whose
    /// suppressions apply). Cross-device context lives in `message`.
    pub device: String,
    pub message: String,
    pub help: String,
}

/// A suppression that silenced at least one finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Suppression {
    pub rule: RuleId,
    pub device: String,
    pub reason: String,
    /// Findings silenced by this allow.
    pub count: usize,
}

/// The result of analyzing one topology.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub topology: String,
    pub devices: usize,
    pub links: usize,
    /// Unsuppressed findings, sorted by (rule, device, message).
    pub findings: Vec<Finding>,
    /// Allows that actually fired, sorted by (device, rule).
    pub suppressed: Vec<Suppression>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Clean means no findings at all — warnings included. The CLI's exit
    /// code is laxer (errors only) unless `--deny-warnings`.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one rule (fixture tests key off this).
    pub fn by_rule(&self, rule: RuleId) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Rustc-style human rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}[{}]: {}",
                f.severity.as_str(),
                f.rule.as_str(),
                f.message
            );
            let _ = writeln!(out, "  --> {} (topology {})", f.device, self.topology);
            let _ = writeln!(out, "   = help: {}", f.help);
            out.push('\n');
        }
        for s in &self.suppressed {
            let _ = writeln!(
                out,
                "note: {} finding(s) of {} suppressed on {}: {}",
                s.count,
                s.rule.as_str(),
                s.device,
                s.reason
            );
        }
        let _ = writeln!(
            out,
            "conflint: {} error(s), {} warning(s), {} suppressed across {} device(s), {} link(s)",
            self.errors(),
            self.warnings(),
            self.suppressed.iter().map(|s| s.count).sum::<usize>(),
            self.devices,
            self.links
        );
        out
    }

    /// Machine-readable rendering (hand-rolled: the analyzer stays
    /// dependency-light and the output byte-stable).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"topology\": \"{}\",", esc(&self.topology));
        let _ = writeln!(out, "  \"devices\": {},", self.devices);
        let _ = writeln!(out, "  \"links\": {},", self.links);
        let _ = writeln!(out, "  \"errors\": {},", self.errors());
        let _ = writeln!(out, "  \"warnings\": {},", self.warnings());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": \"{}\", \"severity\": \"{}\", \"device\": \"{}\", \
                 \"message\": \"{}\", \"help\": \"{}\"",
                f.rule.as_str(),
                f.severity.as_str(),
                esc(&f.device),
                esc(&f.message),
                esc(&f.help)
            );
            out.push('}');
        }
        if self.findings.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": \"{}\", \"device\": \"{}\", \"count\": {}, \"reason\": \"{}\"",
                s.rule.as_str(),
                esc(&s.device),
                s.count,
                esc(&s.reason)
            );
            out.push('}');
        }
        if self.suppressed.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Analysis could not even start (config does not parse, unknown node on a
/// link). Distinct from findings: a finding is a property of a *valid*
/// config set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConflintError {
    pub device: String,
    pub reason: String,
}

impl std::fmt::Display for ConflintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conflint: {}: {}", self.device, self.reason)
    }
}

impl std::error::Error for ConflintError {}

// ---------------------------------------------------------------------------
// Analysis context
// ---------------------------------------------------------------------------

struct Dev {
    name: String,
    cfg: DeviceConfig,
    /// Reasoned `allow(rule, reason)` directives found in the config text.
    allows: BTreeMap<RuleId, String>,
    /// Malformed directives (missing reason / unknown rule), as raw text.
    bad_allows: Vec<String>,
}

struct Ctx<'a> {
    devs: Vec<Dev>,
    topo: &'a Topology,
    /// interface address -> (device index, iface name)
    addr_owner: BTreeMap<Ipv4Addr, (usize, String)>,
}

impl Ctx<'_> {
    fn dev_by_name(&self, name: &str) -> Option<&Dev> {
        self.devs.iter().find(|d| d.name == name)
    }

    fn external_peer(&self, addr: Ipv4Addr) -> Option<&ExternalPeerSpec> {
        self.topo.external_peers.iter().find(|p| p.addr == addr)
    }
}

/// Parses `conflint: allow(RULE, reason)` directives out of raw config
/// text. The comment leader does not matter (`!` for EOS, `#`/`/* */` for
/// Junos) — only the directive substring is matched.
fn parse_allows(text: &str) -> (BTreeMap<RuleId, String>, Vec<String>) {
    let mut allows = BTreeMap::new();
    let mut bad = Vec::new();
    for line in text.lines() {
        let Some(at) = line.find("conflint: allow(") else {
            continue;
        };
        let rest = match line.get(at + "conflint: allow(".len()..) {
            Some(r) => r,
            None => {
                bad.push(line.trim().to_string());
                continue;
            }
        };
        let Some(close) = rest.find(')') else {
            bad.push(line.trim().to_string());
            continue;
        };
        let inner = rest.get(..close).unwrap_or_default();
        let (rule_s, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        match RuleId::parse(rule_s) {
            Some(rule) if !reason.is_empty() => {
                allows.entry(rule).or_insert_with(|| reason.to_string());
            }
            _ => bad.push(line.trim().to_string()),
        }
    }
    (allows, bad)
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs every rule family over the topology's parsed configs.
pub fn analyze(topo: &Topology) -> Result<Report, ConflintError> {
    let mut devs = Vec::new();
    for node in &topo.nodes {
        let parsed = node.parse_config().map_err(|e| ConflintError {
            device: node.name.to_string(),
            reason: format!("config does not parse: {e}"),
        })?;
        let (allows, bad_allows) = parse_allows(&node.config_text);
        devs.push(Dev {
            name: node.name.to_string(),
            cfg: parsed.config,
            allows,
            bad_allows,
        });
    }

    let mut addr_owner = BTreeMap::new();
    for (idx, d) in devs.iter().enumerate() {
        for iface in &d.cfg.interfaces {
            if let Some(a) = iface.addr {
                addr_owner
                    .entry(a.addr)
                    .or_insert((idx, iface.name.to_string()));
            }
        }
    }

    let ctx = Ctx {
        devs,
        topo,
        addr_owner,
    };

    let mut findings = Vec::new();
    check_suppression_syntax(&ctx, &mut findings);
    check_bgp_sessions(&ctx, &mut findings); // C1 + C2
    check_isis(&ctx, &mut findings); // C3
    check_duplicate_identity(&ctx, &mut findings); // C4
    check_policy_refs(&ctx, &mut findings); // C5
    check_link_subnets(&ctx, &mut findings); // C6
    check_redistribution(&ctx, &mut findings); // C7
    check_prefix_list_shadowing(&ctx, &mut findings); // C8

    // Apply device-scoped suppressions (C0 is never suppressible).
    let mut kept = Vec::new();
    let mut fired: BTreeMap<(String, RuleId), (String, usize)> = BTreeMap::new();
    for f in findings {
        let allow = ctx
            .dev_by_name(&f.device)
            .and_then(|d| d.allows.get(&f.rule));
        match allow {
            Some(reason) if f.rule != RuleId::C0 => {
                let slot = fired
                    .entry((f.device.clone(), f.rule))
                    .or_insert_with(|| (reason.clone(), 0));
                slot.1 += 1;
            }
            _ => kept.push(f),
        }
    }
    kept.sort_by(|a, b| (a.rule, &a.device, &a.message).cmp(&(b.rule, &b.device, &b.message)));
    kept.dedup();

    Ok(Report {
        topology: topo.name.clone(),
        devices: ctx.devs.len(),
        links: topo.links.len(),
        findings: kept,
        suppressed: fired
            .into_iter()
            .map(|((device, rule), (reason, count))| Suppression {
                rule,
                device,
                reason,
                count,
            })
            .collect(),
    })
}

fn push(
    findings: &mut Vec<Finding>,
    rule: RuleId,
    severity: Severity,
    device: &str,
    message: String,
    help: &str,
) {
    findings.push(Finding {
        rule,
        severity,
        device: device.to_string(),
        message,
        help: help.to_string(),
    });
}

// ---------------------------------------------------------------------------
// C0 — malformed suppressions
// ---------------------------------------------------------------------------

fn check_suppression_syntax(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for d in &ctx.devs {
        for raw in &d.bad_allows {
            push(
                findings,
                RuleId::C0,
                Severity::Error,
                &d.name,
                format!("malformed suppression `{raw}`"),
                "write `conflint: allow(C<n>, <reason>)` — the reason is mandatory",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// C1 + C2 — BGP session cross-checks
// ---------------------------------------------------------------------------

fn check_bgp_sessions(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for d in &ctx.devs {
        let Some(bgp) = &d.cfg.bgp else { continue };
        for n in &bgp.neighbors {
            if n.shutdown {
                continue; // deliberately down; nothing to cross-check
            }
            if let Some(ep) = ctx.external_peer(n.peer) {
                if ep.asn != n.remote_as {
                    push(
                        findings,
                        RuleId::C1,
                        Severity::Error,
                        &d.name,
                        format!(
                            "neighbor {} remote-as {} but the external peer at that \
                             address runs AS {}",
                            n.peer, n.remote_as, ep.asn
                        ),
                        "the OPEN exchange will be rejected with NOTIFICATION \
                         `bad peer AS`; the session can never reach Established",
                    );
                }
                continue;
            }
            let Some((oidx, _oiface)) = ctx.addr_owner.get(&n.peer) else {
                push(
                    findings,
                    RuleId::C2,
                    Severity::Error,
                    &d.name,
                    format!(
                        "neighbor {} does not match any interface address or \
                         external peer in the topology",
                        n.peer
                    ),
                    "OPENs are sent into the void; the session stays in \
                     Idle/OpenSent forever",
                );
                continue;
            };
            let Some(other) = ctx.devs.get(*oidx) else {
                continue;
            };
            if other.name == d.name {
                continue; // self-session: not conflint's concern
            }
            let Some(obgp) = &other.cfg.bgp else {
                push(
                    findings,
                    RuleId::C2,
                    Severity::Error,
                    &d.name,
                    format!(
                        "neighbor {} points at {}, which has no `router bgp` stanza",
                        n.peer, other.name
                    ),
                    "the peer never listens; the session stays in Idle/OpenSent forever",
                );
                continue;
            };
            if obgp.asn != n.remote_as {
                push(
                    findings,
                    RuleId::C1,
                    Severity::Error,
                    &d.name,
                    format!(
                        "neighbor {} remote-as {} but {} runs AS {}",
                        n.peer, n.remote_as, other.name, obgp.asn
                    ),
                    "the OPEN exchange will be rejected with NOTIFICATION \
                     `bad peer AS`; the session can never reach Established",
                );
            }
            // Mutuality: the peer must configure a session back to one of
            // this device's addresses.
            let my_addrs: Vec<Ipv4Addr> = d
                .cfg
                .interfaces
                .iter()
                .filter_map(|i| i.addr.map(|a| a.addr))
                .collect();
            let reverse = obgp.neighbors.iter().find(|m| my_addrs.contains(&m.peer));
            match reverse {
                None => push(
                    findings,
                    RuleId::C2,
                    Severity::Error,
                    &d.name,
                    format!(
                        "neighbor {} is one-sided: {} has no neighbor statement \
                         back to {}",
                        n.peer, other.name, d.name
                    ),
                    "the peer ignores inbound OPENs from unconfigured addresses; \
                     this side stays in Idle/OpenSent forever",
                ),
                Some(m) if m.shutdown => push(
                    findings,
                    RuleId::C2,
                    Severity::Warning,
                    &d.name,
                    format!(
                        "neighbor {}: the reverse statement on {} is shutdown",
                        n.peer, other.name
                    ),
                    "if the maintenance is deliberate, shut down this side too \
                     (or suppress with a reasoned allow)",
                ),
                Some(_) => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C3 — IS-IS adjacency parameters
// ---------------------------------------------------------------------------

/// Is this interface's IS-IS stanza actually effective (attached to the
/// router instance)? A name mismatch detaches it silently on the vendor.
fn isis_effective<'a>(d: &'a Dev, ii: &IfaceIsis) -> Option<&'a mfv_config::IsisConfig> {
    d.cfg
        .isis
        .as_ref()
        .filter(|stanza| stanza.instance == ii.instance)
}

fn check_isis(ctx: &Ctx, findings: &mut Vec<Finding>) {
    // Per-device: interface references an instance the router stanza does
    // not define (the vendor silently detaches the interface).
    for d in &ctx.devs {
        for iface in &d.cfg.interfaces {
            let Some(ii) = &iface.isis else { continue };
            if isis_effective(d, ii).is_none() {
                let stanza = d
                    .cfg
                    .isis
                    .as_ref()
                    .map(|s| format!("`{}`", s.instance))
                    .unwrap_or_else(|| "none".to_string());
                push(
                    findings,
                    RuleId::C3,
                    Severity::Error,
                    &d.name,
                    format!(
                        "interface {} enables IS-IS instance `{}` but the router \
                         stanza is {}",
                        iface.name, ii.instance, stanza
                    ),
                    "the interface is silently excluded from IS-IS; no adjacency \
                     forms and its subnet is not advertised",
                );
            }
        }
    }

    // Per-link: enablement, area, and level compatibility.
    for l in &ctx.topo.links {
        let (Some(da), Some(db)) = (
            ctx.dev_by_name(l.a_node.as_str()),
            ctx.dev_by_name(l.b_node.as_str()),
        ) else {
            continue;
        };
        let ia = da.cfg.interface(&l.a_iface);
        let ib = db.cfg.interface(&l.b_iface);
        let side = |d: &Dev, iface: Option<&mfv_config::InterfaceConfig>| {
            iface
                .and_then(|i| i.isis.clone())
                .filter(|ii| !ii.passive)
                .and_then(|ii| isis_effective(d, &ii).cloned())
        };
        let sa = side(da, ia);
        let sb = side(db, ib);
        match (&sa, &sb) {
            (None, None) => {}
            (Some(_), None) => push(
                findings,
                RuleId::C3,
                Severity::Error,
                &db.name,
                format!(
                    "link {}:{} <-> {}:{} runs IS-IS on {} only — {} has it \
                     disabled or passive on {}",
                    l.a_node, l.a_iface, l.b_node, l.b_iface, da.name, db.name, l.b_iface
                ),
                "hellos from the enabled side are ignored; the adjacency never \
                 leaves Down/Initializing",
            ),
            (None, Some(_)) => push(
                findings,
                RuleId::C3,
                Severity::Error,
                &da.name,
                format!(
                    "link {}:{} <-> {}:{} runs IS-IS on {} only — {} has it \
                     disabled or passive on {}",
                    l.a_node, l.a_iface, l.b_node, l.b_iface, db.name, da.name, l.a_iface
                ),
                "hellos from the enabled side are ignored; the adjacency never \
                 leaves Down/Initializing",
            ),
            (Some(ca), Some(cb)) => {
                let (aa, ab) = (ca.area(), cb.area());
                if aa != ab {
                    // One finding per endpoint: either side may be the
                    // misconfigured one, and suppressions are device-scoped.
                    for dev in [da, db] {
                        push(
                            findings,
                            RuleId::C3,
                            Severity::Error,
                            &dev.name,
                            format!(
                                "NET area mismatch across {}:{} <-> {}:{}: {} is in \
                                 area {} but {} is in area {}",
                                l.a_node,
                                l.a_iface,
                                l.b_node,
                                l.b_iface,
                                da.name,
                                aa.clone().unwrap_or_else(|| "?".into()),
                                db.name,
                                ab.clone().unwrap_or_else(|| "?".into()),
                            ),
                            "both vendors require matching areas on point-to-point \
                             adjacencies here; hellos are ignored and the adjacency \
                             never forms",
                        );
                    }
                }
                let common_level = !matches!(
                    (ca.level, cb.level),
                    (IsisLevel::Level1, IsisLevel::Level2) | (IsisLevel::Level2, IsisLevel::Level1)
                );
                if !common_level {
                    push(
                        findings,
                        RuleId::C3,
                        Severity::Warning,
                        &db.name,
                        format!(
                            "IS-IS level mismatch across {}:{} <-> {}:{} ({:?} vs {:?})",
                            l.a_node, l.a_iface, l.b_node, l.b_iface, ca.level, cb.level
                        ),
                        "the routers share no common level; on real hardware the \
                         adjacency cannot form",
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C4 — duplicate identities
// ---------------------------------------------------------------------------

fn check_duplicate_identity(ctx: &Ctx, findings: &mut Vec<Finding>) {
    let mut by_rid: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    let mut by_sysid: BTreeMap<String, Vec<&str>> = BTreeMap::new();
    let mut by_loopback: BTreeMap<Ipv4Addr, Vec<&str>> = BTreeMap::new();
    for d in &ctx.devs {
        if let Some(rid) = d.cfg.effective_router_id() {
            by_rid.entry(rid.to_string()).or_default().push(&d.name);
        }
        if let Some(sysid) = d.cfg.isis.as_ref().and_then(|i| i.system_id()) {
            by_sysid.entry(sysid).or_default().push(&d.name);
        }
        if let Some(lo) = d.cfg.loopback_addr() {
            by_loopback.entry(lo).or_default().push(&d.name);
        }
    }
    let emit =
        |kind: &str, key: String, names: &[&str], help: &str, findings: &mut Vec<Finding>| {
            if names.len() < 2 {
                return;
            }
            // One finding per device past the first, so a reasoned allow on the
            // genuinely-anycast device does not hide an accidental clone.
            for name in names.iter().skip(1) {
                push(
                    findings,
                    RuleId::C4,
                    Severity::Error,
                    name,
                    format!("duplicate {kind} {key} (also on {})", names.join(", ")),
                    help,
                );
            }
        };
    for (k, v) in &by_rid {
        emit(
            "BGP router-id",
            k.clone(),
            v,
            "peers cannot tell the two routers apart; sessions and \
             best-path tie-breaks misbehave",
            findings,
        );
    }
    for (k, v) in &by_sysid {
        emit(
            "IS-IS system-id",
            k.clone(),
            v,
            "both routers originate LSPs under the same LSP-id; the higher \
             sequence number silently erases the other router's prefixes",
            findings,
        );
    }
    for (k, v) in &by_loopback {
        emit(
            "loopback address",
            k.to_string(),
            v,
            "iBGP sessions and /32 reachability resolve to an arbitrary \
             one of the clones",
            findings,
        );
    }
}

// ---------------------------------------------------------------------------
// C5 — policy reference hygiene
// ---------------------------------------------------------------------------

fn check_policy_refs(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for d in &ctx.devs {
        let mut rm_refs: Vec<(String, String)> = Vec::new(); // (name, where)
        if let Some(bgp) = &d.cfg.bgp {
            for n in &bgp.neighbors {
                if let Some(rm) = &n.route_map_in {
                    rm_refs.push((rm.clone(), format!("neighbor {} route-map in", n.peer)));
                }
                if let Some(rm) = &n.route_map_out {
                    rm_refs.push((rm.clone(), format!("neighbor {} route-map out", n.peer)));
                }
            }
            for r in &bgp.redistribute {
                if let Some(rm) = &r.route_map {
                    rm_refs.push((rm.clone(), format!("redistribute {:?}", r.proto)));
                }
            }
        }
        for (name, site) in &rm_refs {
            if !d.cfg.route_maps.contains_key(name) {
                push(
                    findings,
                    RuleId::C5,
                    Severity::Error,
                    &d.name,
                    format!("route-map `{name}` referenced by `{site}` is not defined"),
                    "a missing route-map denies everything on this vendor: the \
                     session stays up while every route is silently dropped",
                );
            }
        }
        for name in d.cfg.route_maps.keys() {
            if !rm_refs.iter().any(|(n, _)| n == name) {
                push(
                    findings,
                    RuleId::C5,
                    Severity::Warning,
                    &d.name,
                    format!("route-map `{name}` is defined but never referenced"),
                    "dead policy rots; delete it or attach it where intended",
                );
            }
        }

        let mut pl_refs: Vec<(String, String)> = Vec::new();
        for (rm_name, rm) in &d.cfg.route_maps {
            for e in &rm.entries {
                for m in &e.matches {
                    if let mfv_config::MatchClause::PrefixList(pl) = m {
                        pl_refs.push((pl.clone(), format!("route-map {rm_name} seq {}", e.seq)));
                    }
                }
            }
        }
        for (name, site) in &pl_refs {
            if !d.cfg.prefix_lists.contains_key(name) {
                push(
                    findings,
                    RuleId::C5,
                    Severity::Error,
                    &d.name,
                    format!("prefix-list `{name}` referenced by `{site}` is not defined"),
                    "a match on a missing prefix-list never matches, falling \
                     through to the implicit deny",
                );
            }
        }
        for name in d.cfg.prefix_lists.keys() {
            if !pl_refs.iter().any(|(n, _)| n == name) {
                push(
                    findings,
                    RuleId::C5,
                    Severity::Warning,
                    &d.name,
                    format!("prefix-list `{name}` is defined but never referenced"),
                    "dead policy rots; delete it or attach it where intended",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C6 — link subnet agreement
// ---------------------------------------------------------------------------

fn check_link_subnets(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for l in &ctx.topo.links {
        let (Some(da), Some(db)) = (
            ctx.dev_by_name(l.a_node.as_str()),
            ctx.dev_by_name(l.b_node.as_str()),
        ) else {
            continue;
        };
        let aa = da.cfg.interface(&l.a_iface).and_then(|i| i.addr);
        let ab = db.cfg.interface(&l.b_iface).and_then(|i| i.addr);
        match (aa, ab) {
            (Some(x), Some(y)) => {
                if x.addr == y.addr {
                    for dev in [da, db] {
                        push(
                            findings,
                            RuleId::C6,
                            Severity::Error,
                            &dev.name,
                            format!(
                                "both ends of {}:{} <-> {}:{} configure the same \
                                 address {}",
                                l.a_node, l.a_iface, l.b_node, l.b_iface, x.addr
                            ),
                            "duplicate addresses on a link make delivery ambiguous; \
                             renumber one side",
                        );
                    }
                } else if !x.same_subnet(&y) {
                    // Per-endpoint: either side may hold the typo, and
                    // suppressions are device-scoped.
                    for dev in [da, db] {
                        push(
                            findings,
                            RuleId::C6,
                            Severity::Error,
                            &dev.name,
                            format!(
                                "subnet mismatch across {}:{} <-> {}:{}: {} vs {}",
                                l.a_node, l.a_iface, l.b_node, l.b_iface, x, y
                            ),
                            "neither side considers the other directly connected; \
                             BGP transport over the link never comes up",
                        );
                    }
                }
            }
            (Some(_), None) | (None, Some(_)) => {
                let unnumbered = if aa.is_none() { &da.name } else { &db.name };
                push(
                    findings,
                    RuleId::C6,
                    Severity::Warning,
                    unnumbered,
                    format!(
                        "link {}:{} <-> {}:{}: {} has no address on its end",
                        l.a_node, l.a_iface, l.b_node, l.b_iface, unnumbered
                    ),
                    "an unnumbered end cannot terminate BGP transport on this link",
                );
            }
            (None, None) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// C7 — unpoliced redistribution
// ---------------------------------------------------------------------------

fn check_redistribution(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for d in &ctx.devs {
        let Some(bgp) = &d.cfg.bgp else { continue };
        for r in &bgp.redistribute {
            if r.route_map.is_none() {
                push(
                    findings,
                    RuleId::C7,
                    Severity::Warning,
                    &d.name,
                    format!(
                        "`redistribute {:?}` into BGP has no route-map attached",
                        r.proto
                    ),
                    "unfiltered redistribution leaks every matching route \
                     (infrastructure subnets included) to all BGP peers; attach \
                     a route-map, even permit-all, to make the policy explicit",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// C8 — prefix-list shadowing
// ---------------------------------------------------------------------------

/// The matched-length interval of an entry, per `PrefixListEntry::matches`.
fn entry_bounds(e: &PrefixListEntry) -> (u8, u8) {
    let lo = e.ge.unwrap_or(e.prefix.len());
    let hi =
        e.le.unwrap_or(if e.ge.is_some() { 32 } else { e.prefix.len() });
    (lo, hi)
}

/// Does `a` (evaluated first) shadow `b` completely — i.e. every prefix `b`
/// would match is already decided by `a`?
fn shadows(a: &PrefixListEntry, b: &PrefixListEntry) -> bool {
    let (alo, ahi) = entry_bounds(a);
    let (blo, bhi) = entry_bounds(b);
    a.prefix.covers(&b.prefix) && alo <= blo && ahi >= bhi && blo <= bhi
}

fn check_prefix_list_shadowing(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for d in &ctx.devs {
        for (name, pl) in &d.cfg.prefix_lists {
            for (j, later) in pl.entries.iter().enumerate() {
                let shadowed_by = pl
                    .entries
                    .iter()
                    .take(j)
                    .find(|earlier| shadows(earlier, later));
                if let Some(earlier) = shadowed_by {
                    push(
                        findings,
                        RuleId::C8,
                        Severity::Warning,
                        &d.name,
                        format!(
                            "prefix-list `{name}` seq {} is unreachable: seq {} \
                             already decides every prefix it could match",
                            later.seq, earlier.seq
                        ),
                        "first match wins; the later entry is dead configuration \
                         — if it was meant to take effect, reorder or narrow the \
                         earlier entry",
                    );
                }
            }
        }
    }
}
