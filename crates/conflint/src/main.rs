//! CLI: `cargo run -p mfv-conflint -- [--json] [--deny-warnings] <topology.json>...`
//!
//! Lints one or more topology files (the JSON produced by
//! `Topology::to_json` / `mfvctl export`). Exit codes mirror `mfv-lint`:
//! 0 = clean (or warnings only, unless `--deny-warnings`), 1 = findings,
//! 2 = usage or I/O error.

use std::process::ExitCode;

use mfv_conflint::{analyze, Severity};
use mfv_emulator::Topology;

const USAGE: &str = "usage: mfv-conflint [--json] [--deny-warnings] <topology.json>...";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("mfv-conflint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mfv-conflint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let topo = match Topology::from_json(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mfv-conflint: {path}: not a topology JSON: {e}");
                return ExitCode::from(2);
            }
        };
        let report = match analyze(&topo) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mfv-conflint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        if json {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render());
        }
        let gate = report
            .findings
            .iter()
            .any(|f| deny_warnings || f.severity == Severity::Error);
        failed = failed || gate;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
