//! Fixture-topology self-tests: every rule family has a minimal topology
//! that triggers it and a clean counterpart that does not — the same
//! contract `mfv-lint` keeps with its fixture workspaces.

use std::net::Ipv4Addr;

use mfv_config::{
    MatchClause, PolicyAction, PrefixList, PrefixListEntry, RouteMap, RouteMapEntry, RouterSpec,
};
use mfv_conflint::{analyze, Report, RuleId, Severity};
use mfv_emulator::{ExternalPeerSpec, NodeSpec, Topology};
use mfv_types::AsNum;

fn lo(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(2, 2, 2, i)
}

/// Two-AS eBGP pair over 10.0.0.0/31, loopbacks originated via `network`.
fn ebgp_pair() -> (RouterSpec, RouterSpec) {
    let r1 = RouterSpec::new("r1", AsNum(65001), lo(1))
        .iface(mfv_config::IfaceSpec::new(
            "Ethernet1",
            "10.0.0.0/31".parse().unwrap(),
        ))
        .ebgp("10.0.0.1".parse().unwrap(), AsNum(65002))
        .network("2.2.2.1/32".parse().unwrap());
    let r2 = RouterSpec::new("r2", AsNum(65002), lo(2))
        .iface(mfv_config::IfaceSpec::new(
            "Ethernet1",
            "10.0.0.1/31".parse().unwrap(),
        ))
        .ebgp("10.0.0.0".parse().unwrap(), AsNum(65001))
        .network("2.2.2.2/32".parse().unwrap());
    (r1, r2)
}

/// Same-AS IS-IS + iBGP pair.
fn ibgp_pair() -> (RouterSpec, RouterSpec) {
    let r1 = RouterSpec::new("r1", AsNum(65001), lo(1))
        .iface(mfv_config::IfaceSpec::new("Ethernet1", "10.0.0.0/31".parse().unwrap()).with_isis())
        .ibgp(lo(2))
        .network("2.2.2.1/32".parse().unwrap());
    let r2 = RouterSpec::new("r2", AsNum(65001), lo(2))
        .iface(mfv_config::IfaceSpec::new("Ethernet1", "10.0.0.1/31".parse().unwrap()).with_isis())
        .ibgp(lo(1))
        .network("2.2.2.2/32".parse().unwrap());
    (r1, r2)
}

fn topo(name: &str, specs: &[&RouterSpec]) -> Topology {
    let mut t = Topology::new(name);
    for s in specs {
        t.add_node(NodeSpec::from_config(s.name.clone(), &s.build()));
    }
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    t.validate()
        .expect("fixture topology is structurally valid");
    t
}

fn run(t: &Topology) -> Report {
    analyze(t).expect("fixture configs parse")
}

fn rules(r: &Report) -> Vec<RuleId> {
    let mut v: Vec<RuleId> = r.findings.iter().map(|f| f.rule).collect();
    v.dedup();
    v
}

#[test]
fn clean_ebgp_pair_has_no_findings() {
    let (r1, r2) = ebgp_pair();
    let report = run(&topo("clean-ebgp", &[&r1, &r2]));
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn clean_ibgp_isis_pair_has_no_findings() {
    let (r1, r2) = ibgp_pair();
    let report = run(&topo("clean-ibgp", &[&r1, &r2]));
    assert!(report.is_clean(), "{}", report.render());
}

// -- C1 ---------------------------------------------------------------------

#[test]
fn c1_wrong_remote_as_is_flagged_on_the_misconfigured_device() {
    let (r1, mut r2) = ebgp_pair();
    r2.ebgp.clear();
    let r2 = r2.ebgp("10.0.0.0".parse().unwrap(), AsNum(65099));
    let report = run(&topo("c1", &[&r1, &r2]));
    assert_eq!(rules(&report), vec![RuleId::C1], "{}", report.render());
    let f = report.by_rule(RuleId::C1);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].device, "r2");
    assert_eq!(f[0].severity, Severity::Error);
    assert!(f[0].message.contains("65099") && f[0].message.contains("65001"));
}

#[test]
fn c1_external_peer_asn_mismatch() {
    let (r1, r2) = ebgp_pair();
    let r1 = r1.ebgp("10.0.0.2".parse().unwrap(), AsNum(64999));
    let mut t = topo("c1-ext", &[&r1, &r2]);
    t.external_peers.push(ExternalPeerSpec {
        addr: "10.0.0.2".parse().unwrap(),
        asn: AsNum(64512),
        attach_to: "r1".into(),
        route_count: 0,
        base_octet: None,
    });
    let report = run(&t);
    let f = report.by_rule(RuleId::C1);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert_eq!(f[0].device, "r1");
}

// -- C2 ---------------------------------------------------------------------

#[test]
fn c2_one_sided_session_is_flagged() {
    let (r1, mut r2) = ebgp_pair();
    r2.ebgp.clear(); // r2 keeps `network` (so it still runs BGP) but drops the session
    let report = run(&topo("c2", &[&r1, &r2]));
    let f = report.by_rule(RuleId::C2);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert_eq!(f[0].device, "r1");
    assert_eq!(f[0].severity, Severity::Error);
    assert!(f[0].message.contains("one-sided"));
}

#[test]
fn c2_unknown_neighbor_address_is_flagged() {
    let (r1, r2) = ebgp_pair();
    let r1 = r1.ebgp("203.0.113.7".parse().unwrap(), AsNum(65077));
    let report = run(&topo("c2-unknown", &[&r1, &r2]));
    let f = report.by_rule(RuleId::C2);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert!(f[0].message.contains("203.0.113.7"));
}

#[test]
fn c2_shutdown_reverse_is_a_warning_not_an_error() {
    let (r1, r2) = ebgp_pair();
    let mut t = Topology::new("c2-shutdown");
    let mut cfg1 = r1.build();
    if let Some(bgp) = cfg1.bgp.as_mut() {
        for n in bgp.neighbors.iter_mut() {
            n.shutdown = true;
        }
    }
    t.add_node(NodeSpec::from_config("r1", &cfg1));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let report = run(&t);
    let f = report.by_rule(RuleId::C2);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert_eq!(f[0].device, "r2");
    assert_eq!(f[0].severity, Severity::Warning);
    assert_eq!(report.errors(), 0);
}

// -- C3 ---------------------------------------------------------------------

#[test]
fn c3_area_mismatch_is_flagged() {
    let (r1, mut r2) = ibgp_pair();
    r2.isis_area = "49.0002".to_string();
    let report = run(&topo("c3", &[&r1, &r2]));
    // One finding per endpoint: either side may hold the typo.
    let f = report.by_rule(RuleId::C3);
    assert_eq!(f.len(), 2, "{}", report.render());
    let devices: Vec<&str> = f.iter().map(|f| f.device.as_str()).collect();
    assert_eq!(devices, ["r1", "r2"]);
    for f in &f {
        assert!(f.message.contains("49.0001") && f.message.contains("49.0002"));
        assert_eq!(f.severity, Severity::Error);
    }
}

#[test]
fn c3_one_sided_isis_is_flagged() {
    let (r1, mut r2) = ibgp_pair();
    if let Some(i) = r2.ifaces.first_mut() {
        i.isis = false;
    }
    let report = run(&topo("c3-oneside", &[&r1, &r2]));
    let f = report.by_rule(RuleId::C3);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert_eq!(f[0].device, "r2");
}

#[test]
fn c3_instance_mismatch_is_flagged() {
    let (r1, r2) = ibgp_pair();
    let mut cfg2 = r2.build();
    for iface in cfg2.interfaces.iter_mut() {
        if let Some(ii) = iface.isis.as_mut() {
            ii.instance = "blue".to_string();
        }
    }
    let mut t = Topology::new("c3-instance");
    t.add_node(NodeSpec::from_config("r1", &r1.build()));
    t.add_node(NodeSpec::from_config("r2", &cfg2));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let report = run(&t);
    assert!(
        report
            .by_rule(RuleId::C3)
            .iter()
            .any(|f| f.device == "r2" && f.message.contains("blue")),
        "{}",
        report.render()
    );
}

// -- C4 ---------------------------------------------------------------------

#[test]
fn c4_duplicate_loopback_flags_router_id_and_loopback_and_system_id() {
    let (r1, mut r2) = ibgp_pair();
    r2.loopback = lo(1); // clone of r1
    let report = run(&topo("c4", &[&r1, &r2]));
    let f = report.by_rule(RuleId::C4);
    // router-id + system-id + loopback address all collide.
    assert_eq!(f.len(), 3, "{}", report.render());
    assert!(f.iter().all(|f| f.device == "r2"));
    assert!(f.iter().any(|f| f.message.contains("router-id")));
    assert!(f.iter().any(|f| f.message.contains("system-id")));
    assert!(f.iter().any(|f| f.message.contains("loopback")));
}

// -- C5 ---------------------------------------------------------------------

#[test]
fn c5_undefined_route_map_is_an_error_unused_is_a_warning() {
    let (r1, r2) = ebgp_pair();
    let mut cfg1 = r1.build();
    if let Some(bgp) = cfg1.bgp.as_mut() {
        if let Some(n) = bgp.neighbors.first_mut() {
            n.route_map_in = Some("NO-SUCH-MAP".to_string());
        }
    }
    cfg1.route_maps.insert(
        "ORPHAN".to_string(),
        RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: Vec::new(),
                sets: Vec::new(),
            }],
        },
    );
    let mut t = Topology::new("c5");
    t.add_node(NodeSpec::from_config("r1", &cfg1));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let report = run(&t);
    let f = report.by_rule(RuleId::C5);
    assert_eq!(f.len(), 2, "{}", report.render());
    assert!(f
        .iter()
        .any(|f| f.severity == Severity::Error && f.message.contains("NO-SUCH-MAP")));
    assert!(f
        .iter()
        .any(|f| f.severity == Severity::Warning && f.message.contains("ORPHAN")));
}

#[test]
fn c5_undefined_prefix_list_behind_a_used_route_map() {
    let (r1, r2) = ebgp_pair();
    let r1 = r1.route_map(
        "IMPORT",
        RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: vec![MatchClause::PrefixList("GHOST".to_string())],
                sets: Vec::new(),
            }],
        },
    );
    let mut cfg1 = r1.build();
    if let Some(bgp) = cfg1.bgp.as_mut() {
        if let Some(n) = bgp.neighbors.first_mut() {
            n.route_map_in = Some("IMPORT".to_string());
        }
    }
    let mut t = Topology::new("c5-pl");
    t.add_node(NodeSpec::from_config("r1", &cfg1));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let report = run(&t);
    let f = report.by_rule(RuleId::C5);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert!(f[0].message.contains("GHOST"));
    assert_eq!(f[0].severity, Severity::Error);
}

// -- C6 ---------------------------------------------------------------------

#[test]
fn c6_subnet_mismatch_is_flagged() {
    let (r1, mut r2) = ebgp_pair();
    if let Some(i) = r2.ifaces.first_mut() {
        i.addr = "10.0.9.1/31".parse().unwrap();
    }
    let report = run(&topo("c6", &[&r1, &r2]));
    // One finding per endpoint: either side may hold the typo.
    let f = report.by_rule(RuleId::C6);
    assert_eq!(f.len(), 2, "{}", report.render());
    let devices: Vec<&str> = f.iter().map(|f| f.device.as_str()).collect();
    assert_eq!(devices, ["r1", "r2"]);
    for f in &f {
        assert_eq!(f.severity, Severity::Error);
        assert!(f.message.contains("10.0.0.0/31") && f.message.contains("10.0.9.1/31"));
    }
}

// -- C7 ---------------------------------------------------------------------

#[test]
fn c7_unpoliced_redistribution_warns_policed_is_clean() {
    let (r1, r2) = ebgp_pair();
    let dirty = r1.clone().redistribute_connected();
    let report = run(&topo("c7", &[&dirty, &r2]));
    let f = report.by_rule(RuleId::C7);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert_eq!(f[0].severity, Severity::Warning);
    assert_eq!(f[0].device, "r1");

    let policed = r1
        .redistribute_connected_policed("CONN-OUT")
        .route_map("CONN-OUT", RouterSpec::permit_all_route_map());
    let report = run(&topo("c7-clean", &[&policed, &r2]));
    assert!(report.is_clean(), "{}", report.render());
}

// -- C8 ---------------------------------------------------------------------

fn ple(
    seq: u32,
    action: PolicyAction,
    prefix: &str,
    ge: Option<u8>,
    le: Option<u8>,
) -> PrefixListEntry {
    PrefixListEntry {
        seq,
        action,
        prefix: prefix.parse().unwrap(),
        ge,
        le,
    }
}

#[test]
fn c8_shadowed_entry_is_flagged() {
    let (r1, r2) = ebgp_pair();
    let r1 = r1
        .prefix_list(
            "LOOPBACKS",
            PrefixList {
                entries: vec![
                    ple(5, PolicyAction::Deny, "0.0.0.0/0", None, Some(32)),
                    ple(10, PolicyAction::Permit, "2.2.2.0/24", Some(32), Some(32)),
                ],
            },
        )
        .route_map(
            "IMPORT",
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: PolicyAction::Permit,
                    matches: vec![MatchClause::PrefixList("LOOPBACKS".to_string())],
                    sets: Vec::new(),
                }],
            },
        );
    let mut cfg1 = r1.build();
    if let Some(bgp) = cfg1.bgp.as_mut() {
        if let Some(n) = bgp.neighbors.first_mut() {
            n.route_map_in = Some("IMPORT".to_string());
        }
    }
    let mut t = Topology::new("c8");
    t.add_node(NodeSpec::from_config("r1", &cfg1));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let report = run(&t);
    let f = report.by_rule(RuleId::C8);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert!(f[0].message.contains("seq 10") && f[0].message.contains("seq 5"));
}

#[test]
fn c8_non_overlapping_entries_are_clean() {
    let (r1, r2) = ebgp_pair();
    let r1 = r1
        .prefix_list(
            "LOOPBACKS",
            PrefixList {
                entries: vec![
                    ple(5, PolicyAction::Deny, "10.0.0.0/8", Some(24), Some(32)),
                    ple(10, PolicyAction::Permit, "2.2.2.0/24", Some(32), Some(32)),
                ],
            },
        )
        .route_map(
            "IMPORT",
            RouteMap {
                entries: vec![RouteMapEntry {
                    seq: 10,
                    action: PolicyAction::Permit,
                    matches: vec![MatchClause::PrefixList("LOOPBACKS".to_string())],
                    sets: Vec::new(),
                }],
            },
        );
    let mut cfg1 = r1.build();
    if let Some(bgp) = cfg1.bgp.as_mut() {
        if let Some(n) = bgp.neighbors.first_mut() {
            n.route_map_in = Some("IMPORT".to_string());
        }
    }
    let mut t = Topology::new("c8-clean");
    t.add_node(NodeSpec::from_config("r1", &cfg1));
    t.add_node(NodeSpec::from_config("r2", &r2.build()));
    t.add_link(("r1", "Ethernet1"), ("r2", "Ethernet1"));
    let report = run(&t);
    assert!(report.by_rule(RuleId::C8).is_empty(), "{}", report.render());
}

// -- Suppressions -----------------------------------------------------------

#[test]
fn reasoned_allow_suppresses_and_is_inventoried() {
    let (r1, r2) = ebgp_pair();
    let dirty = r1.redistribute_connected();
    let mut t = topo("suppressed", &[&dirty, &r2]);
    if let Some(n) = t.nodes.first_mut() {
        n.config_text
            .push_str("\n! conflint: allow(C7, fabric subnets leak by design)\n");
    }
    let report = run(&t);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, RuleId::C7);
    assert_eq!(report.suppressed[0].device, "r1");
    assert_eq!(report.suppressed[0].count, 1);
}

#[test]
fn reasonless_allow_is_itself_an_error() {
    let (r1, r2) = ebgp_pair();
    let mut t = topo("bad-allow", &[&r1, &r2]);
    if let Some(n) = t.nodes.first_mut() {
        n.config_text.push_str("\n! conflint: allow(C7)\n");
    }
    let report = run(&t);
    let f = report.by_rule(RuleId::C0);
    assert_eq!(f.len(), 1, "{}", report.render());
    assert_eq!(f[0].severity, Severity::Error);
}

// -- Rendering --------------------------------------------------------------

#[test]
fn json_output_is_well_formed() {
    let (r1, mut r2) = ebgp_pair();
    r2.ebgp.clear();
    let r2 = r2.ebgp("10.0.0.0".parse().unwrap(), AsNum(65099));
    let report = run(&topo("json", &[&r1, &r2]));
    let json = report.render_json();
    let v = serde_json::parse(&json).expect("valid JSON");
    assert_eq!(v.get("errors").and_then(|e| e.as_u64()), Some(1));
    let findings = v
        .get("findings")
        .and_then(|f| f.as_array())
        .expect("findings array");
    let first = findings.first().expect("one finding");
    assert_eq!(first.get("rule").and_then(|r| r.as_str()), Some("C1"));
    assert_eq!(first.get("device").and_then(|d| d.as_str()), Some("r2"));
}
