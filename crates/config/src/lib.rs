//! Vendor configuration languages: a vendor-neutral IR plus two dialects.
//!
//! - [`ir`] — the neutral [`ir::DeviceConfig`] consumed by the vendor router
//!   implementations in `mfv-vrouter`.
//! - [`ceos`] — EOS-like industry-standard CLI (the paper's Fig. 3 dialect).
//! - [`vjunos`] — Junos-like hierarchical dialect (the second vendor).
//! - [`gen`] — generators producing realistic configs at paper scale.
//!
//! Parsing in this crate is *vendor-faithful*: it reproduces what the real
//! device accepts, independent of statement order. The deliberately partial,
//! assumption-laden parser lives in `mfv-model` — that contrast is the
//! paper's central argument.

pub mod ceos;
pub mod gen;
pub mod ir;
pub mod vjunos;

pub use ceos::{ParseError, ParseWarning, Parsed};
pub use gen::{
    add_production_boilerplate, classify_line, inject_misconfig, FeatureClass, IfaceSpec,
    InjectError, InjectionReport, RouterSpec, SeededMisconfig,
};
pub use ir::*;

/// Parses `text` in the given vendor's dialect.
pub fn parse(vendor: Vendor, text: &str) -> Result<Parsed, ParseError> {
    match vendor {
        Vendor::Ceos => ceos::parse(text),
        Vendor::Vjunos => vjunos::parse(text),
    }
}

/// Renders `cfg` in its own vendor's dialect.
pub fn render(cfg: &DeviceConfig) -> String {
    match cfg.vendor {
        Vendor::Ceos => ceos::render(cfg),
        Vendor::Vjunos => vjunos::render(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_types::AsNum;
    use std::net::Ipv4Addr;

    #[test]
    fn dispatch_by_vendor() {
        let spec = gen::RouterSpec::new("x", AsNum(65000), Ipv4Addr::new(1, 1, 1, 1));
        for vendor in [Vendor::Ceos, Vendor::Vjunos] {
            let cfg = spec.clone().vendor(vendor).build();
            let text = render(&cfg);
            let parsed = parse(vendor, &text).unwrap();
            assert_eq!(parsed.config.hostname, "x");
            assert_eq!(parsed.config.vendor, vendor);
        }
    }
}
