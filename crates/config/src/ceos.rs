//! Parser and renderer for the EOS-like industry-standard CLI dialect.
//!
//! Structure: top-level commands introduce sections; indented lines belong to
//! the current section; `!` (or the next top-level line) closes it. This is
//! the dialect the paper's Fig. 3 snippet is written in, and the one whose
//! semantics the model-based baseline misinterprets.
//!
//! Parsing here is *vendor-faithful*: statement order inside a stanza does
//! not matter (`ip address` before `no switchport` works fine, unlike the
//! Batfish-style model), and unknown statements are recorded as warnings and
//! ignored rather than corrupting the rest of the config.

use std::fmt;
use std::net::Ipv4Addr;

use mfv_types::{AsNum, Community, IfaceAddr, Prefix, RouterId};

use crate::ir::*;

/// A non-fatal problem encountered while applying a configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseWarning {
    /// 1-based line number in the source text.
    pub line: usize,
    /// The offending text, trimmed.
    pub text: String,
    pub reason: String,
}

impl fmt::Display for ParseWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {} ({})", self.line, self.text, self.reason)
    }
}

/// A fatal configuration error (malformed values the CLI would reject).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub line: usize,
    pub text: String,
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config error at line {}: {} ({})",
            self.line, self.text, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// Result of parsing: the config plus diagnostics.
#[derive(Clone, Debug)]
pub struct Parsed {
    pub config: DeviceConfig,
    pub warnings: Vec<ParseWarning>,
    /// Number of non-blank, non-comment statements the parser understood.
    pub recognized_lines: usize,
    /// Total non-blank, non-comment statements.
    pub total_lines: usize,
}

/// Parses an EOS-style configuration.
pub fn parse(text: &str) -> Result<Parsed, ParseError> {
    Parser::new(text).run()
}

struct Line<'a> {
    number: usize,
    indented: bool,
    words: Vec<&'a str>,
    raw: &'a str,
}

struct Parser<'a> {
    lines: Vec<Line<'a>>,
    pos: usize,
    cfg: DeviceConfig,
    warnings: Vec<ParseWarning>,
    recognized: usize,
    total: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .filter_map(|(i, raw)| {
                let trimmed = raw.trim_end();
                let body = trimmed.trim_start();
                if body.is_empty() || body.starts_with('!') {
                    return None;
                }
                Some(Line {
                    number: i + 1,
                    indented: trimmed.len() != body.len(),
                    words: body.split_whitespace().collect(),
                    raw: body,
                })
            })
            .collect();
        Parser {
            lines,
            pos: 0,
            cfg: DeviceConfig::new("", Vendor::Ceos),
            warnings: Vec::new(),
            recognized: 0,
            total: 0,
        }
    }

    fn run(mut self) -> Result<Parsed, ParseError> {
        self.total = self.lines.len();
        while self.pos < self.lines.len() {
            self.top_level()?;
        }
        Ok(Parsed {
            config: self.cfg,
            warnings: self.warnings,
            recognized_lines: self.recognized,
            total_lines: self.total,
        })
    }

    fn warn(&mut self, line: usize, text: &str, reason: &str) {
        self.warnings.push(ParseWarning {
            line,
            text: text.to_string(),
            reason: reason.to_string(),
        });
    }

    fn err(&self, line: usize, text: &str, reason: &str) -> ParseError {
        ParseError {
            line,
            text: text.to_string(),
            reason: reason.to_string(),
        }
    }

    /// Collects the indices of the indented lines forming the current
    /// section body (after the section header at `self.pos` was consumed).
    fn section_body(&mut self) -> Vec<usize> {
        let mut body = Vec::new();
        while self.pos < self.lines.len() && self.lines[self.pos].indented {
            body.push(self.pos);
            self.pos += 1;
        }
        body
    }

    fn top_level(&mut self) -> Result<(), ParseError> {
        let idx = self.pos;
        self.pos += 1;
        let (number, raw) = (self.lines[idx].number, self.lines[idx].raw.to_string());
        let words: Vec<String> = self.lines[idx]
            .words
            .iter()
            .map(|w| w.to_string())
            .collect();
        let w: Vec<&str> = words.iter().map(|s| s.as_str()).collect();

        match w.as_slice() {
            ["hostname", name] => {
                self.cfg.hostname = name.to_string();
                self.recognized += 1;
            }
            ["ip", "routing"] => {
                self.cfg.ip_routing = true;
                self.recognized += 1;
            }
            ["no", "ip", "routing"] => {
                self.cfg.ip_routing = false;
                self.recognized += 1;
            }
            ["service", "routing", ..]
            | ["spanning-tree", ..]
            | ["aaa", ..]
            | ["username", ..]
            | ["snmp-server", ..]
            | ["ip", "community-list", ..]
            | ["end"] => {
                // Recognized platform statements with no routing effect.
                self.recognized += 1;
            }
            ["ntp", "server", addr] => {
                let ip: Ipv4Addr = addr
                    .parse()
                    .map_err(|_| self.err(number, &raw, "bad NTP server address"))?;
                self.cfg.mgmt.ntp_servers.push(ip);
                self.recognized += 1;
            }
            ["logging", "host", addr] => {
                let ip: Ipv4Addr = addr
                    .parse()
                    .map_err(|_| self.err(number, &raw, "bad logging host"))?;
                self.cfg.mgmt.logging_hosts.push(ip);
                self.recognized += 1;
            }
            ["daemon", name] => {
                self.recognized += 1;
                let body = self.section_body();
                self.recognized += body.len(); // daemon bodies are opaque
                self.cfg.mgmt.daemons.push(name.to_string());
            }
            ["management", "api", api, ..] => {
                self.recognized += 1;
                self.cfg.mgmt.apis.push(api.to_string());
                let body = self.section_body();
                for b in body {
                    let bw = self.lines[b].words.clone();
                    if let ["ssl", "profile", prof] = bw.as_slice() {
                        // Several services may reference the same profile;
                        // the profile set is deduplicated.
                        if !self.cfg.mgmt.ssl_profiles.iter().any(|p| p == prof) {
                            self.cfg.mgmt.ssl_profiles.push(prof.to_string());
                        }
                    }
                    self.recognized += 1;
                }
            }
            ["management", "ssh"] => {
                self.recognized += 1;
                self.cfg.mgmt.apis.push("ssh".to_string());
                self.recognized += self.section_body().len();
            }
            ["management", "security"] => {
                self.recognized += 1;
                let body = self.section_body();
                for b in body {
                    let bw = self.lines[b].words.clone();
                    if let ["ssl", "profile", prof] = bw.as_slice() {
                        // Several services may reference the same profile;
                        // the profile set is deduplicated.
                        if !self.cfg.mgmt.ssl_profiles.iter().any(|p| p == prof) {
                            self.cfg.mgmt.ssl_profiles.push(prof.to_string());
                        }
                    }
                    self.recognized += 1;
                }
            }
            ["vlan", _] => {
                self.recognized += 1;
                self.recognized += self.section_body().len();
            }
            ["mpls", "ip"] => {
                self.cfg.mpls.enabled = true;
                self.recognized += 1;
            }
            ["router", "traffic-engineering"] => {
                self.cfg.mpls.te_enabled = true;
                self.recognized += 1;
                let body = self.section_body();
                for b in body {
                    let (n, r) = (self.lines[b].number, self.lines[b].raw.to_string());
                    let bw = self.lines[b].words.clone();
                    match bw.as_slice() {
                        ["rsvp", "hello-interval", ms] => {
                            let v: u32 = ms
                                .parse()
                                .map_err(|_| self.err(n, &r, "bad rsvp hello-interval"))?;
                            self.cfg
                                .mpls
                                .rsvp
                                .get_or_insert_with(RsvpConfig::default)
                                .hello_interval_ms = v;
                            self.recognized += 1;
                        }
                        ["rsvp", "refresh-time", ms] => {
                            let v: u32 = ms
                                .parse()
                                .map_err(|_| self.err(n, &r, "bad rsvp refresh-time"))?;
                            self.cfg
                                .mpls
                                .rsvp
                                .get_or_insert_with(RsvpConfig::default)
                                .refresh_ms = v;
                            self.recognized += 1;
                        }
                        ["rsvp"] => {
                            self.cfg.mpls.rsvp.get_or_insert_with(RsvpConfig::default);
                            self.recognized += 1;
                        }
                        _ => {
                            self.recognized += 1; // TE internals are opaque
                        }
                    }
                }
            }
            ["interface", name] => {
                self.recognized += 1;
                let name = name.to_string();
                self.interface_section(&name)?;
            }
            ["router", "isis", instance] => {
                self.recognized += 1;
                let instance = instance.to_string();
                self.isis_section(&instance)?;
            }
            ["router", "bgp", asn] => {
                let asn: u32 = asn
                    .parse()
                    .map_err(|_| self.err(number, &raw, "bad AS number"))?;
                self.recognized += 1;
                self.bgp_section(AsNum(asn))?;
            }
            ["route-map", name, action, seq] => {
                let action = match *action {
                    "permit" => PolicyAction::Permit,
                    "deny" => PolicyAction::Deny,
                    _ => return Err(self.err(number, &raw, "route-map action")),
                };
                let seq: u32 = seq
                    .parse()
                    .map_err(|_| self.err(number, &raw, "route-map seq"))?;
                self.recognized += 1;
                let name = name.to_string();
                self.route_map_section(&name, action, seq)?;
            }
            ["ip", "prefix-list", name, "seq", seq, action, rest @ ..] => {
                self.prefix_list_line(name, seq, action, rest, number, &raw)?;
                self.recognized += 1;
            }
            ["ip", "route", prefix, nh, rest @ ..] => {
                let prefix: Prefix = prefix
                    .parse()
                    .map_err(|_| self.err(number, &raw, "bad static route prefix"))?;
                let next_hop: Ipv4Addr = nh
                    .parse()
                    .map_err(|_| self.err(number, &raw, "bad static route next hop"))?;
                let distance = match rest {
                    [] => None,
                    [d] => Some(
                        d.parse()
                            .map_err(|_| self.err(number, &raw, "bad distance"))?,
                    ),
                    _ => return Err(self.err(number, &raw, "trailing arguments")),
                };
                self.cfg.static_routes.push(StaticRoute {
                    prefix,
                    next_hop,
                    distance,
                });
                self.recognized += 1;
            }
            _ => {
                self.warn(number, &raw, "unrecognized top-level statement");
                // Consume any body so its lines don't become top-level noise.
                let body = self.section_body();
                for b in body {
                    let (n, r) = (self.lines[b].number, self.lines[b].raw.to_string());
                    self.warn(n, &r, "inside unrecognized section");
                }
            }
        }
        Ok(())
    }

    fn interface_section(&mut self, name: &str) -> Result<(), ParseError> {
        let body = self.section_body();
        // Vendor-faithful semantics: collect the whole stanza first, then
        // apply — statement order cannot change the result.
        let iface_idx = {
            self.cfg.ensure_interface(name);
            self.cfg
                .interfaces
                .iter()
                .position(|i| i.name.as_str() == name)
                .unwrap()
        };
        for b in body {
            let (number, raw) = (self.lines[b].number, self.lines[b].raw.to_string());
            let words = self.lines[b].words.clone();
            let iface = &mut self.cfg.interfaces[iface_idx];
            match words.as_slice() {
                ["description", ..] => {
                    let desc = raw.trim_start_matches("description").trim();
                    iface.description = Some(desc.to_string());
                    self.recognized += 1;
                }
                ["ip", "address", addr] => {
                    let a: IfaceAddr = addr.parse().map_err(|_| ParseError {
                        line: number,
                        text: raw.clone(),
                        reason: "bad interface address".into(),
                    })?;
                    iface.addr = Some(a);
                    self.recognized += 1;
                }
                ["no", "switchport"] => {
                    iface.routed = true;
                    self.recognized += 1;
                }
                ["switchport"] => {
                    iface.routed = false;
                    self.recognized += 1;
                }
                ["isis", "enable", instance] => {
                    match &mut iface.isis {
                        Some(i) => i.instance = instance.to_string(),
                        None => iface.isis = Some(IfaceIsis::new(*instance)),
                    }
                    self.recognized += 1;
                }
                ["isis", "metric", m] => {
                    let m: u32 = m.parse().map_err(|_| ParseError {
                        line: number,
                        text: raw.clone(),
                        reason: "bad isis metric".into(),
                    })?;
                    iface
                        .isis
                        .get_or_insert_with(|| IfaceIsis::new("default"))
                        .metric = m;
                    self.recognized += 1;
                }
                ["isis", "passive-interface", instance] => {
                    let isis = iface.isis.get_or_insert_with(|| IfaceIsis::new(*instance));
                    isis.passive = true;
                    self.recognized += 1;
                }
                ["isis", "passive"] => {
                    iface
                        .isis
                        .get_or_insert_with(|| IfaceIsis::new("default"))
                        .passive = true;
                    self.recognized += 1;
                }
                ["mpls", "ip"] => {
                    iface.mpls = true;
                    self.recognized += 1;
                }
                ["shutdown"] => {
                    iface.shutdown = true;
                    self.recognized += 1;
                }
                ["no", "shutdown"] => {
                    iface.shutdown = false;
                    self.recognized += 1;
                }
                ["speed", ..] | ["mtu", ..] | ["load-interval", ..] => {
                    self.recognized += 1;
                }
                _ => {
                    self.warn(number, &raw, "unrecognized interface statement");
                }
            }
        }
        Ok(())
    }

    fn isis_section(&mut self, instance: &str) -> Result<(), ParseError> {
        let body = self.section_body();
        let mut isis = IsisConfig::new(instance, "");
        isis.af_ipv4 = false;
        for b in body {
            let (number, raw) = (self.lines[b].number, self.lines[b].raw.to_string());
            let words = self.lines[b].words.clone();
            match words.as_slice() {
                ["net", net] => {
                    isis.net = net.to_string();
                    self.recognized += 1;
                }
                ["is-type", "level-2"] => {
                    isis.level = IsisLevel::Level2;
                    self.recognized += 1;
                }
                ["is-type", "level-1"] => {
                    isis.level = IsisLevel::Level1;
                    self.recognized += 1;
                }
                ["is-type", "level-1-2"] => {
                    isis.level = IsisLevel::Level1And2;
                    self.recognized += 1;
                }
                ["address-family", "ipv4", "unicast"] => {
                    isis.af_ipv4 = true;
                    self.recognized += 1;
                }
                ["redistribute", "connected"] => {
                    isis.redistribute_connected = true;
                    self.recognized += 1;
                }
                ["metric-style", "wide"] => {
                    isis.wide_metrics = true;
                    self.recognized += 1;
                }
                _ => {
                    self.warn(number, &raw, "unrecognized isis statement");
                }
            }
        }
        if isis.net.is_empty() {
            self.warn(
                0,
                &format!("router isis {instance}"),
                "isis instance has no NET",
            );
        }
        self.cfg.isis = Some(isis);
        Ok(())
    }

    fn bgp_section(&mut self, asn: AsNum) -> Result<(), ParseError> {
        let body = self.section_body();
        let mut bgp = BgpConfig::new(asn);

        fn neighbor(bgp: &mut BgpConfig, peer: Ipv4Addr) -> &mut BgpNeighborConfig {
            if let Some(pos) = bgp.neighbors.iter().position(|n| n.peer == peer) {
                &mut bgp.neighbors[pos]
            } else {
                // Neighbor options may appear before `remote-as`; AS 0 marks
                // "not yet set" and is validated at the end of the stanza.
                bgp.neighbors.push(BgpNeighborConfig::new(peer, AsNum(0)));
                bgp.neighbors.last_mut().unwrap()
            }
        }

        for b in body {
            let (number, raw) = (self.lines[b].number, self.lines[b].raw.to_string());
            let words = self.lines[b].words.clone();
            match words.as_slice() {
                ["router-id", rid] => {
                    let ip: Ipv4Addr = rid
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad router-id"))?;
                    bgp.router_id = Some(RouterId(ip));
                    self.recognized += 1;
                }
                ["maximum-paths", n, ..] => {
                    bgp.max_paths = n
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad maximum-paths"))?;
                    self.recognized += 1;
                }
                ["network", p] => {
                    let p: Prefix = p
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad network prefix"))?;
                    bgp.networks.push(p);
                    self.recognized += 1;
                }
                ["redistribute", proto, rest @ ..] => {
                    let proto = match *proto {
                        "connected" => Redistribute::Connected,
                        "static" => Redistribute::Static,
                        "isis" => Redistribute::Isis,
                        _ => {
                            self.warn(number, &raw, "unrecognized redistribute source");
                            continue;
                        }
                    };
                    let route_map = match rest {
                        [] => None,
                        ["route-map", rm] => Some(rm.to_string()),
                        // `redistribute isis level-2 ...` style qualifiers.
                        _ if proto == Redistribute::Isis && !rest.contains(&"route-map") => None,
                        _ => {
                            self.warn(number, &raw, "unrecognized redistribute options");
                            continue;
                        }
                    };
                    bgp.redistribute.push(BgpRedistribute { proto, route_map });
                    self.recognized += 1;
                }
                ["neighbor", peer, rest @ ..] => {
                    let peer: Ipv4Addr = peer
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad neighbor address"))?;
                    match rest {
                        ["remote-as", ras] => {
                            let ras: u32 = ras
                                .parse()
                                .map_err(|_| self.err(number, &raw, "bad remote-as"))?;
                            neighbor(&mut bgp, peer).remote_as = AsNum(ras);
                        }
                        ["update-source", src] => {
                            neighbor(&mut bgp, peer).update_source = Some((*src).into());
                        }
                        ["next-hop-self"] => {
                            neighbor(&mut bgp, peer).next_hop_self = true;
                        }
                        ["send-community", ..] => {
                            neighbor(&mut bgp, peer).send_community = true;
                        }
                        ["route-map", name, "in"] => {
                            neighbor(&mut bgp, peer).route_map_in = Some(name.to_string());
                        }
                        ["route-map", name, "out"] => {
                            neighbor(&mut bgp, peer).route_map_out = Some(name.to_string());
                        }
                        ["ebgp-multihop", ..] => {
                            neighbor(&mut bgp, peer).ebgp_multihop = true;
                        }
                        ["route-reflector-client"] => {
                            neighbor(&mut bgp, peer).rr_client = true;
                        }
                        ["description", ..] => {
                            let d = raw
                                .splitn(4, char::is_whitespace)
                                .nth(3)
                                .unwrap_or("")
                                .to_string();
                            neighbor(&mut bgp, peer).description = Some(d);
                        }
                        ["shutdown"] => {
                            neighbor(&mut bgp, peer).shutdown = true;
                        }
                        ["maximum-routes", ..] | ["timers", ..] => {
                            // Recognized, default behaviour in emulation.
                        }
                        _ => {
                            self.warn(number, &raw, "unrecognized neighbor statement");
                            continue;
                        }
                    }
                    self.recognized += 1;
                }
                ["address-family", "ipv4"] | ["address-family", "ipv4", "unicast"] => {
                    // Activation statements live here; activation is implicit
                    // in our emulation, so the sub-block is a recognized no-op.
                    self.recognized += 1;
                }
                ["no", "bgp", "default", "ipv4-unicast"] => {
                    self.recognized += 1;
                }
                _ => {
                    self.warn(number, &raw, "unrecognized bgp statement");
                }
            }
        }

        for n in &bgp.neighbors {
            if n.remote_as == AsNum(0) {
                self.warn(
                    0,
                    &format!("neighbor {}", n.peer),
                    "neighbor has no remote-as; session will not form",
                );
            }
        }
        self.cfg.bgp = Some(bgp);
        Ok(())
    }

    fn route_map_section(
        &mut self,
        name: &str,
        action: PolicyAction,
        seq: u32,
    ) -> Result<(), ParseError> {
        let body = self.section_body();
        let mut entry = RouteMapEntry {
            seq,
            action,
            matches: Vec::new(),
            sets: Vec::new(),
        };
        for b in body {
            let (number, raw) = (self.lines[b].number, self.lines[b].raw.to_string());
            let words = self.lines[b].words.clone();
            match words.as_slice() {
                ["match", "ip", "address", "prefix-list", pl] => {
                    entry.matches.push(MatchClause::PrefixList(pl.to_string()));
                    self.recognized += 1;
                }
                ["match", "community", c] => {
                    let c = parse_community(c)
                        .ok_or_else(|| self.err(number, &raw, "bad community"))?;
                    entry.matches.push(MatchClause::Community(c));
                    self.recognized += 1;
                }
                ["match", "as-path", "length", "le", n] => {
                    let n: usize = n
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad as-path length"))?;
                    entry.matches.push(MatchClause::MaxAsPathLen(n));
                    self.recognized += 1;
                }
                ["set", "local-preference", v] => {
                    let v: u32 = v
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad local-preference"))?;
                    entry.sets.push(SetClause::LocalPref(v));
                    self.recognized += 1;
                }
                ["set", "metric", v] | ["set", "med", v] => {
                    let v: u32 = v
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad metric"))?;
                    entry.sets.push(SetClause::Med(v));
                    self.recognized += 1;
                }
                ["set", "community", rest @ ..] => {
                    let additive = rest.last() == Some(&"additive");
                    let comms: Option<Vec<Community>> = rest
                        .iter()
                        .filter(|s| **s != "additive")
                        .map(|s| parse_community(s))
                        .collect();
                    let comms =
                        comms.ok_or_else(|| self.err(number, &raw, "bad community list"))?;
                    entry.sets.push(if additive {
                        SetClause::AddCommunities(comms)
                    } else {
                        SetClause::SetCommunities(comms)
                    });
                    self.recognized += 1;
                }
                ["set", "as-path", "prepend", rest @ ..] => {
                    let asns: Result<Vec<AsNum>, _> =
                        rest.iter().map(|s| s.parse().map(AsNum)).collect();
                    let asns = asns.map_err(|_| self.err(number, &raw, "bad prepend list"))?;
                    entry.sets.push(SetClause::PrependAsPath(asns));
                    self.recognized += 1;
                }
                ["set", "ip", "next-hop", ip] => {
                    let ip: Ipv4Addr = ip
                        .parse()
                        .map_err(|_| self.err(number, &raw, "bad next-hop"))?;
                    entry.sets.push(SetClause::NextHop(ip));
                    self.recognized += 1;
                }
                _ => {
                    self.warn(number, &raw, "unrecognized route-map statement");
                }
            }
        }
        let rm = self.cfg.route_maps.entry(name.to_string()).or_default();
        rm.entries.push(entry);
        rm.entries.sort_by_key(|e| e.seq);
        Ok(())
    }

    fn prefix_list_line(
        &mut self,
        name: &str,
        seq: &str,
        action: &str,
        rest: &[&str],
        number: usize,
        raw: &str,
    ) -> Result<(), ParseError> {
        let seq: u32 = seq
            .parse()
            .map_err(|_| self.err(number, raw, "bad prefix-list seq"))?;
        let action = match action {
            "permit" => PolicyAction::Permit,
            "deny" => PolicyAction::Deny,
            _ => return Err(self.err(number, raw, "prefix-list action")),
        };
        let (prefix, mut ge, mut le) = match rest {
            [p, rest @ ..] => {
                let p: Prefix = p.parse().map_err(|_| self.err(number, raw, "bad prefix"))?;
                let mut ge = None;
                let mut le = None;
                let mut it = rest.iter();
                while let Some(kw) = it.next() {
                    let v = it
                        .next()
                        .ok_or_else(|| self.err(number, raw, "missing bound value"))?;
                    let v: u8 = v.parse().map_err(|_| self.err(number, raw, "bad bound"))?;
                    match *kw {
                        "ge" => ge = Some(v),
                        "le" => le = Some(v),
                        _ => return Err(self.err(number, raw, "unknown bound keyword")),
                    }
                }
                (p, ge, le)
            }
            [] => return Err(self.err(number, raw, "missing prefix")),
        };
        if let (Some(g), Some(l)) = (ge, le) {
            if g > l {
                // The CLI rejects inverted bounds; be forgiving but warn.
                self.warn(number, raw, "ge > le; swapping");
                std::mem::swap(&mut ge, &mut le);
            }
        }
        self.cfg
            .prefix_lists
            .entry(name.to_string())
            .or_default()
            .entries
            .push(PrefixListEntry {
                seq,
                action,
                prefix,
                ge,
                le,
            });
        self.cfg
            .prefix_lists
            .get_mut(name)
            .unwrap()
            .entries
            .sort_by_key(|e| e.seq);
        Ok(())
    }
}

fn parse_community(s: &str) -> Option<Community> {
    let (a, v) = s.split_once(':')?;
    Some(Community::new(a.parse().ok()?, v.parse().ok()?))
}

/// Renders a [`DeviceConfig`] in canonical EOS style. `parse(render(c))`
/// reproduces `c` for configs built through the IR constructors.
pub fn render(cfg: &DeviceConfig) -> String {
    let mut out = String::new();
    let mut push = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };

    push(&format!("hostname {}", cfg.hostname));
    push("!");
    if cfg.ip_routing {
        push("ip routing");
    } else {
        push("no ip routing");
    }
    push("service routing protocols model multi-agent");
    push("!");

    for d in &cfg.mgmt.daemons {
        push(&format!("daemon {d}"));
        push("   no shutdown");
        push("!");
    }
    for api in &cfg.mgmt.apis {
        if api == "ssh" {
            push("management ssh");
            push("   idle-timeout 60");
        } else {
            push(&format!("management api {api}"));
            push("   transport grpc default");
            if let Some(prof) = cfg.mgmt.ssl_profiles.first() {
                push(&format!("   ssl profile {prof}"));
            }
            push("   no shutdown");
        }
        push("!");
    }
    for ntp in &cfg.mgmt.ntp_servers {
        push(&format!("ntp server {ntp}"));
    }
    for lh in &cfg.mgmt.logging_hosts {
        push(&format!("logging host {lh}"));
    }
    if !cfg.mgmt.ntp_servers.is_empty() || !cfg.mgmt.logging_hosts.is_empty() {
        push("!");
    }

    if cfg.mpls.enabled {
        push("mpls ip");
        push("!");
    }
    if cfg.mpls.te_enabled {
        push("router traffic-engineering");
        if let Some(rsvp) = &cfg.mpls.rsvp {
            push(&format!(
                "   rsvp hello-interval {}",
                rsvp.hello_interval_ms
            ));
            push(&format!("   rsvp refresh-time {}", rsvp.refresh_ms));
        }
        push("!");
    }

    for (name, pl) in &cfg.prefix_lists {
        for e in &pl.entries {
            let action = match e.action {
                PolicyAction::Permit => "permit",
                PolicyAction::Deny => "deny",
            };
            let mut line = format!("ip prefix-list {name} seq {} {action} {}", e.seq, e.prefix);
            if let Some(g) = e.ge {
                line.push_str(&format!(" ge {g}"));
            }
            if let Some(l) = e.le {
                line.push_str(&format!(" le {l}"));
            }
            push(&line);
        }
    }
    if !cfg.prefix_lists.is_empty() {
        push("!");
    }

    for (name, rm) in &cfg.route_maps {
        for e in &rm.entries {
            let action = match e.action {
                PolicyAction::Permit => "permit",
                PolicyAction::Deny => "deny",
            };
            push(&format!("route-map {name} {action} {}", e.seq));
            for m in &e.matches {
                match m {
                    MatchClause::PrefixList(pl) => {
                        push(&format!("   match ip address prefix-list {pl}"))
                    }
                    MatchClause::Community(c) => push(&format!("   match community {c}")),
                    MatchClause::MaxAsPathLen(n) => {
                        push(&format!("   match as-path length le {n}"))
                    }
                }
            }
            for s in &e.sets {
                match s {
                    SetClause::LocalPref(v) => push(&format!("   set local-preference {v}")),
                    SetClause::Med(v) => push(&format!("   set metric {v}")),
                    SetClause::AddCommunities(cs) => {
                        let cs: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                        push(&format!("   set community {} additive", cs.join(" ")));
                    }
                    SetClause::SetCommunities(cs) => {
                        let cs: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                        push(&format!("   set community {}", cs.join(" ")));
                    }
                    SetClause::PrependAsPath(asns) => {
                        let asns: Vec<String> = asns.iter().map(|a| a.0.to_string()).collect();
                        push(&format!("   set as-path prepend {}", asns.join(" ")));
                    }
                    SetClause::NextHop(ip) => push(&format!("   set ip next-hop {ip}")),
                }
            }
            push("!");
        }
    }

    for iface in &cfg.interfaces {
        push(&format!("interface {}", iface.name));
        if let Some(d) = &iface.description {
            push(&format!("   description {d}"));
        }
        if iface.routed && !iface.name.is_loopback() {
            push("   no switchport");
        }
        if let Some(a) = &iface.addr {
            push(&format!("   ip address {a}"));
        }
        if let Some(isis) = &iface.isis {
            push(&format!("   isis enable {}", isis.instance));
            if isis.passive {
                push(&format!("   isis passive-interface {}", isis.instance));
            }
            if isis.metric != 10 {
                push(&format!("   isis metric {}", isis.metric));
            }
        }
        if iface.mpls {
            push("   mpls ip");
        }
        if iface.shutdown {
            push("   shutdown");
        }
        push("!");
    }

    if let Some(isis) = &cfg.isis {
        push(&format!("router isis {}", isis.instance));
        push(&format!("   net {}", isis.net));
        match isis.level {
            IsisLevel::Level1 => push("   is-type level-1"),
            IsisLevel::Level2 => push("   is-type level-2"),
            IsisLevel::Level1And2 => push("   is-type level-1-2"),
        }
        if isis.redistribute_connected {
            push("   redistribute connected");
        }
        if isis.af_ipv4 {
            push("   address-family ipv4 unicast");
        }
        push("!");
    }

    for sr in &cfg.static_routes {
        match sr.distance {
            Some(d) => push(&format!("ip route {} {} {}", sr.prefix, sr.next_hop, d)),
            None => push(&format!("ip route {} {}", sr.prefix, sr.next_hop)),
        }
    }
    if !cfg.static_routes.is_empty() {
        push("!");
    }

    if let Some(bgp) = &cfg.bgp {
        push(&format!("router bgp {}", bgp.asn));
        if let Some(rid) = bgp.router_id {
            push(&format!("   router-id {rid}"));
        }
        if bgp.max_paths > 1 {
            push(&format!("   maximum-paths {}", bgp.max_paths));
        }
        for n in &bgp.neighbors {
            push(&format!("   neighbor {} remote-as {}", n.peer, n.remote_as));
            if let Some(d) = &n.description {
                push(&format!("   neighbor {} description {d}", n.peer));
            }
            if let Some(src) = &n.update_source {
                push(&format!("   neighbor {} update-source {src}", n.peer));
            }
            if n.next_hop_self {
                push(&format!("   neighbor {} next-hop-self", n.peer));
            }
            if n.send_community {
                push(&format!("   neighbor {} send-community", n.peer));
            }
            if let Some(rm) = &n.route_map_in {
                push(&format!("   neighbor {} route-map {rm} in", n.peer));
            }
            if let Some(rm) = &n.route_map_out {
                push(&format!("   neighbor {} route-map {rm} out", n.peer));
            }
            if n.ebgp_multihop {
                push(&format!("   neighbor {} ebgp-multihop 4", n.peer));
            }
            if n.rr_client {
                push(&format!("   neighbor {} route-reflector-client", n.peer));
            }
            if n.shutdown {
                push(&format!("   neighbor {} shutdown", n.peer));
            }
        }
        for net in &bgp.networks {
            push(&format!("   network {net}"));
        }
        for r in &bgp.redistribute {
            let proto = match r.proto {
                Redistribute::Connected => "connected",
                Redistribute::Static => "static",
                Redistribute::Isis => "isis",
            };
            match &r.route_map {
                Some(rm) => push(&format!("   redistribute {proto} route-map {rm}")),
                None => push(&format!("   redistribute {proto}")),
            }
        }
        push("!");
    }

    push("end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_types::IfaceId;

    /// The paper's Fig. 3 Router 1 snippet, verbatim (minus inline comments).
    const FIG3: &str = "\
router isis default
   net 49.0001.1010.1040.1030.00
   address-family ipv4 unicast
!
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive-interface default
!
interface Ethernet2
   ip address 100.64.0.1/31
   no switchport
   isis enable default
!
";

    #[test]
    fn parses_fig3_faithfully() {
        let parsed = parse(FIG3).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        let cfg = parsed.config;

        let isis = cfg.isis.as_ref().unwrap();
        assert_eq!(isis.instance, "default");
        assert_eq!(isis.net, "49.0001.1010.1040.1030.00");
        assert!(isis.af_ipv4);

        let lo = cfg.interface(&IfaceId::from("Loopback0")).unwrap();
        assert_eq!(lo.addr.unwrap().to_string(), "2.2.2.1/32");
        assert!(lo.isis.as_ref().unwrap().passive);
        assert!(lo.is_l3(), "loopback is L3 without `no switchport`");

        let e2 = cfg.interface(&IfaceId::from("Ethernet2")).unwrap();
        assert_eq!(e2.addr.unwrap().to_string(), "100.64.0.1/31");
        assert!(e2.routed);
        assert!(e2.is_l3());
        assert_eq!(e2.isis.as_ref().unwrap().instance, "default");
        assert!(!e2.isis.as_ref().unwrap().passive);
    }

    #[test]
    fn statement_order_does_not_matter() {
        // The vendor accepts `ip address` before `no switchport` (paper
        // model issue #1 is the *model* getting this wrong).
        let a = parse("interface Ethernet2\n   ip address 100.64.0.1/31\n   no switchport\n!\n")
            .unwrap();
        let b = parse("interface Ethernet2\n   no switchport\n   ip address 100.64.0.1/31\n!\n")
            .unwrap();
        assert_eq!(a.config, b.config);
        assert!(a.config.interfaces[0].is_l3());
    }

    #[test]
    fn unknown_statements_warn_but_do_not_corrupt() {
        let text = "\
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   ip router isis default
!
";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.warnings.len(), 1);
        assert!(parsed.warnings[0].text.contains("ip router isis"));
        let iface = &parsed.config.interfaces[0];
        assert!(iface.is_l3());
        // The IOS-style syntax did NOT enable IS-IS — the E6 scenario.
        assert!(iface.isis.is_none());
    }

    #[test]
    fn parses_bgp_stanza() {
        let text = "\
router bgp 65001
   router-id 2.2.2.1
   maximum-paths 4 ecmp 4
   neighbor 100.64.0.0 remote-as 65002
   neighbor 100.64.0.0 send-community
   neighbor 100.64.0.0 route-map IMPORT in
   neighbor 2.2.2.3 remote-as 65001
   neighbor 2.2.2.3 update-source Loopback0
   neighbor 2.2.2.3 next-hop-self
   network 2.2.2.1/32
   redistribute connected
!
";
        let parsed = parse(text).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        let bgp = parsed.config.bgp.unwrap();
        assert_eq!(bgp.asn, AsNum(65001));
        assert_eq!(bgp.max_paths, 4);
        assert_eq!(bgp.neighbors.len(), 2);
        let ext = bgp.neighbor("100.64.0.0".parse().unwrap()).unwrap();
        assert_eq!(ext.remote_as, AsNum(65002));
        assert!(ext.send_community);
        assert_eq!(ext.route_map_in.as_deref(), Some("IMPORT"));
        let int = bgp.neighbor("2.2.2.3".parse().unwrap()).unwrap();
        assert_eq!(int.update_source, Some(IfaceId::from("Loopback0")));
        assert!(int.next_hop_self);
        assert_eq!(bgp.networks, vec!["2.2.2.1/32".parse().unwrap()]);
        assert_eq!(
            bgp.redistribute,
            vec![BgpRedistribute::unfiltered(Redistribute::Connected)]
        );
    }

    #[test]
    fn redistribute_route_map_round_trips() {
        let text = "\
router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
   redistribute connected route-map INFRA-OUT
   redistribute static
!
";
        let parsed = parse(text).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        let bgp = parsed.config.bgp.as_ref().unwrap();
        assert_eq!(
            bgp.redistribute,
            vec![
                BgpRedistribute::policed(Redistribute::Connected, "INFRA-OUT"),
                BgpRedistribute::unfiltered(Redistribute::Static),
            ]
        );
        let text2 = render(&parsed.config);
        assert!(text2.contains("redistribute connected route-map INFRA-OUT"));
        let reparsed = parse(&text2).unwrap();
        assert_eq!(reparsed.config.bgp.unwrap().redistribute, bgp.redistribute);
    }

    #[test]
    fn neighbor_options_before_remote_as_warn() {
        let text = "\
router bgp 65001
   neighbor 10.0.0.1 next-hop-self
!
";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.warnings.len(), 1);
        assert!(parsed.warnings[0].reason.contains("remote-as"));
    }

    #[test]
    fn parses_route_map_and_prefix_list() {
        let text = "\
ip prefix-list CUSTOMER seq 10 permit 203.0.113.0/24 le 28
ip prefix-list CUSTOMER seq 20 deny 0.0.0.0/0 le 32
!
route-map IMPORT permit 10
   match ip address prefix-list CUSTOMER
   set local-preference 200
   set community 65001:100 additive
!
route-map IMPORT deny 20
!
";
        let parsed = parse(text).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        let cfg = parsed.config;
        let pl = &cfg.prefix_lists["CUSTOMER"];
        assert_eq!(pl.entries.len(), 2);
        assert!(pl.permits(&"203.0.113.0/26".parse().unwrap()));
        assert!(!pl.permits(&"8.8.8.0/24".parse().unwrap()));
        let rm = &cfg.route_maps["IMPORT"];
        assert_eq!(rm.entries.len(), 2);
        assert_eq!(rm.entries[0].seq, 10);
        assert_eq!(rm.entries[1].action, PolicyAction::Deny);
    }

    #[test]
    fn parses_static_routes_and_mgmt() {
        let text = "\
hostname edge1
daemon TerminAttr
   exec /usr/bin/TerminAttr
   no shutdown
!
management api gnmi
   transport grpc default
   ssl profile ACME
   no shutdown
!
ntp server 192.0.2.123
ip route 0.0.0.0/0 100.64.0.0
ip route 198.51.100.0/24 100.64.0.0 250
";
        let parsed = parse(text).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        let cfg = parsed.config;
        assert_eq!(cfg.hostname, "edge1");
        assert_eq!(cfg.mgmt.daemons, vec!["TerminAttr"]);
        assert_eq!(cfg.mgmt.apis, vec!["gnmi"]);
        assert_eq!(cfg.mgmt.ssl_profiles, vec!["ACME"]);
        assert_eq!(cfg.static_routes.len(), 2);
        assert_eq!(cfg.static_routes[1].distance, Some(250));
    }

    #[test]
    fn parses_mpls_te() {
        let text = "\
mpls ip
!
router traffic-engineering
   rsvp hello-interval 3000
   rsvp refresh-time 15000
!
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   mpls ip
!
";
        let parsed = parse(text).unwrap();
        assert!(parsed.warnings.is_empty());
        let cfg = parsed.config;
        assert!(cfg.mpls.enabled);
        assert!(cfg.mpls.te_enabled);
        let rsvp = cfg.mpls.rsvp.unwrap();
        assert_eq!(rsvp.hello_interval_ms, 3000);
        assert_eq!(rsvp.refresh_ms, 15000);
        assert!(cfg.interfaces[0].mpls);
    }

    #[test]
    fn recognized_line_accounting() {
        let text = "\
hostname r1
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   frobnicate maximum
!
";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.total_lines, 5);
        assert_eq!(parsed.recognized_lines, 4);
        assert_eq!(parsed.warnings.len(), 1);
    }

    #[test]
    fn malformed_values_are_fatal() {
        assert!(parse("interface Ethernet1\n   ip address banana\n").is_err());
        assert!(parse("router bgp notanumber\n").is_err());
        assert!(parse("ip route 10.0.0.0/8 nothop\n").is_err());
    }

    #[test]
    fn render_parse_roundtrip_fig2_style() {
        let mut cfg = DeviceConfig::new("r1", Vendor::Ceos);
        cfg.mgmt.daemons.push("TerminAttr".into());
        cfg.mgmt.apis.push("gnmi".into());
        cfg.mgmt.ssl_profiles.push("ACME".into());
        let lo = cfg.ensure_interface("Loopback0");
        lo.addr = Some("2.2.2.1/32".parse().unwrap());
        lo.isis = Some(IfaceIsis {
            instance: "default".into(),
            metric: 10,
            passive: true,
        });
        let e1 = cfg.ensure_interface("Ethernet1");
        e1.addr = Some("10.0.0.1/31".parse().unwrap());
        e1.routed = true;
        e1.isis = Some(IfaceIsis::new("default"));
        cfg.isis = Some(IsisConfig::new("default", "49.0001.0000.0000.0001.00"));
        let mut bgp = BgpConfig::new(AsNum(65001));
        bgp.neighbors.push(BgpNeighborConfig::new(
            "10.0.0.0".parse().unwrap(),
            AsNum(65002),
        ));
        bgp.networks.push("2.2.2.1/32".parse().unwrap());
        cfg.bgp = Some(bgp);

        let text = render(&cfg);
        let back = parse(&text).unwrap();
        assert!(back.warnings.is_empty(), "{:?}", back.warnings);
        assert_eq!(back.config, cfg);
    }
}
