//! Vendor-neutral device configuration IR.
//!
//! Both vendor dialect parsers ([`crate::ceos`], [`crate::vjunos`]) produce a
//! [`DeviceConfig`]; the vendor router implementations in `mfv-vrouter`
//! consume it. The IR deliberately captures *more* than any network model
//! supports — management daemons, MPLS/TE, SSL profiles — because the paper's
//! E2 experiment is about exactly those unmodeled-but-present features.

use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use mfv_types::{AsNum, Community, IfaceAddr, IfaceId, Prefix, RouterId};

/// Which vendor dialect a config was written in / should render to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Vendor {
    /// EOS-like industry-standard CLI (sectioned, `!`-separated).
    Ceos,
    /// Junos-like hierarchical curly-brace configuration.
    Vjunos,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Ceos => f.write_str("ceos"),
            Vendor::Vjunos => f.write_str("vjunos"),
        }
    }
}

/// Per-interface IS-IS settings.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IfaceIsis {
    /// IS-IS instance this interface participates in.
    pub instance: String,
    /// Interface metric (vendor default 10).
    pub metric: u32,
    /// Passive interfaces are advertised but form no adjacencies.
    pub passive: bool,
}

impl IfaceIsis {
    pub fn new(instance: impl Into<String>) -> IfaceIsis {
        IfaceIsis {
            instance: instance.into(),
            metric: 10,
            passive: false,
        }
    }
}

/// One interface stanza.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InterfaceConfig {
    pub name: IfaceId,
    pub description: Option<String>,
    /// IPv4 address, if configured.
    pub addr: Option<IfaceAddr>,
    /// `no switchport` on EOS — the interface operates at layer 3. On the
    /// real vendor this is independent of statement order; the model-based
    /// baseline famously assumes otherwise (paper Fig. 3, issue #1).
    pub routed: bool,
    pub isis: Option<IfaceIsis>,
    /// `mpls ip` — label switching enabled on this interface.
    pub mpls: bool,
    pub shutdown: bool,
}

impl InterfaceConfig {
    pub fn new(name: impl Into<IfaceId>) -> InterfaceConfig {
        InterfaceConfig {
            name: name.into(),
            description: None,
            addr: None,
            routed: false,
            isis: None,
            mpls: false,
            shutdown: false,
        }
    }

    /// Is this interface usable for L3 forwarding? Loopbacks are always
    /// routed; physical ports need `no switchport` (EOS) or `family inet`
    /// (Junos, where `routed` is implied by having an address).
    pub fn is_l3(&self) -> bool {
        !self.shutdown && self.addr.is_some() && (self.routed || self.name.is_loopback())
    }
}

/// IS-IS level (we model L2-only and L1L2 as the common WAN cases).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum IsisLevel {
    Level1,
    Level2,
    Level1And2,
}

/// `router isis <instance>` stanza.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IsisConfig {
    pub instance: String,
    /// ISO Network Entity Title, e.g. `49.0001.1010.1040.1030.00`.
    pub net: String,
    pub level: IsisLevel,
    /// `address-family ipv4 unicast` present.
    pub af_ipv4: bool,
    pub redistribute_connected: bool,
    /// Junos `wide-metrics-only` / EOS `metric-style wide`.
    pub wide_metrics: bool,
}

impl IsisConfig {
    pub fn new(instance: impl Into<String>, net: impl Into<String>) -> IsisConfig {
        IsisConfig {
            instance: instance.into(),
            net: net.into(),
            level: IsisLevel::Level2,
            af_ipv4: true,
            redistribute_connected: false,
            wide_metrics: true,
        }
    }

    /// The system-id portion of the NET (the 6 bytes before the selector).
    pub fn system_id(&self) -> Option<String> {
        let parts: Vec<&str> = self.net.split('.').collect();
        if parts.len() < 4 {
            return None;
        }
        Some(parts[parts.len() - 4..parts.len() - 1].join("."))
    }

    /// The area portion of the NET (everything before the system-id).
    pub fn area(&self) -> Option<String> {
        let parts: Vec<&str> = self.net.split('.').collect();
        let n = parts.len().checked_sub(4)?;
        if n == 0 {
            return None;
        }
        Some(parts.get(..n)?.join("."))
    }
}

/// A BGP neighbor statement.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BgpNeighborConfig {
    pub peer: Ipv4Addr,
    pub remote_as: AsNum,
    pub description: Option<String>,
    /// Source loopback for iBGP sessions.
    pub update_source: Option<IfaceId>,
    pub next_hop_self: bool,
    pub send_community: bool,
    /// Route-map applied to routes received from this peer.
    pub route_map_in: Option<String>,
    /// Route-map applied to routes advertised to this peer.
    pub route_map_out: Option<String>,
    /// Allow eBGP sessions between non-adjacent addresses.
    pub ebgp_multihop: bool,
    /// Route-reflector client (iBGP only).
    pub rr_client: bool,
    pub shutdown: bool,
}

impl BgpNeighborConfig {
    pub fn new(peer: Ipv4Addr, remote_as: AsNum) -> BgpNeighborConfig {
        BgpNeighborConfig {
            peer,
            remote_as,
            description: None,
            update_source: None,
            next_hop_self: false,
            send_community: true,
            route_map_in: None,
            route_map_out: None,
            ebgp_multihop: false,
            rr_client: false,
            shutdown: false,
        }
    }
}

/// Protocols whose routes can be redistributed into BGP.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Redistribute {
    Connected,
    Static,
    Isis,
}

/// One `redistribute <proto> [route-map <name>]` statement under
/// `router bgp`. Redistribution without an attached route-map injects the
/// whole source table unfiltered (conflint rule C7 flags that).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BgpRedistribute {
    pub proto: Redistribute,
    pub route_map: Option<String>,
}

impl BgpRedistribute {
    pub fn unfiltered(proto: Redistribute) -> BgpRedistribute {
        BgpRedistribute {
            proto,
            route_map: None,
        }
    }

    pub fn policed(proto: Redistribute, route_map: &str) -> BgpRedistribute {
        BgpRedistribute {
            proto,
            route_map: Some(route_map.to_string()),
        }
    }
}

/// `router bgp <asn>` stanza.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BgpConfig {
    pub asn: AsNum,
    pub router_id: Option<RouterId>,
    pub neighbors: Vec<BgpNeighborConfig>,
    /// `network` statements: prefixes originated by this router.
    pub networks: Vec<Prefix>,
    pub redistribute: Vec<BgpRedistribute>,
    /// ECMP width (`maximum-paths`).
    pub max_paths: u8,
}

impl BgpConfig {
    pub fn new(asn: AsNum) -> BgpConfig {
        BgpConfig {
            asn,
            router_id: None,
            neighbors: Vec::new(),
            networks: Vec::new(),
            redistribute: Vec::new(),
            max_paths: 1,
        }
    }

    pub fn neighbor(&self, peer: Ipv4Addr) -> Option<&BgpNeighborConfig> {
        self.neighbors.iter().find(|n| n.peer == peer)
    }
}

/// A static route.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StaticRoute {
    pub prefix: Prefix,
    pub next_hop: Ipv4Addr,
    /// Administrative distance override (default 1).
    pub distance: Option<u8>,
}

/// Route-map / policy-statement action.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PolicyAction {
    Permit,
    Deny,
}

/// A match clause inside a route-map entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MatchClause {
    /// `match ip address prefix-list NAME`
    PrefixList(String),
    /// `match community <community>` (single literal community for
    /// simplicity; community-lists expand to one clause each).
    Community(Community),
    /// `match as-path length <= N` style guard.
    MaxAsPathLen(usize),
}

/// A set clause inside a route-map entry.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SetClause {
    LocalPref(u32),
    Med(u32),
    /// Add communities (additive).
    AddCommunities(Vec<Community>),
    /// Replace communities.
    SetCommunities(Vec<Community>),
    PrependAsPath(Vec<AsNum>),
    NextHop(Ipv4Addr),
}

/// One sequenced entry of a route-map.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RouteMapEntry {
    pub seq: u32,
    pub action: PolicyAction,
    pub matches: Vec<MatchClause>,
    pub sets: Vec<SetClause>,
}

/// A named routing policy (`route-map` / `policy-statement`).
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RouteMap {
    pub entries: Vec<RouteMapEntry>,
}

/// One line of a prefix-list.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PrefixListEntry {
    pub seq: u32,
    pub action: PolicyAction,
    pub prefix: Prefix,
    /// `ge` bound: minimum matched length.
    pub ge: Option<u8>,
    /// `le` bound: maximum matched length.
    pub le: Option<u8>,
}

impl PrefixListEntry {
    /// Does `p` match this entry? Standard semantics: `p` must be covered by
    /// `prefix`, with length within `[ge.unwrap_or(prefix.len), le.unwrap_or
    /// (ge or prefix.len)]`; with neither bound, exact length match.
    pub fn matches(&self, p: &Prefix) -> bool {
        if !self.prefix.covers(p) {
            return false;
        }
        let lo = self.ge.unwrap_or(self.prefix.len());
        let hi = self.le.unwrap_or(if self.ge.is_some() {
            32
        } else {
            self.prefix.len()
        });
        p.len() >= lo && p.len() <= hi
    }
}

/// A named prefix-list.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct PrefixList {
    pub entries: Vec<PrefixListEntry>,
}

impl PrefixList {
    /// First-match evaluation; implicit deny.
    pub fn permits(&self, p: &Prefix) -> bool {
        for e in &self.entries {
            if e.matches(p) {
                return e.action == PolicyAction::Permit;
            }
        }
        false
    }
}

/// MPLS / traffic-engineering configuration. The Batfish-style model has no
/// support for any of this (paper §5, E2): the real vendor accepts it and it
/// materially changes forwarding when TE tunnels are up.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MplsConfig {
    /// Global `mpls ip` toggle.
    pub enabled: bool,
    /// `router traffic-engineering` / `protocols mpls` present.
    pub te_enabled: bool,
    /// RSVP signalling settings (hello interval in ms, refresh in ms).
    pub rsvp: Option<RsvpConfig>,
}

/// RSVP-TE signalling timers; vendors disagree about defaults, which the
/// paper cites as a source of cross-vendor reconvergence bugs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RsvpConfig {
    pub hello_interval_ms: u32,
    pub refresh_ms: u32,
}

impl Default for RsvpConfig {
    fn default() -> Self {
        RsvpConfig {
            hello_interval_ms: 9_000,
            refresh_ms: 30_000,
        }
    }
}

/// Management-plane features: daemons and services that exist on real
/// devices, matter to operations, and are invisible to network models.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MgmtConfig {
    /// Enabled management daemons (PowerManager, LedPolicy, Thermostat, …).
    pub daemons: Vec<String>,
    /// Enabled management APIs (gnmi, grpc, netconf, ssh, …).
    pub apis: Vec<String>,
    /// Named SSL profiles referenced by the APIs.
    pub ssl_profiles: Vec<String>,
    /// NTP servers.
    pub ntp_servers: Vec<Ipv4Addr>,
    /// Syslog hosts.
    pub logging_hosts: Vec<Ipv4Addr>,
}

/// A complete parsed device configuration.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct DeviceConfig {
    pub hostname: String,
    pub vendor: Vendor,
    /// `ip routing` — L3 forwarding enabled (EOS default off, we default on).
    pub ip_routing: bool,
    pub interfaces: Vec<InterfaceConfig>,
    pub isis: Option<IsisConfig>,
    pub bgp: Option<BgpConfig>,
    pub static_routes: Vec<StaticRoute>,
    pub mpls: MplsConfig,
    pub mgmt: MgmtConfig,
    pub route_maps: BTreeMap<String, RouteMap>,
    pub prefix_lists: BTreeMap<String, PrefixList>,
}

impl DeviceConfig {
    pub fn new(hostname: impl Into<String>, vendor: Vendor) -> DeviceConfig {
        DeviceConfig {
            hostname: hostname.into(),
            vendor,
            ip_routing: true,
            interfaces: Vec::new(),
            isis: None,
            bgp: None,
            static_routes: Vec::new(),
            mpls: MplsConfig::default(),
            mgmt: MgmtConfig::default(),
            route_maps: BTreeMap::new(),
            prefix_lists: BTreeMap::new(),
        }
    }

    pub fn interface(&self, name: &IfaceId) -> Option<&InterfaceConfig> {
        self.interfaces.iter().find(|i| &i.name == name)
    }

    pub fn interface_mut(&mut self, name: &IfaceId) -> Option<&mut InterfaceConfig> {
        self.interfaces.iter_mut().find(|i| &i.name == name)
    }

    /// Finds (or appends) the interface stanza with `name`.
    pub fn ensure_interface(&mut self, name: impl Into<IfaceId>) -> &mut InterfaceConfig {
        let name = name.into();
        if let Some(pos) = self.interfaces.iter().position(|i| i.name == name) {
            &mut self.interfaces[pos]
        } else {
            self.interfaces.push(InterfaceConfig::new(name));
            self.interfaces.last_mut().unwrap()
        }
    }

    /// The router's loopback /32, used as router-id and BGP update source.
    pub fn loopback_addr(&self) -> Option<Ipv4Addr> {
        self.interfaces
            .iter()
            .find(|i| i.name.is_loopback())
            .and_then(|i| i.addr.map(|a| a.addr))
    }

    /// Effective BGP router-id: explicit, else loopback, else highest
    /// interface address (vendor convention).
    pub fn effective_router_id(&self) -> Option<RouterId> {
        if let Some(bgp) = &self.bgp {
            if let Some(rid) = bgp.router_id {
                return Some(rid);
            }
        }
        if let Some(lo) = self.loopback_addr() {
            return Some(RouterId(lo));
        }
        self.interfaces
            .iter()
            .filter_map(|i| i.addr.map(|a| a.addr))
            .max()
            .map(RouterId)
    }

    /// All connected subnets on operational L3 interfaces.
    pub fn connected_subnets(&self) -> Vec<(IfaceId, Prefix)> {
        self.interfaces
            .iter()
            .filter(|i| i.is_l3())
            .filter_map(|i| i.addr.map(|a| (i.name.clone(), a.subnet())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn iface_l3_requires_routed_or_loopback() {
        let mut i = InterfaceConfig::new("Ethernet1");
        i.addr = Some("10.0.0.1/31".parse().unwrap());
        assert!(!i.is_l3(), "switchport interface is not L3");
        i.routed = true;
        assert!(i.is_l3());
        i.shutdown = true;
        assert!(!i.is_l3());

        let mut lo = InterfaceConfig::new("Loopback0");
        lo.addr = Some("2.2.2.1/32".parse().unwrap());
        assert!(lo.is_l3(), "loopbacks are implicitly routed");
    }

    #[test]
    fn effective_router_id_prefers_explicit_then_loopback() {
        let mut cfg = DeviceConfig::new("r1", Vendor::Ceos);
        let eth = cfg.ensure_interface("Ethernet1");
        eth.addr = Some("10.0.0.9/31".parse().unwrap());
        eth.routed = true;
        assert_eq!(
            cfg.effective_router_id(),
            Some(RouterId(Ipv4Addr::new(10, 0, 0, 9)))
        );

        let lo = cfg.ensure_interface("Loopback0");
        lo.addr = Some("2.2.2.1/32".parse().unwrap());
        assert_eq!(
            cfg.effective_router_id(),
            Some(RouterId(Ipv4Addr::new(2, 2, 2, 1)))
        );

        let mut bgp = BgpConfig::new(AsNum(65000));
        bgp.router_id = Some(RouterId(Ipv4Addr::new(9, 9, 9, 9)));
        cfg.bgp = Some(bgp);
        assert_eq!(
            cfg.effective_router_id(),
            Some(RouterId(Ipv4Addr::new(9, 9, 9, 9)))
        );
    }

    #[test]
    fn connected_subnets_skips_non_l3() {
        let mut cfg = DeviceConfig::new("r1", Vendor::Ceos);
        let e1 = cfg.ensure_interface("Ethernet1");
        e1.addr = Some("10.0.0.1/31".parse().unwrap());
        e1.routed = true;
        let e2 = cfg.ensure_interface("Ethernet2");
        e2.addr = Some("10.0.0.3/31".parse().unwrap());
        // Ethernet2 left as switchport: excluded.
        let subnets = cfg.connected_subnets();
        assert_eq!(subnets.len(), 1);
        assert_eq!(subnets[0].1, pfx("10.0.0.0/31"));
    }

    #[test]
    fn prefix_list_exact_match_semantics() {
        let e = PrefixListEntry {
            seq: 10,
            action: PolicyAction::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: None,
            le: None,
        };
        assert!(e.matches(&pfx("10.0.0.0/8")));
        assert!(!e.matches(&pfx("10.1.0.0/16")), "no bounds → exact length");
    }

    #[test]
    fn prefix_list_le_ge_bounds() {
        let e = PrefixListEntry {
            seq: 10,
            action: PolicyAction::Permit,
            prefix: pfx("10.0.0.0/8"),
            ge: Some(16),
            le: Some(24),
        };
        assert!(!e.matches(&pfx("10.0.0.0/8")));
        assert!(e.matches(&pfx("10.1.0.0/16")));
        assert!(e.matches(&pfx("10.1.2.0/24")));
        assert!(!e.matches(&pfx("10.1.2.128/25")));
        assert!(!e.matches(&pfx("11.0.0.0/16")), "must be covered");
    }

    #[test]
    fn prefix_list_le_only() {
        let e = PrefixListEntry {
            seq: 10,
            action: PolicyAction::Permit,
            prefix: pfx("0.0.0.0/0"),
            ge: None,
            le: Some(24),
        };
        assert!(e.matches(&pfx("10.0.0.0/8")));
        assert!(e.matches(&pfx("0.0.0.0/0")));
        assert!(!e.matches(&pfx("10.0.0.0/25")));
    }

    #[test]
    fn prefix_list_first_match_wins() {
        let pl = PrefixList {
            entries: vec![
                PrefixListEntry {
                    seq: 5,
                    action: PolicyAction::Deny,
                    prefix: pfx("10.13.0.0/16"),
                    ge: None,
                    le: Some(32),
                },
                PrefixListEntry {
                    seq: 10,
                    action: PolicyAction::Permit,
                    prefix: pfx("10.0.0.0/8"),
                    ge: None,
                    le: Some(32),
                },
            ],
        };
        assert!(!pl.permits(&pfx("10.13.1.0/24")), "deny seq 5 first");
        assert!(pl.permits(&pfx("10.14.1.0/24")));
        assert!(!pl.permits(&pfx("192.168.0.0/16")), "implicit deny");
    }

    #[test]
    fn isis_system_id_extraction() {
        let isis = IsisConfig::new("default", "49.0001.1010.1040.1030.00");
        assert_eq!(isis.system_id().unwrap(), "1010.1040.1030");
    }

    #[test]
    fn ensure_interface_is_idempotent() {
        let mut cfg = DeviceConfig::new("r1", Vendor::Ceos);
        cfg.ensure_interface("Ethernet1").description = Some("first".into());
        cfg.ensure_interface("Ethernet1").mpls = true;
        assert_eq!(cfg.interfaces.len(), 1);
        let i = cfg.interface(&IfaceId::from("Ethernet1")).unwrap();
        assert_eq!(i.description.as_deref(), Some("first"));
        assert!(i.mpls);
    }
}
