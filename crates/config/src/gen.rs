//! Configuration generators.
//!
//! Builds realistic device configurations from compact logical specs. Two
//! layers of realism are available:
//!
//! - the bare routing payload (interfaces, IS-IS, BGP) — comparable to the
//!   62–82-line configs of the paper's Fig. 2 network, and
//! - "production complexity": management daemons, APIs, SSL profiles, MPLS
//!   and TE stanzas — the feature surface that real devices carry and network
//!   models cannot parse (experiment E2).

use std::net::Ipv4Addr;

use mfv_types::{AsNum, IfaceAddr, Prefix};

use crate::ir::*;

/// Logical description of one interface.
#[derive(Clone, Debug)]
pub struct IfaceSpec {
    pub name: String,
    pub addr: IfaceAddr,
    /// Enable IS-IS on this interface.
    pub isis: bool,
    pub isis_metric: u32,
    pub description: Option<String>,
}

impl IfaceSpec {
    pub fn new(name: impl Into<String>, addr: IfaceAddr) -> IfaceSpec {
        IfaceSpec {
            name: name.into(),
            addr,
            isis: false,
            isis_metric: 10,
            description: None,
        }
    }

    pub fn with_isis(mut self) -> IfaceSpec {
        self.isis = true;
        self
    }

    pub fn with_metric(mut self, m: u32) -> IfaceSpec {
        self.isis = true;
        self.isis_metric = m;
        self
    }

    pub fn described(mut self, d: impl Into<String>) -> IfaceSpec {
        self.description = Some(d.into());
        self
    }
}

/// Logical description of one router, lowered to a [`DeviceConfig`].
#[derive(Clone, Debug)]
pub struct RouterSpec {
    pub name: String,
    pub vendor: Vendor,
    pub asn: AsNum,
    /// Loopback /32; also the router-id and iBGP source.
    pub loopback: Ipv4Addr,
    pub ifaces: Vec<IfaceSpec>,
    /// eBGP sessions: (local interface address peer, remote AS).
    pub ebgp: Vec<(Ipv4Addr, AsNum)>,
    /// iBGP sessions to peer loopbacks (update-source Loopback0,
    /// next-hop-self).
    pub ibgp: Vec<Ipv4Addr>,
    /// iBGP sessions where the peer is our route-reflector client.
    pub ibgp_rr_clients: Vec<Ipv4Addr>,
    /// Prefixes originated into BGP via `network` statements.
    pub networks: Vec<Prefix>,
    /// Redistribute connected into BGP.
    pub redistribute_connected: bool,
    /// IS-IS area (two-digit hex-ish string used in the NET).
    pub isis_area: String,
    /// Add management daemons/APIs and MPLS/TE stanzas.
    pub production_complexity: bool,
}

impl RouterSpec {
    pub fn new(name: impl Into<String>, asn: AsNum, loopback: Ipv4Addr) -> RouterSpec {
        RouterSpec {
            name: name.into(),
            vendor: Vendor::Ceos,
            asn,
            loopback,
            ifaces: Vec::new(),
            ebgp: Vec::new(),
            ibgp: Vec::new(),
            ibgp_rr_clients: Vec::new(),
            networks: Vec::new(),
            redistribute_connected: false,
            isis_area: "49.0001".to_string(),
            production_complexity: false,
        }
    }

    pub fn vendor(mut self, v: Vendor) -> RouterSpec {
        self.vendor = v;
        self
    }

    pub fn iface(mut self, spec: IfaceSpec) -> RouterSpec {
        self.ifaces.push(spec);
        self
    }

    pub fn ebgp(mut self, peer: Ipv4Addr, remote_as: AsNum) -> RouterSpec {
        self.ebgp.push((peer, remote_as));
        self
    }

    pub fn ibgp(mut self, peer_loopback: Ipv4Addr) -> RouterSpec {
        self.ibgp.push(peer_loopback);
        self
    }

    /// An iBGP session where the peer is treated as our route-reflector
    /// client (we reflect routes between clients and non-clients).
    pub fn ibgp_rr_client(mut self, peer_loopback: Ipv4Addr) -> RouterSpec {
        self.ibgp_rr_clients.push(peer_loopback);
        self
    }

    pub fn network(mut self, p: Prefix) -> RouterSpec {
        self.networks.push(p);
        self
    }

    pub fn redistribute_connected(mut self) -> RouterSpec {
        self.redistribute_connected = true;
        self
    }

    pub fn production(mut self) -> RouterSpec {
        self.production_complexity = true;
        self
    }

    /// The NET for this router: area + system-id derived from the loopback.
    pub fn isis_net(&self) -> String {
        let o = self.loopback.octets();
        format!(
            "{}.{:02}{:02}.{:02}{:02}.{:02}{:02}.00",
            self.isis_area, o[0], o[1], o[1], o[2], o[2], o[3]
        )
    }

    /// Lowers the spec to a full device configuration.
    pub fn build(&self) -> DeviceConfig {
        let mut cfg = DeviceConfig::new(self.name.clone(), self.vendor);

        // Loopback first — mirrors operator convention.
        let lo_name = match self.vendor {
            Vendor::Ceos => "Loopback0",
            Vendor::Vjunos => "lo0",
        };
        let lo = cfg.ensure_interface(lo_name);
        lo.addr = Some(IfaceAddr::new(self.loopback, 32));
        let any_isis = self.ifaces.iter().any(|i| i.isis);
        if any_isis {
            let mut ii = IfaceIsis::new(default_instance(self.vendor));
            ii.passive = true;
            lo.isis = Some(ii);
        }

        for spec in &self.ifaces {
            let iface = cfg.ensure_interface(spec.name.clone());
            iface.addr = Some(spec.addr);
            iface.routed = true;
            iface.description = spec.description.clone();
            if spec.isis {
                let mut ii = IfaceIsis::new(default_instance(self.vendor));
                ii.metric = spec.isis_metric;
                iface.isis = Some(ii);
            }
        }

        if any_isis {
            let mut isis = IsisConfig::new(default_instance(self.vendor), self.isis_net());
            isis.wide_metrics = true;
            cfg.isis = Some(isis);
        }

        if !self.ebgp.is_empty()
            || !self.ibgp.is_empty()
            || !self.ibgp_rr_clients.is_empty()
            || !self.networks.is_empty()
        {
            let mut bgp = BgpConfig::new(self.asn);
            bgp.router_id = Some(mfv_types::RouterId(self.loopback));
            for (peer, ras) in &self.ebgp {
                bgp.neighbors.push(BgpNeighborConfig::new(*peer, *ras));
            }
            for peer in &self.ibgp {
                let mut n = BgpNeighborConfig::new(*peer, self.asn);
                n.update_source = Some(lo_name.into());
                n.next_hop_self = true;
                bgp.neighbors.push(n);
            }
            for peer in &self.ibgp_rr_clients {
                let mut n = BgpNeighborConfig::new(*peer, self.asn);
                n.update_source = Some(lo_name.into());
                n.next_hop_self = true;
                n.rr_client = true;
                bgp.neighbors.push(n);
            }
            bgp.networks = self.networks.clone();
            if self.redistribute_connected {
                bgp.redistribute.push(Redistribute::Connected);
            }
            cfg.bgp = Some(bgp);
        }

        if self.production_complexity {
            add_production_boilerplate(&mut cfg);
        }

        cfg
    }

    /// Renders the built config in its vendor dialect.
    pub fn render(&self) -> String {
        let cfg = self.build();
        match self.vendor {
            Vendor::Ceos => crate::ceos::render(&cfg),
            Vendor::Vjunos => crate::vjunos::render(&cfg),
        }
    }
}

fn default_instance(vendor: Vendor) -> &'static str {
    match vendor {
        Vendor::Ceos => "default",
        Vendor::Vjunos => "master",
    }
}

/// Adds the management-plane and MPLS/TE features that production devices
/// carry. None of these are supported by the model-based baseline; the
/// MPLS/TE portion is *materially relevant* to forwarding, the rest is
/// management-only — the distinction experiment E2 reports on.
pub fn add_production_boilerplate(cfg: &mut DeviceConfig) {
    cfg.mgmt.daemons.extend(
        [
            "TerminAttr",
            "PowerManager",
            "LedPolicy",
            "Thermostat",
            "EventMon",
            "ProcMgr",
            "ConfigAgent",
            "HealthProbe",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    cfg.mgmt
        .apis
        .extend(["gnmi", "grpc", "ssh"].iter().map(|s| s.to_string()));
    cfg.mgmt.ssl_profiles.push("mgmt-tls".to_string());
    cfg.mgmt.ntp_servers.push(Ipv4Addr::new(192, 0, 2, 123));
    cfg.mgmt.ntp_servers.push(Ipv4Addr::new(192, 0, 2, 124));
    cfg.mgmt.logging_hosts.push(Ipv4Addr::new(192, 0, 2, 50));
    // Materially-relevant unmodeled features: label switching + TE.
    cfg.mpls.enabled = true;
    cfg.mpls.te_enabled = true;
    cfg.mpls.rsvp = Some(RsvpConfig::default());
    for iface in &mut cfg.interfaces {
        if iface.routed && !iface.name.is_loopback() {
            iface.mpls = true;
        }
    }
}

/// Classification of a configuration feature for coverage reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FeatureClass {
    /// Changes forwarding behaviour (MPLS, TE, RSVP, routing).
    Material,
    /// Management-plane only (daemons, APIs, NTP, logging, SSL).
    ManagementOnly,
}

/// Classifies a single (EOS-dialect) config line for the E2 report.
pub fn classify_line(line: &str) -> FeatureClass {
    let l = line.trim();
    const MGMT: &[&str] = &[
        "daemon",
        "management",
        "ntp",
        "logging",
        "snmp-server",
        "aaa",
        "username",
        "banner",
        "ssl",
        "transport",
        "idle-timeout",
        "no shutdown",
        "exec",
        "spanning-tree",
        "service routing",
    ];
    if MGMT.iter().any(|kw| l.starts_with(kw)) {
        FeatureClass::ManagementOnly
    } else {
        FeatureClass::Material
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_types::IfaceId;

    fn sample_spec(vendor: Vendor) -> RouterSpec {
        RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .vendor(vendor)
            .iface(
                IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap())
                    .with_isis()
                    .described("to r2"),
            )
            .ebgp("100.64.0.0".parse().unwrap(), AsNum(65002))
            .ibgp(Ipv4Addr::new(2, 2, 2, 3))
            .network("2.2.2.1/32".parse().unwrap())
    }

    #[test]
    fn build_wires_up_loopback_isis_bgp() {
        let cfg = sample_spec(Vendor::Ceos).build();
        let lo = cfg.interface(&IfaceId::from("Loopback0")).unwrap();
        assert_eq!(lo.addr.unwrap().addr, Ipv4Addr::new(2, 2, 2, 1));
        assert!(lo.isis.as_ref().unwrap().passive);
        let isis = cfg.isis.as_ref().unwrap();
        assert_eq!(isis.net, "49.0001.0202.0202.0201.00");
        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.neighbors.len(), 2);
        let ibgp = bgp.neighbor(Ipv4Addr::new(2, 2, 2, 3)).unwrap();
        assert!(ibgp.next_hop_self);
        assert_eq!(ibgp.update_source, Some(IfaceId::from("Loopback0")));
    }

    #[test]
    fn rendered_ceos_config_parses_back() {
        let spec = sample_spec(Vendor::Ceos);
        let text = spec.render();
        let parsed = crate::ceos::parse(&text).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert_eq!(parsed.config, spec.build());
    }

    #[test]
    fn rendered_vjunos_config_parses_back() {
        let spec = sample_spec(Vendor::Vjunos);
        let text = spec.render();
        let parsed = crate::vjunos::parse(&text).unwrap();
        assert!(
            parsed.warnings.is_empty(),
            "{:?}\n{}",
            parsed.warnings,
            text
        );
        let cfg = parsed.config;
        assert_eq!(cfg.hostname, "r1");
        let bgp = cfg.bgp.unwrap();
        assert_eq!(bgp.asn, AsNum(65001));
        assert_eq!(bgp.neighbors.len(), 2);
        assert!(cfg.isis.is_some());
    }

    #[test]
    fn fig2_scale_configs_are_realistic_length() {
        // Paper: Fig. 2 configs are 62–82 lines. Our bare spec with
        // production boilerplate should land in a similar band.
        let text = sample_spec(Vendor::Ceos).production().render();
        let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
        assert!(
            (50..=110).contains(&lines),
            "unexpected config length {lines}:\n{text}"
        );
    }

    #[test]
    fn production_boilerplate_is_parseable_by_vendor() {
        let spec = sample_spec(Vendor::Ceos).production();
        let text = spec.render();
        let parsed = crate::ceos::parse(&text).unwrap();
        // The *vendor* parser accepts the whole config (this is the point:
        // only the model-based baseline chokes on these features).
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert!(parsed.config.mpls.enabled && parsed.config.mpls.te_enabled);
        assert_eq!(parsed.config.mgmt.daemons.len(), 8);
    }

    #[test]
    fn classify_lines() {
        assert_eq!(classify_line("   mpls ip"), FeatureClass::Material);
        assert_eq!(
            classify_line("router traffic-engineering"),
            FeatureClass::Material
        );
        assert_eq!(
            classify_line("daemon TerminAttr"),
            FeatureClass::ManagementOnly
        );
        assert_eq!(
            classify_line("management api gnmi"),
            FeatureClass::ManagementOnly
        );
        assert_eq!(
            classify_line("ntp server 1.2.3.4"),
            FeatureClass::ManagementOnly
        );
    }

    #[test]
    fn isis_net_is_unique_per_loopback() {
        let a = RouterSpec::new("a", AsNum(1), Ipv4Addr::new(2, 2, 2, 1)).isis_net();
        let b = RouterSpec::new("b", AsNum(1), Ipv4Addr::new(2, 2, 2, 2)).isis_net();
        assert_ne!(a, b);
        assert!(a.starts_with("49.0001."));
        assert!(a.ends_with(".00"));
    }
}
