//! Configuration generators.
//!
//! Builds realistic device configurations from compact logical specs. Two
//! layers of realism are available:
//!
//! - the bare routing payload (interfaces, IS-IS, BGP) — comparable to the
//!   62–82-line configs of the paper's Fig. 2 network, and
//! - "production complexity": management daemons, APIs, SSL profiles, MPLS
//!   and TE stanzas — the feature surface that real devices carry and network
//!   models cannot parse (experiment E2).

use std::net::Ipv4Addr;

use mfv_types::{AsNum, IfaceAddr, Prefix};

use crate::ir::*;

/// Logical description of one interface.
#[derive(Clone, Debug)]
pub struct IfaceSpec {
    pub name: String,
    pub addr: IfaceAddr,
    /// Enable IS-IS on this interface.
    pub isis: bool,
    pub isis_metric: u32,
    pub description: Option<String>,
}

impl IfaceSpec {
    pub fn new(name: impl Into<String>, addr: IfaceAddr) -> IfaceSpec {
        IfaceSpec {
            name: name.into(),
            addr,
            isis: false,
            isis_metric: 10,
            description: None,
        }
    }

    pub fn with_isis(mut self) -> IfaceSpec {
        self.isis = true;
        self
    }

    pub fn with_metric(mut self, m: u32) -> IfaceSpec {
        self.isis = true;
        self.isis_metric = m;
        self
    }

    pub fn described(mut self, d: impl Into<String>) -> IfaceSpec {
        self.description = Some(d.into());
        self
    }
}

/// Logical description of one router, lowered to a [`DeviceConfig`].
#[derive(Clone, Debug)]
pub struct RouterSpec {
    pub name: String,
    pub vendor: Vendor,
    pub asn: AsNum,
    /// Loopback /32; also the router-id and iBGP source.
    pub loopback: Ipv4Addr,
    pub ifaces: Vec<IfaceSpec>,
    /// eBGP sessions: (local interface address peer, remote AS).
    pub ebgp: Vec<(Ipv4Addr, AsNum)>,
    /// iBGP sessions to peer loopbacks (update-source Loopback0,
    /// next-hop-self).
    pub ibgp: Vec<Ipv4Addr>,
    /// iBGP sessions where the peer is our route-reflector client.
    pub ibgp_rr_clients: Vec<Ipv4Addr>,
    /// Prefixes originated into BGP via `network` statements.
    pub networks: Vec<Prefix>,
    /// Redistribute connected into BGP.
    pub redistribute_connected: bool,
    /// Route-map attached to connected redistribution (None = unfiltered).
    pub redistribute_policy: Option<String>,
    /// Route-map attached to IS-IS → BGP redistribution (the regional-WAN
    /// border pattern: interior reachability exported into eBGP, policed).
    pub redistribute_isis: Option<String>,
    /// Named route-maps to define on the device.
    pub route_maps: Vec<(String, RouteMap)>,
    /// Named prefix-lists to define on the device.
    pub prefix_lists: Vec<(String, PrefixList)>,
    /// IS-IS area (two-digit hex-ish string used in the NET).
    pub isis_area: String,
    /// Add management daemons/APIs and MPLS/TE stanzas.
    pub production_complexity: bool,
}

impl RouterSpec {
    pub fn new(name: impl Into<String>, asn: AsNum, loopback: Ipv4Addr) -> RouterSpec {
        RouterSpec {
            name: name.into(),
            vendor: Vendor::Ceos,
            asn,
            loopback,
            ifaces: Vec::new(),
            ebgp: Vec::new(),
            ibgp: Vec::new(),
            ibgp_rr_clients: Vec::new(),
            networks: Vec::new(),
            redistribute_connected: false,
            redistribute_policy: None,
            redistribute_isis: None,
            route_maps: Vec::new(),
            prefix_lists: Vec::new(),
            isis_area: "49.0001".to_string(),
            production_complexity: false,
        }
    }

    pub fn vendor(mut self, v: Vendor) -> RouterSpec {
        self.vendor = v;
        self
    }

    pub fn iface(mut self, spec: IfaceSpec) -> RouterSpec {
        self.ifaces.push(spec);
        self
    }

    pub fn ebgp(mut self, peer: Ipv4Addr, remote_as: AsNum) -> RouterSpec {
        self.ebgp.push((peer, remote_as));
        self
    }

    pub fn ibgp(mut self, peer_loopback: Ipv4Addr) -> RouterSpec {
        self.ibgp.push(peer_loopback);
        self
    }

    /// An iBGP session where the peer is treated as our route-reflector
    /// client (we reflect routes between clients and non-clients).
    pub fn ibgp_rr_client(mut self, peer_loopback: Ipv4Addr) -> RouterSpec {
        self.ibgp_rr_clients.push(peer_loopback);
        self
    }

    pub fn network(mut self, p: Prefix) -> RouterSpec {
        self.networks.push(p);
        self
    }

    pub fn redistribute_connected(mut self) -> RouterSpec {
        self.redistribute_connected = true;
        self
    }

    /// Redistribute connected into BGP through a named route-map. The map
    /// itself must be supplied via [`RouterSpec::route_map`]; conflint rule
    /// C5 flags a dangling reference, C7 flags the unfiltered form.
    pub fn redistribute_connected_policed(mut self, route_map: impl Into<String>) -> RouterSpec {
        self.redistribute_connected = true;
        self.redistribute_policy = Some(route_map.into());
        self
    }

    /// Redistribute IS-IS into BGP through a named route-map — how a
    /// regional border exports interior reachability to its eBGP peer
    /// without leaking the world back in. The map must be supplied via
    /// [`RouterSpec::route_map`] (conflint C5 flags a dangling reference).
    pub fn redistribute_isis_policed(mut self, route_map: impl Into<String>) -> RouterSpec {
        self.redistribute_isis = Some(route_map.into());
        self
    }

    /// Defines a named route-map on the device.
    pub fn route_map(mut self, name: impl Into<String>, rm: RouteMap) -> RouterSpec {
        self.route_maps.push((name.into(), rm));
        self
    }

    /// Defines a named prefix-list on the device.
    pub fn prefix_list(mut self, name: impl Into<String>, pl: PrefixList) -> RouterSpec {
        self.prefix_lists.push((name.into(), pl));
        self
    }

    /// A single-entry permit-all route-map — the conventional attachment
    /// for redistribution that should carry everything but stay policed.
    pub fn permit_all_route_map() -> RouteMap {
        RouteMap {
            entries: vec![RouteMapEntry {
                seq: 10,
                action: PolicyAction::Permit,
                matches: Vec::new(),
                sets: Vec::new(),
            }],
        }
    }

    pub fn production(mut self) -> RouterSpec {
        self.production_complexity = true;
        self
    }

    /// The NET for this router: area + system-id derived from the loopback.
    pub fn isis_net(&self) -> String {
        let o = self.loopback.octets();
        format!(
            "{}.{:02}{:02}.{:02}{:02}.{:02}{:02}.00",
            self.isis_area, o[0], o[1], o[1], o[2], o[2], o[3]
        )
    }

    /// Lowers the spec to a full device configuration.
    pub fn build(&self) -> DeviceConfig {
        let mut cfg = DeviceConfig::new(self.name.clone(), self.vendor);

        // Loopback first — mirrors operator convention.
        let lo_name = match self.vendor {
            Vendor::Ceos => "Loopback0",
            Vendor::Vjunos => "lo0",
        };
        let lo = cfg.ensure_interface(lo_name);
        lo.addr = Some(IfaceAddr::new(self.loopback, 32));
        let any_isis = self.ifaces.iter().any(|i| i.isis);
        if any_isis {
            let mut ii = IfaceIsis::new(default_instance(self.vendor));
            ii.passive = true;
            lo.isis = Some(ii);
        }

        for spec in &self.ifaces {
            let iface = cfg.ensure_interface(spec.name.clone());
            iface.addr = Some(spec.addr);
            iface.routed = true;
            iface.description = spec.description.clone();
            if spec.isis {
                let mut ii = IfaceIsis::new(default_instance(self.vendor));
                ii.metric = spec.isis_metric;
                iface.isis = Some(ii);
            }
        }

        if any_isis {
            let mut isis = IsisConfig::new(default_instance(self.vendor), self.isis_net());
            isis.wide_metrics = true;
            cfg.isis = Some(isis);
        }

        if !self.ebgp.is_empty()
            || !self.ibgp.is_empty()
            || !self.ibgp_rr_clients.is_empty()
            || !self.networks.is_empty()
            || self.redistribute_isis.is_some()
        {
            let mut bgp = BgpConfig::new(self.asn);
            bgp.router_id = Some(mfv_types::RouterId(self.loopback));
            for (peer, ras) in &self.ebgp {
                bgp.neighbors.push(BgpNeighborConfig::new(*peer, *ras));
            }
            for peer in &self.ibgp {
                let mut n = BgpNeighborConfig::new(*peer, self.asn);
                n.update_source = Some(lo_name.into());
                n.next_hop_self = true;
                bgp.neighbors.push(n);
            }
            for peer in &self.ibgp_rr_clients {
                let mut n = BgpNeighborConfig::new(*peer, self.asn);
                n.update_source = Some(lo_name.into());
                n.next_hop_self = true;
                n.rr_client = true;
                bgp.neighbors.push(n);
            }
            bgp.networks = self.networks.clone();
            if self.redistribute_connected {
                bgp.redistribute.push(BgpRedistribute {
                    proto: Redistribute::Connected,
                    route_map: self.redistribute_policy.clone(),
                });
            }
            if let Some(map) = &self.redistribute_isis {
                bgp.redistribute
                    .push(BgpRedistribute::policed(Redistribute::Isis, map));
            }
            cfg.bgp = Some(bgp);
        }

        for (name, rm) in &self.route_maps {
            cfg.route_maps.insert(name.clone(), rm.clone());
        }
        for (name, pl) in &self.prefix_lists {
            cfg.prefix_lists.insert(name.clone(), pl.clone());
        }

        if self.production_complexity {
            add_production_boilerplate(&mut cfg);
        }

        cfg
    }

    /// Renders the built config in its vendor dialect.
    pub fn render(&self) -> String {
        let cfg = self.build();
        match self.vendor {
            Vendor::Ceos => crate::ceos::render(&cfg),
            Vendor::Vjunos => crate::vjunos::render(&cfg),
        }
    }
}

fn default_instance(vendor: Vendor) -> &'static str {
    match vendor {
        Vendor::Ceos => "default",
        Vendor::Vjunos => "master",
    }
}

/// Adds the management-plane and MPLS/TE features that production devices
/// carry. None of these are supported by the model-based baseline; the
/// MPLS/TE portion is *materially relevant* to forwarding, the rest is
/// management-only — the distinction experiment E2 reports on.
pub fn add_production_boilerplate(cfg: &mut DeviceConfig) {
    cfg.mgmt.daemons.extend(
        [
            "TerminAttr",
            "PowerManager",
            "LedPolicy",
            "Thermostat",
            "EventMon",
            "ProcMgr",
            "ConfigAgent",
            "HealthProbe",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    cfg.mgmt
        .apis
        .extend(["gnmi", "grpc", "ssh"].iter().map(|s| s.to_string()));
    cfg.mgmt.ssl_profiles.push("mgmt-tls".to_string());
    cfg.mgmt.ntp_servers.push(Ipv4Addr::new(192, 0, 2, 123));
    cfg.mgmt.ntp_servers.push(Ipv4Addr::new(192, 0, 2, 124));
    cfg.mgmt.logging_hosts.push(Ipv4Addr::new(192, 0, 2, 50));
    // Materially-relevant unmodeled features: label switching + TE.
    cfg.mpls.enabled = true;
    cfg.mpls.te_enabled = true;
    cfg.mpls.rsvp = Some(RsvpConfig::default());
    for iface in &mut cfg.interfaces {
        if iface.routed && !iface.name.is_loopback() {
            iface.mpls = true;
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded misconfiguration injector (conflint cross-validation, E7)
// ---------------------------------------------------------------------------

/// One misconfiguration family the injector can plant — each maps 1:1 onto
/// a `mfv-conflint` rule, and each produces an observable runtime symptom
/// when the corrupted topology is emulated (experiment E7 pairs the two).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SeededMisconfig {
    /// C1: an eBGP neighbor statement names the wrong remote AS.
    EbgpAsnMismatch,
    /// C2: the far side's reverse neighbor statement is deleted.
    OneSidedNeighbor,
    /// C3: a router's NET is rewritten into a foreign IS-IS area.
    IsisAreaMismatch,
    /// C4: a router's loopback/router-id/NET are cloned from a sibling.
    DuplicateLoopback,
    /// C5: an import route-map reference points at a map that is never
    /// defined (denies everything while the session stays up).
    UndefinedRouteMap,
    /// C6: one end of a point-to-point link is renumbered off-subnet.
    SubnetMismatch,
    /// C7: `redistribute connected` with no route-map is added on a border.
    UnpolicedRedistribution,
    /// C8: an import prefix-list whose permit entry is dead behind a
    /// broader deny.
    ShadowedPrefixList,
}

impl SeededMisconfig {
    pub const ALL: [SeededMisconfig; 8] = [
        SeededMisconfig::EbgpAsnMismatch,
        SeededMisconfig::OneSidedNeighbor,
        SeededMisconfig::IsisAreaMismatch,
        SeededMisconfig::DuplicateLoopback,
        SeededMisconfig::UndefinedRouteMap,
        SeededMisconfig::SubnetMismatch,
        SeededMisconfig::UnpolicedRedistribution,
        SeededMisconfig::ShadowedPrefixList,
    ];

    /// The conflint rule expected to flag this family.
    pub fn rule_id(&self) -> &'static str {
        match self {
            SeededMisconfig::EbgpAsnMismatch => "C1",
            SeededMisconfig::OneSidedNeighbor => "C2",
            SeededMisconfig::IsisAreaMismatch => "C3",
            SeededMisconfig::DuplicateLoopback => "C4",
            SeededMisconfig::UndefinedRouteMap => "C5",
            SeededMisconfig::SubnetMismatch => "C6",
            SeededMisconfig::UnpolicedRedistribution => "C7",
            SeededMisconfig::ShadowedPrefixList => "C8",
        }
    }
}

/// What the injector actually changed, in terms the cross-validation
/// harness can assert against: the conflint rule + device expected to be
/// flagged, and the runtime observables the emulator should exhibit.
#[derive(Clone, Debug)]
pub struct InjectionReport {
    pub kind: SeededMisconfig,
    /// Conflint rule id expected to fire (`kind.rule_id()`).
    pub rule: &'static str,
    /// Device the finding should be attached to (the corrupted config —
    /// for `OneSidedNeighbor` the *observing* side, matching conflint).
    pub device: String,
    pub detail: String,
    /// A BGP session `(device, neighbor address)` whose state exhibits the
    /// symptom, if the family has a session-level symptom.
    pub watch_session: Option<(String, Ipv4Addr)>,
    /// `true` if `watch_session` is expected to *reach* Established anyway
    /// (the insidious families: policy silently eats routes).
    pub session_should_establish: bool,
    /// Prefixes expected to vanish from other routers' FIBs.
    pub expect_absent: Vec<Prefix>,
    /// Prefixes expected to *appear* in other routers' FIBs (leaks).
    pub expect_present: Vec<Prefix>,
    /// Devices whose FIBs the absence/presence expectations apply to.
    pub observe_on: Vec<String>,
}

/// The injector found no place to plant the requested family (e.g. no
/// eBGP session in the topology).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectError(pub String);

impl std::fmt::Display for InjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inject: {}", self.0)
    }
}

impl std::error::Error for InjectError {}

fn owner_of(configs: &[DeviceConfig], addr: Ipv4Addr) -> Option<usize> {
    configs.iter().position(|c| {
        c.interfaces
            .iter()
            .any(|i| i.addr.map(|a| a.addr) == Some(addr))
    })
}

fn device_addrs(cfg: &DeviceConfig) -> Vec<Ipv4Addr> {
    cfg.interfaces
        .iter()
        .filter_map(|i| i.addr.map(|a| a.addr))
        .collect()
}

fn pick<T>(candidates: Vec<T>, seed: u64, what: &str) -> Result<T, InjectError> {
    if candidates.is_empty() {
        return Err(InjectError(format!("no candidate site for {what}")));
    }
    let idx = (seed as usize) % candidates.len();
    candidates
        .into_iter()
        .nth(idx)
        .ok_or_else(|| InjectError(format!("no candidate site for {what}")))
}

/// Sites where a device's neighbor statement points at an interface
/// address of another device: `(device idx, neighbor idx, owner idx)`.
fn session_sites(configs: &[DeviceConfig], ebgp_only: bool) -> Vec<(usize, usize, usize)> {
    let mut sites = Vec::new();
    for (di, cfg) in configs.iter().enumerate() {
        let Some(bgp) = &cfg.bgp else { continue };
        for (ni, n) in bgp.neighbors.iter().enumerate() {
            if n.shutdown || (ebgp_only && n.remote_as == bgp.asn) {
                continue;
            }
            if let Some(oi) = owner_of(configs, n.peer) {
                if oi != di {
                    sites.push((di, ni, oi));
                }
            }
        }
    }
    sites
}

fn hostname(configs: &[DeviceConfig], idx: usize) -> String {
    configs
        .get(idx)
        .map(|c| c.hostname.clone())
        .unwrap_or_default()
}

fn bgp_networks(configs: &[DeviceConfig], idx: usize) -> Vec<Prefix> {
    configs
        .get(idx)
        .and_then(|c| c.bgp.as_ref())
        .map(|b| b.networks.clone())
        .unwrap_or_default()
}

/// Plants exactly one instance of `kind` into `configs`, choosing the
/// victim deterministically from `seed`. The configs are mutated in place;
/// the report says what to expect from (a) conflint and (b) emulation.
pub fn inject_misconfig(
    kind: SeededMisconfig,
    configs: &mut [DeviceConfig],
    seed: u64,
) -> Result<InjectionReport, InjectError> {
    let rule = kind.rule_id();
    match kind {
        SeededMisconfig::EbgpAsnMismatch => {
            let (di, ni, oi) = pick(session_sites(configs, true), seed, "eBGP ASN mismatch")?;
            let device = hostname(configs, di);
            let peer_name = hostname(configs, oi);
            let expect_absent = bgp_networks(configs, oi);
            let Some(n) = configs
                .get_mut(di)
                .and_then(|c| c.bgp.as_mut())
                .and_then(|b| b.neighbors.get_mut(ni))
            else {
                return Err(InjectError("candidate vanished".into()));
            };
            let wrong = AsNum(n.remote_as.0 + 1000);
            let detail = format!(
                "{device}: neighbor {} remote-as {} -> {wrong} ({peer_name} still runs {})",
                n.peer, n.remote_as, n.remote_as
            );
            let peer = n.peer;
            n.remote_as = wrong;
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail,
                watch_session: Some((device.clone(), peer)),
                session_should_establish: false,
                expect_absent,
                expect_present: Vec::new(),
                observe_on: vec![device],
            })
        }

        SeededMisconfig::OneSidedNeighbor => {
            // eBGP-only: an intra-AS victim would still learn the peer's
            // prefixes through the IGP, muddying the runtime symptom.
            let (di, ni, oi) = pick(session_sites(configs, true), seed, "one-sided neighbor")?;
            let device = hostname(configs, di);
            let other = hostname(configs, oi);
            let expect_absent = bgp_networks(configs, oi);
            let my_addrs = configs.get(di).map(device_addrs).unwrap_or_default();
            let peer = configs
                .get(di)
                .and_then(|c| c.bgp.as_ref())
                .and_then(|b| b.neighbors.get(ni))
                .map(|n| n.peer)
                .ok_or_else(|| InjectError("candidate vanished".into()))?;
            let Some(obgp) = configs.get_mut(oi).and_then(|c| c.bgp.as_mut()) else {
                return Err(InjectError("candidate vanished".into()));
            };
            let before = obgp.neighbors.len();
            obgp.neighbors.retain(|m| !my_addrs.contains(&m.peer));
            if obgp.neighbors.len() == before {
                return Err(InjectError("no reverse statement to delete".into()));
            }
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!(
                    "{other}: deleted neighbor statement(s) back to {device}; \
                     {device}'s session to {peer} is now one-sided"
                ),
                watch_session: Some((device.clone(), peer)),
                session_should_establish: false,
                expect_absent,
                expect_present: Vec::new(),
                observe_on: vec![device],
            })
        }

        SeededMisconfig::IsisAreaMismatch => {
            let sites: Vec<usize> = configs
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.isis.is_some()
                        && c.interfaces
                            .iter()
                            .any(|i| i.isis.as_ref().is_some_and(|ii| !ii.passive))
                })
                .map(|(i, _)| i)
                .collect();
            let di = pick(sites, seed, "IS-IS area mismatch")?;
            let device = hostname(configs, di);
            let lo = configs.get(di).and_then(|c| c.loopback_addr());
            // Observe on the victim's IS-IS partners: the devices sharing a
            // subnet with its adjacency-forming interfaces. (Devices beyond
            // an eBGP boundary may still learn the loopback over BGP.)
            let isis_subnets: Vec<Prefix> = configs
                .get(di)
                .map(|c| {
                    c.interfaces
                        .iter()
                        .filter(|i| i.isis.as_ref().is_some_and(|ii| !ii.passive))
                        .filter_map(|i| i.addr.map(|a| a.subnet()))
                        .collect()
                })
                .unwrap_or_default();
            let partners: Vec<String> = configs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != di)
                .filter(|(_, c)| {
                    c.interfaces
                        .iter()
                        .any(|i| i.addr.is_some_and(|a| isis_subnets.contains(&a.subnet())))
                })
                .map(|(_, c)| c.hostname.clone())
                .collect();
            if partners.is_empty() {
                return Err(InjectError("victim has no IS-IS partner to observe".into()));
            }
            let Some(isis) = configs.get_mut(di).and_then(|c| c.isis.as_mut()) else {
                return Err(InjectError("candidate vanished".into()));
            };
            let parts: Vec<&str> = isis.net.split('.').collect();
            let tail = parts
                .get(parts.len().saturating_sub(4)..)
                .map(|t| t.join("."))
                .ok_or_else(|| InjectError("unparseable NET".into()))?;
            let old_area = isis.area().unwrap_or_else(|| "?".into());
            let new_area = if old_area == "49.0099" {
                "49.0098"
            } else {
                "49.0099"
            };
            let old_net = isis.net.clone();
            isis.net = format!("{new_area}.{tail}");
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!("{device}: NET {old_net} -> {} (area now foreign)", isis.net),
                watch_session: None,
                session_should_establish: false,
                expect_absent: lo.map(|a| Prefix::new(a, 32)).into_iter().collect(),
                expect_present: Vec::new(),
                observe_on: partners,
            })
        }

        SeededMisconfig::DuplicateLoopback => {
            let with_lo: Vec<usize> = configs
                .iter()
                .enumerate()
                .filter(|(_, c)| c.loopback_addr().is_some())
                .map(|(i, _)| i)
                .collect();
            if with_lo.len() < 2 {
                return Err(InjectError("need two devices with loopbacks".into()));
            }
            // Victim is never the first loopback-bearing device, so the
            // conflint finding (attached to later duplicates) names it.
            let vi = pick(
                with_lo.get(1..).map(|s| s.to_vec()).unwrap_or_default(),
                seed,
                "duplicate loopback",
            )?;
            let si = with_lo
                .iter()
                .copied()
                .find(|i| *i != vi)
                .ok_or_else(|| InjectError("no source device".into()))?;
            let device = hostname(configs, vi);
            let source = hostname(configs, si);
            let src_lo = configs
                .get(si)
                .and_then(|c| c.loopback_addr())
                .ok_or_else(|| InjectError("source lost its loopback".into()))?;
            let src_net = configs
                .get(si)
                .and_then(|c| c.isis.as_ref())
                .map(|i| i.net.clone());
            let old_lo = configs
                .get(vi)
                .and_then(|c| c.loopback_addr())
                .ok_or_else(|| InjectError("victim lost its loopback".into()))?;
            let everyone: Vec<String> = configs.iter().map(|c| c.hostname.clone()).collect();
            let Some(victim) = configs.get_mut(vi) else {
                return Err(InjectError("candidate vanished".into()));
            };
            for iface in victim.interfaces.iter_mut() {
                if iface.name.is_loopback() {
                    if let Some(a) = iface.addr.as_mut() {
                        a.addr = src_lo;
                    }
                }
            }
            if let Some(bgp) = victim.bgp.as_mut() {
                bgp.router_id = Some(mfv_types::RouterId(src_lo));
            }
            if let (Some(isis), Some(net)) = (victim.isis.as_mut(), src_net) {
                isis.net = net;
            }
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!(
                    "{device}: loopback/router-id/NET cloned from {source} \
                     ({old_lo} -> {src_lo}); {old_lo}/32 is now originated by nobody"
                ),
                watch_session: None,
                session_should_establish: false,
                expect_absent: vec![Prefix::new(old_lo, 32)],
                expect_present: Vec::new(),
                observe_on: everyone,
            })
        }

        SeededMisconfig::UndefinedRouteMap => {
            let (di, ni, oi) = pick(session_sites(configs, true), seed, "undefined route-map")?;
            let device = hostname(configs, di);
            let expect_absent = bgp_networks(configs, oi);
            let Some(n) = configs
                .get_mut(di)
                .and_then(|c| c.bgp.as_mut())
                .and_then(|b| b.neighbors.get_mut(ni))
            else {
                return Err(InjectError("candidate vanished".into()));
            };
            n.route_map_in = Some("PHANTOM-IN".to_string());
            let peer = n.peer;
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!(
                    "{device}: neighbor {peer} route-map PHANTOM-IN in — the map \
                     is never defined, so every inbound route is silently denied"
                ),
                watch_session: Some((device.clone(), peer)),
                session_should_establish: true,
                expect_absent,
                expect_present: Vec::new(),
                observe_on: vec![device],
            })
        }

        SeededMisconfig::SubnetMismatch => {
            // Renumber the interface that carries an eBGP session.
            let mut sites = Vec::new();
            for (di, ni, oi) in session_sites(configs, true) {
                let peer = configs
                    .get(di)
                    .and_then(|c| c.bgp.as_ref())
                    .and_then(|b| b.neighbors.get(ni))
                    .map(|n| n.peer);
                let Some(peer) = peer else { continue };
                let Some(cfg) = configs.get(di) else { continue };
                if let Some(ii) = cfg
                    .interfaces
                    .iter()
                    .position(|i| i.addr.is_some_and(|a| a.subnet().contains(peer)))
                {
                    sites.push((di, ni, oi, ii));
                }
            }
            let (di, ni, oi, ii) = pick(sites, seed, "subnet mismatch")?;
            let device = hostname(configs, di);
            let peer = configs
                .get(di)
                .and_then(|c| c.bgp.as_ref())
                .and_then(|b| b.neighbors.get(ni))
                .map(|n| n.peer)
                .ok_or_else(|| InjectError("candidate vanished".into()))?;
            let expect_absent = bgp_networks(configs, oi);
            let Some(iface) = configs.get_mut(di).and_then(|c| c.interfaces.get_mut(ii)) else {
                return Err(InjectError("candidate vanished".into()));
            };
            let old = iface.addr;
            let fresh = IfaceAddr::new(Ipv4Addr::new(10, 254, (seed % 200) as u8, 1), 31);
            iface.addr = Some(fresh);
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!(
                    "{device}: {} renumbered {} -> {fresh}; neighbor {peer} is no \
                     longer on a connected subnet",
                    iface.name,
                    old.map(|a| a.to_string()).unwrap_or_else(|| "?".into()),
                ),
                watch_session: Some((device.clone(), peer)),
                session_should_establish: false,
                expect_absent,
                expect_present: Vec::new(),
                observe_on: vec![device],
            })
        }

        SeededMisconfig::UnpolicedRedistribution => {
            // Victims with an eBGP session: the leak is observed on the
            // eBGP peer, which would never otherwise carry the victim's
            // infrastructure subnets. Skip sites whose device already
            // redistributes unfiltered (nothing new to plant).
            let mut sites = Vec::new();
            for (di, ni, oi) in session_sites(configs, true) {
                let clean = configs
                    .get(di)
                    .and_then(|c| c.bgp.as_ref())
                    .is_some_and(|b| b.redistribute.iter().all(|r| r.route_map.is_some()));
                if clean {
                    sites.push((di, ni, oi));
                }
            }
            let (di, _ni, oi) = pick(sites, seed, "unpoliced redistribution")?;
            let device = hostname(configs, di);
            let observer = hostname(configs, oi);
            let observer_subnets: Vec<Prefix> = configs
                .get(oi)
                .map(|c| c.connected_subnets().into_iter().map(|(_, p)| p).collect())
                .unwrap_or_default();
            // The subnets that leak *and* are foreign to the observer (a
            // shared link subnet is connected there anyway — no symptom).
            let leak: Vec<Prefix> = configs
                .get(di)
                .map(|c| {
                    c.connected_subnets()
                        .into_iter()
                        .map(|(_, p)| p)
                        .filter(|p| p.len() < 32 && !observer_subnets.contains(p))
                        .collect()
                })
                .unwrap_or_default();
            if leak.is_empty() {
                return Err(InjectError(
                    "victim has no infrastructure subnet foreign to its peer".into(),
                ));
            }
            let Some(bgp) = configs.get_mut(di).and_then(|c| c.bgp.as_mut()) else {
                return Err(InjectError("candidate vanished".into()));
            };
            bgp.redistribute
                .push(BgpRedistribute::unfiltered(Redistribute::Connected));
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!(
                    "{device}: added `redistribute connected` with no route-map; \
                     infrastructure subnets leak to eBGP peer {observer}"
                ),
                watch_session: None,
                session_should_establish: true,
                expect_absent: Vec::new(),
                expect_present: leak,
                observe_on: vec![observer],
            })
        }

        SeededMisconfig::ShadowedPrefixList => {
            let (di, ni, oi) = pick(session_sites(configs, true), seed, "shadowed prefix-list")?;
            let device = hostname(configs, di);
            let expect_absent = bgp_networks(configs, oi);
            // The permit entries the operator *meant* to take effect.
            let permits: Vec<PrefixListEntry> = expect_absent
                .iter()
                .enumerate()
                .map(|(i, p)| PrefixListEntry {
                    seq: 10 + 5 * i as u32,
                    action: PolicyAction::Permit,
                    prefix: *p,
                    ge: None,
                    le: None,
                })
                .collect();
            if permits.is_empty() {
                return Err(InjectError("peer originates nothing to permit".into()));
            }
            let Some(cfg) = configs.get_mut(di) else {
                return Err(InjectError("candidate vanished".into()));
            };
            let mut entries = vec![PrefixListEntry {
                seq: 5,
                action: PolicyAction::Deny,
                prefix: Prefix::DEFAULT,
                ge: None,
                le: Some(32),
            }];
            entries.extend(permits);
            cfg.prefix_lists
                .insert("XVAL-IN".to_string(), PrefixList { entries });
            cfg.route_maps.insert(
                "XVAL-IN-MAP".to_string(),
                RouteMap {
                    entries: vec![RouteMapEntry {
                        seq: 10,
                        action: PolicyAction::Permit,
                        matches: vec![MatchClause::PrefixList("XVAL-IN".to_string())],
                        sets: Vec::new(),
                    }],
                },
            );
            let Some(n) = cfg.bgp.as_mut().and_then(|b| b.neighbors.get_mut(ni)) else {
                return Err(InjectError("candidate vanished".into()));
            };
            n.route_map_in = Some("XVAL-IN-MAP".to_string());
            let peer = n.peer;
            Ok(InjectionReport {
                kind,
                rule,
                device: device.clone(),
                detail: format!(
                    "{device}: neighbor {peer} filtered through prefix-list \
                     XVAL-IN whose permits sit dead behind `deny 0.0.0.0/0 le 32`"
                ),
                watch_session: Some((device.clone(), peer)),
                session_should_establish: true,
                expect_absent,
                expect_present: Vec::new(),
                observe_on: vec![device],
            })
        }
    }
}

/// Classification of a configuration feature for coverage reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FeatureClass {
    /// Changes forwarding behaviour (MPLS, TE, RSVP, routing).
    Material,
    /// Management-plane only (daemons, APIs, NTP, logging, SSL).
    ManagementOnly,
}

/// Classifies a single (EOS-dialect) config line for the E2 report.
pub fn classify_line(line: &str) -> FeatureClass {
    let l = line.trim();
    const MGMT: &[&str] = &[
        "daemon",
        "management",
        "ntp",
        "logging",
        "snmp-server",
        "aaa",
        "username",
        "banner",
        "ssl",
        "transport",
        "idle-timeout",
        "no shutdown",
        "exec",
        "spanning-tree",
        "service routing",
    ];
    if MGMT.iter().any(|kw| l.starts_with(kw)) {
        FeatureClass::ManagementOnly
    } else {
        FeatureClass::Material
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfv_types::IfaceId;

    fn sample_spec(vendor: Vendor) -> RouterSpec {
        RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .vendor(vendor)
            .iface(
                IfaceSpec::new("Ethernet1", "100.64.0.1/31".parse().unwrap())
                    .with_isis()
                    .described("to r2"),
            )
            .ebgp("100.64.0.0".parse().unwrap(), AsNum(65002))
            .ibgp(Ipv4Addr::new(2, 2, 2, 3))
            .network("2.2.2.1/32".parse().unwrap())
    }

    #[test]
    fn build_wires_up_loopback_isis_bgp() {
        let cfg = sample_spec(Vendor::Ceos).build();
        let lo = cfg.interface(&IfaceId::from("Loopback0")).unwrap();
        assert_eq!(lo.addr.unwrap().addr, Ipv4Addr::new(2, 2, 2, 1));
        assert!(lo.isis.as_ref().unwrap().passive);
        let isis = cfg.isis.as_ref().unwrap();
        assert_eq!(isis.net, "49.0001.0202.0202.0201.00");
        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.neighbors.len(), 2);
        let ibgp = bgp.neighbor(Ipv4Addr::new(2, 2, 2, 3)).unwrap();
        assert!(ibgp.next_hop_self);
        assert_eq!(ibgp.update_source, Some(IfaceId::from("Loopback0")));
    }

    #[test]
    fn rendered_ceos_config_parses_back() {
        let spec = sample_spec(Vendor::Ceos);
        let text = spec.render();
        let parsed = crate::ceos::parse(&text).unwrap();
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert_eq!(parsed.config, spec.build());
    }

    #[test]
    fn rendered_vjunos_config_parses_back() {
        let spec = sample_spec(Vendor::Vjunos);
        let text = spec.render();
        let parsed = crate::vjunos::parse(&text).unwrap();
        assert!(
            parsed.warnings.is_empty(),
            "{:?}\n{}",
            parsed.warnings,
            text
        );
        let cfg = parsed.config;
        assert_eq!(cfg.hostname, "r1");
        let bgp = cfg.bgp.unwrap();
        assert_eq!(bgp.asn, AsNum(65001));
        assert_eq!(bgp.neighbors.len(), 2);
        assert!(cfg.isis.is_some());
    }

    #[test]
    fn fig2_scale_configs_are_realistic_length() {
        // Paper: Fig. 2 configs are 62–82 lines. Our bare spec with
        // production boilerplate should land in a similar band.
        let text = sample_spec(Vendor::Ceos).production().render();
        let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
        assert!(
            (50..=110).contains(&lines),
            "unexpected config length {lines}:\n{text}"
        );
    }

    #[test]
    fn production_boilerplate_is_parseable_by_vendor() {
        let spec = sample_spec(Vendor::Ceos).production();
        let text = spec.render();
        let parsed = crate::ceos::parse(&text).unwrap();
        // The *vendor* parser accepts the whole config (this is the point:
        // only the model-based baseline chokes on these features).
        assert!(parsed.warnings.is_empty(), "{:?}", parsed.warnings);
        assert!(parsed.config.mpls.enabled && parsed.config.mpls.te_enabled);
        assert_eq!(parsed.config.mgmt.daemons.len(), 8);
    }

    #[test]
    fn classify_lines() {
        assert_eq!(classify_line("   mpls ip"), FeatureClass::Material);
        assert_eq!(
            classify_line("router traffic-engineering"),
            FeatureClass::Material
        );
        assert_eq!(
            classify_line("daemon TerminAttr"),
            FeatureClass::ManagementOnly
        );
        assert_eq!(
            classify_line("management api gnmi"),
            FeatureClass::ManagementOnly
        );
        assert_eq!(
            classify_line("ntp server 1.2.3.4"),
            FeatureClass::ManagementOnly
        );
    }

    fn xval_pair() -> Vec<DeviceConfig> {
        let r1 = RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1))
            .iface(IfaceSpec::new("Ethernet1", "10.0.0.0/31".parse().unwrap()).with_isis())
            .iface(IfaceSpec::new(
                "Ethernet2",
                "192.168.1.1/24".parse().unwrap(),
            ))
            .ebgp(Ipv4Addr::new(10, 0, 0, 1), AsNum(65002))
            .network("2.2.2.1/32".parse().unwrap())
            .build();
        let r2 = RouterSpec::new("r2", AsNum(65002), Ipv4Addr::new(2, 2, 2, 2))
            .iface(IfaceSpec::new("Ethernet1", "10.0.0.1/31".parse().unwrap()).with_isis())
            .iface(IfaceSpec::new(
                "Ethernet2",
                "192.168.2.1/24".parse().unwrap(),
            ))
            .ebgp(Ipv4Addr::new(10, 0, 0, 0), AsNum(65001))
            .network("2.2.2.2/32".parse().unwrap())
            .build();
        vec![r1, r2]
    }

    #[test]
    fn injector_covers_every_family_and_is_deterministic() {
        for kind in SeededMisconfig::ALL {
            let mut mutated = xval_pair();
            let report =
                inject_misconfig(kind, &mut mutated, 7).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(report.rule, kind.rule_id());
            assert!(!report.device.is_empty(), "{kind:?} names no device");
            assert_ne!(mutated, xval_pair(), "{kind:?} left configs untouched");

            // Same seed, same starting configs -> byte-identical outcome.
            let mut again = xval_pair();
            let replay = inject_misconfig(kind, &mut again, 7).unwrap();
            assert_eq!(report.detail, replay.detail);
            assert_eq!(mutated, again, "{kind:?} is not deterministic");
        }
    }

    #[test]
    fn asn_mismatch_report_predicts_session_failure() {
        let mut configs = xval_pair();
        let report = inject_misconfig(SeededMisconfig::EbgpAsnMismatch, &mut configs, 0).unwrap();
        assert!(!report.session_should_establish);
        let (dev, peer) = report.watch_session.expect("session to watch");
        assert_eq!(dev, report.device);
        assert!(configs
            .iter()
            .any(|c| c.bgp.as_ref().is_some_and(|b| b.neighbor(peer).is_some())));
        // The victim's statement now carries an ASN nobody runs.
        let victim = configs
            .iter()
            .find(|c| c.hostname == report.device)
            .unwrap();
        let n = victim.bgp.as_ref().unwrap().neighbor(peer).unwrap();
        assert!(configs
            .iter()
            .all(|c| c.bgp.as_ref().is_none_or(|b| b.asn != n.remote_as)));
    }

    #[test]
    fn duplicate_loopback_clones_identity_and_orphans_old_prefix() {
        let mut configs = xval_pair();
        let report = inject_misconfig(SeededMisconfig::DuplicateLoopback, &mut configs, 0).unwrap();
        // The victim is never the first loopback-bearing device.
        assert_eq!(report.device, "r2");
        assert_eq!(report.expect_absent, vec!["2.2.2.2/32".parse().unwrap()]);
        let (r1, r2) = (configs.first().unwrap(), configs.get(1).unwrap());
        assert_eq!(r1.loopback_addr(), r2.loopback_addr());
        assert_eq!(
            r1.isis.as_ref().map(|i| &i.net),
            r2.isis.as_ref().map(|i| &i.net)
        );
    }

    #[test]
    fn shadowed_prefix_list_establishes_but_filters_everything() {
        let mut configs = xval_pair();
        let report =
            inject_misconfig(SeededMisconfig::ShadowedPrefixList, &mut configs, 0).unwrap();
        assert!(report.session_should_establish);
        assert!(!report.expect_absent.is_empty());
        let victim = configs
            .iter()
            .find(|c| c.hostname == report.device)
            .unwrap();
        let pl = victim.prefix_lists.get("XVAL-IN").expect("injected list");
        let deny = pl.entries.first().unwrap();
        assert_eq!(deny.action, PolicyAction::Deny);
        assert!(pl
            .entries
            .iter()
            .skip(1)
            .all(|e| deny.prefix.covers(&e.prefix)));
    }

    #[test]
    fn injection_fails_loudly_when_no_candidate_exists() {
        // A lone router has no sessions, links, or duplicate identities.
        let mut solo = vec![RouterSpec::new("r1", AsNum(65001), Ipv4Addr::new(2, 2, 2, 1)).build()];
        for kind in [
            SeededMisconfig::EbgpAsnMismatch,
            SeededMisconfig::OneSidedNeighbor,
            SeededMisconfig::DuplicateLoopback,
            SeededMisconfig::SubnetMismatch,
        ] {
            assert!(inject_misconfig(kind, &mut solo, 0).is_err(), "{kind:?}");
        }
    }

    #[test]
    fn isis_net_is_unique_per_loopback() {
        let a = RouterSpec::new("a", AsNum(1), Ipv4Addr::new(2, 2, 2, 1)).isis_net();
        let b = RouterSpec::new("b", AsNum(1), Ipv4Addr::new(2, 2, 2, 2)).isis_net();
        assert_ne!(a, b);
        assert!(a.starts_with("49.0001."));
        assert!(a.ends_with(".00"));
    }
}
